"""XML substrate: documents, nodes and Compact Dynamic Dewey identifiers.

This package implements everything the paper assumes from the underlying
XML store:

* :mod:`repro.xmldom.dewey` -- Compact Dynamic Dewey IDs [Xu et al. 2009]:
  structural identifiers that encode, for every node, the labels and
  relative positions of all its ancestors, support parent/ancestor tests
  by pure ID comparison, and never require relabeling under updates.
* :mod:`repro.xmldom.model` -- ordered labeled trees (element, attribute
  and text nodes), documents with per-label *canonical relations*.
* :mod:`repro.xmldom.parser` -- a small recursive-descent XML parser for
  the XML subset used throughout the paper's workloads.
* :mod:`repro.xmldom.serializer` -- the inverse of the parser.
"""

from repro.xmldom.dewey import (
    DeweyID,
    Ordinal,
    ordinal_after,
    ordinal_before,
    ordinal_between,
    ordinal_initial,
)
from repro.xmldom.model import (
    AttributeNode,
    Document,
    ElementNode,
    Node,
    TextNode,
    build_document,
)
from repro.xmldom.parser import XMLSyntaxError, parse_document, parse_fragment
from repro.xmldom.serializer import serialize, serialize_fragment

__all__ = [
    "AttributeNode",
    "DeweyID",
    "Document",
    "ElementNode",
    "Node",
    "Ordinal",
    "TextNode",
    "XMLSyntaxError",
    "build_document",
    "ordinal_after",
    "ordinal_before",
    "ordinal_between",
    "ordinal_initial",
    "parse_document",
    "parse_fragment",
    "serialize",
    "serialize_fragment",
]
