"""Hot-path indexes over a document's canonical relations.

The maintenance pipeline's asymptotics (each update touches Δ-sized
data, Section 6) depend on three per-update costs staying sublinear in
the document size:

* keeping every ``R_a`` (label → document-ordered node list) sorted
  under subtree insertion/deletion,
* answering σ-constant selections ``σ_{val=c}(R_a)`` without scanning
  and re-deriving every node's string value,
* re-deriving ``val``/``cont`` only for nodes whose text content
  actually changed.

This module provides the first two as index structures; the third is
the memoized ``val``/``cont`` cache on the node classes
(:mod:`repro.xmldom.model`), whose invalidation walk feeds
:class:`ValueIndex`.

Invariants
----------

:class:`LabelIndex`
    For every label, ``_nodes[label]`` and ``_keys[label]`` are
    parallel lists sorted by :class:`~repro.xmldom.dewey.DeweyID`;
    ``_keys[label][i] is _nodes[label][i].id``-equal at all times.
    ``add``/``remove`` are one bisect over the maintained key list
    plus one list shift -- never a full key-list rebuild.

:class:`ValueIndex`
    Entries exist only for labels that have been queried at least once
    (σ predicates name few labels).  Within an entry, every *live*
    node of the label is either bucketed under the string value it had
    when last flushed (``_indexed``) or queued in ``_dirty``; lookups
    flush the dirty set first, so a returned bucket always reflects
    current ``val``s.  Buckets are document-ordered (parallel sorted
    key lists, as above).  Consistency relies on the document calling
    ``on_add`` / ``on_remove`` for every node entering/leaving the
    document and ``on_val_change`` for every element whose text
    descendants changed (the same ancestor walk that invalidates the
    ``val`` cache).

    The pseudo-label ``"*"`` is served by an *all-labels* entry over
    every element in the document, built lazily from the ``elements``
    provider on the first wildcard σ lookup; from then on it is kept
    incremental by the same notifications (restricted to element
    nodes), so ``*``-labeled σ pattern nodes resolve without an
    ``all_elements()`` scan.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Sequence

_ABSENT = object()


class LabelIndex:
    """Per-label canonical relation ``R_a`` with incremental upkeep."""

    __slots__ = ("_nodes", "_keys")

    def __init__(self) -> None:
        self._nodes: Dict[str, List[Any]] = {}
        self._keys: Dict[str, List[Any]] = {}

    def labels(self) -> Iterator[str]:
        return iter(self._nodes)

    def nodes(self, label: str) -> List[Any]:
        """The live document-ordered row of ``label`` (do not mutate)."""
        return self._nodes.get(label, [])

    def copy_label(self, label: str) -> List[Any]:
        return list(self._nodes.get(label, ()))

    def add(self, node: Any) -> None:
        """O(log n) bisect + O(n) shift; no key-list rebuild.

        Mirrors _ValueEntry._insert/_unbucket deliberately: this is the
        hottest call in the system, and a shared sorted-row helper
        would add a Python-level indirection per inserted node.  Keep
        the two in sync when touching either.
        """
        label = node.label
        row = self._nodes.get(label)
        if row is None:
            self._nodes[label] = [node]
            self._keys[label] = [node.id]
            return
        keys = self._keys[label]
        position = bisect.bisect(keys, node.id)
        keys.insert(position, node.id)
        row.insert(position, node)

    def remove(self, node: Any) -> None:
        row = self._nodes.get(node.label)
        if not row:
            return
        keys = self._keys[node.label]
        position = bisect.bisect_left(keys, node.id)
        if position < len(row) and row[position] is node:
            keys.pop(position)
            row.pop(position)

    def add_bulk(self, nodes: Sequence[Any]) -> None:
        """Bulk insertion; only labels that received nodes are re-sorted."""
        touched = set()
        for node in nodes:
            self._nodes.setdefault(node.label, []).append(node)
            touched.add(node.label)
        for label in touched:
            row = self._nodes[label]
            row.sort(key=lambda n: n.id)
            self._keys[label] = [n.id for n in row]


class _ValueEntry:
    """One label's value buckets: val → document-ordered nodes."""

    __slots__ = ("_keys", "_nodes", "_indexed", "_dirty")

    def __init__(self, nodes: Sequence[Any]):
        self._keys: Dict[str, List[Any]] = {}
        self._nodes: Dict[str, List[Any]] = {}
        #: node → the value it is currently bucketed under.
        self._indexed: Dict[Any, str] = {}
        #: nodes whose bucket may be stale (insertion-ordered set).
        self._dirty: Dict[Any, None] = {}
        for node in nodes:  # already document-ordered: plain appends
            value = node.val
            self._keys.setdefault(value, []).append(node.id)
            self._nodes.setdefault(value, []).append(node)
            self._indexed[node] = value

    def _insert(self, node: Any, value: str) -> None:
        # Same parallel keys/nodes discipline as LabelIndex.add/remove
        # (duplicated on purpose -- see the note there).
        keys = self._keys.get(value)
        if keys is None:
            self._keys[value] = [node.id]
            self._nodes[value] = [node]
        else:
            position = bisect.bisect(keys, node.id)
            keys.insert(position, node.id)
            self._nodes[value].insert(position, node)
        self._indexed[node] = value

    def _unbucket(self, node: Any) -> None:
        value = self._indexed.pop(node, _ABSENT)
        if value is _ABSENT:
            return
        keys = self._keys[value]
        position = bisect.bisect_left(keys, node.id)
        row = self._nodes[value]
        if position < len(row) and row[position] is node:
            keys.pop(position)
            row.pop(position)
        if not row:
            # Drop emptied buckets so memory tracks live values, not
            # every value ever seen.
            del self._keys[value]
            del self._nodes[value]

    def mark(self, node: Any) -> None:
        self._dirty[node] = None

    def discard(self, node: Any) -> None:
        self._dirty.pop(node, None)
        self._unbucket(node)

    def lookup(self, value: str) -> List[Any]:
        if self._dirty:
            for node in self._dirty:
                current = node.val
                if self._indexed.get(node, _ABSENT) == current:
                    continue
                self._unbucket(node)
                self._insert(node, current)
            self._dirty.clear()
        return list(self._nodes.get(value, ()))


WILDCARD_LABEL = "*"


class ValueIndex:
    """Lazy per-label value index over the canonical relations.

    ``lookup(label, value)`` returns the document-ordered nodes of
    ``label`` whose current ``val`` equals ``value`` -- the σ-constant
    selection of :func:`repro.pattern.evaluate.sources_from_document` --
    in O(#dirty + #matches) instead of O(|R_label| · |subtree|).

    ``lookup("*", value)`` answers wildcard σ nodes from an all-labels
    entry over every element, built lazily from the ``elements``
    provider (a callable returning the document's elements in document
    order) and maintained incrementally afterwards.
    """

    __slots__ = ("_label_index", "_entries", "_elements")

    def __init__(self, label_index: LabelIndex, elements=None):
        self._label_index = label_index
        self._entries: Dict[str, _ValueEntry] = {}
        #: document-ordered element provider backing the "*" entry.
        self._elements = elements

    def lookup(self, label: str, value: str) -> List[Any]:
        entry = self._entries.get(label)
        if entry is None:
            if label == WILDCARD_LABEL:
                if self._elements is None:
                    raise ValueError("no element provider for wildcard lookups")
                entry = _ValueEntry(sorted(self._elements(), key=lambda n: n.id))
            else:
                entry = _ValueEntry(self._label_index.nodes(label))
            self._entries[label] = entry
        return entry.lookup(value)

    # -- document notifications (cheap no-ops for untracked labels) -----

    def on_add(self, node: Any) -> None:
        entry = self._entries.get(node.label)
        if entry is not None:
            entry.mark(node)
        if node.kind == "element":
            wildcard = self._entries.get(WILDCARD_LABEL)
            if wildcard is not None:
                wildcard.mark(node)

    def on_remove(self, node: Any) -> None:
        entry = self._entries.get(node.label)
        if entry is not None:
            entry.discard(node)
        if node.kind == "element":
            wildcard = self._entries.get(WILDCARD_LABEL)
            if wildcard is not None:
                wildcard.discard(node)

    def on_val_change(self, node: Any) -> None:
        entry = self._entries.get(node.label)
        if entry is not None:
            entry.mark(node)
        if node.kind == "element":
            wildcard = self._entries.get(WILDCARD_LABEL)
            if wildcard is not None:
                wildcard.mark(node)
