"""Compact Dynamic Dewey identifiers.

The paper relies on the Compact Dynamic Dewey scheme of [Xu et al. 2009]
("DDE: from Dewey to a fully dynamic XML labeling scheme", SIGMOD 2009)
for four properties (Section 2.1):

1. *structural* -- comparing two IDs decides parent / ancestor
   relationships;
2. the ID of a node encodes the IDs **and labels** of all its ancestors;
3. no relabeling is ever needed when the document is updated;
4. the encoding is compact.

A :class:`DeweyID` here is a sequence of *steps*; each step carries the
label of one ancestor (the last step carries the node's own label) and a
*dynamic ordinal* fixing the node's position among its siblings.

Dynamic ordinals
----------------

Plain Dewey ordinals (1, 2, 3, ...) force relabeling when a node is
inserted between two siblings.  We use variable-length ordinals: an
ordinal is a non-empty tuple of integers, compared lexicographically
with implicit zero-padding on the right.  Between any two distinct
ordinals a fresh one can be generated (:func:`ordinal_between`), and
ordinals before the first / after the last sibling are always available
(:func:`ordinal_before` / :func:`ordinal_after`).  No existing ordinal
is ever touched, which yields the "no relabeling" property.

The normalized form never has trailing zeros, so tuple equality is
ordinal equality.

Compact encoding
----------------

:meth:`DeweyID.encode` produces a compact binary form using
variable-length integers and a caller-supplied label dictionary,
mirroring the paper's footnote that "internally, ID representation is
much more compact".
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence, Tuple

Ordinal = Tuple[int, ...]


def _normalize(ordinal: Sequence[int]) -> Ordinal:
    """Strip trailing zeros, keeping at least one component."""
    parts = list(ordinal)
    while len(parts) > 1 and parts[-1] == 0:
        parts.pop()
    return tuple(parts)


def ordinal_initial(position: int) -> Ordinal:
    """Ordinal for the ``position``-th child (1-based) at bulk-load time."""
    if position < 1:
        raise ValueError("initial positions are 1-based, got %r" % (position,))
    return (position,)


def ordinal_compare(a: Sequence[int], b: Sequence[int]) -> int:
    """Three-way comparison of two ordinals under zero-padding."""
    length = max(len(a), len(b))
    for i in range(length):
        ai = a[i] if i < len(a) else 0
        bi = b[i] if i < len(b) else 0
        if ai != bi:
            return -1 if ai < bi else 1
    return 0


def ordinal_before(first: Sequence[int]) -> Ordinal:
    """A fresh ordinal strictly smaller than ``first``."""
    return (first[0] - 1,)


def ordinal_after(last: Sequence[int]) -> Ordinal:
    """A fresh ordinal strictly greater than ``last``."""
    return (last[0] + 1,)


def ordinal_between(low: Sequence[int], high: Sequence[int]) -> Ordinal:
    """A fresh ordinal strictly between ``low`` and ``high``.

    Raises :class:`ValueError` unless ``low < high``.
    """
    if ordinal_compare(low, high) >= 0:
        raise ValueError("ordinal_between requires low < high, got %r >= %r" % (low, high))
    length = max(len(low), len(high))
    for i in range(length):
        li = low[i] if i < len(low) else 0
        hi = high[i] if i < len(high) else 0
        if hi - li >= 2:
            return _normalize(tuple(low[:i]) + (0,) * max(0, i - len(low)) + (li + 1,))
        if hi - li == 1:
            # Any extension of low's prefix through index i stays below
            # high; appending a positive component keeps it above low.
            padded = tuple(low[j] if j < len(low) else 0 for j in range(i + 1))
            suffix = tuple(low[i + 1:])
            return _normalize(padded + suffix + (1,))
    raise ValueError("unreachable: low < high but no differing component")


def _encode_varint(value: int, out: bytearray) -> None:
    """Zig-zag + LEB128 variable-length encoding of a signed integer."""
    zig = (value << 1) ^ (value >> 63) if value < 0 else value << 1
    while True:
        byte = zig & 0x7F
        zig >>= 7
        if zig:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    shift = 0
    zig = 0
    while True:
        byte = data[offset]
        offset += 1
        zig |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    value = (zig >> 1) ^ -(zig & 1)
    return value, offset


class _PaddedKey:
    """Document-order sort key with explicit zero-padding semantics.

    Used instead of the plain pair tuple for IDs whose ordinals carry a
    negative component past index 0: the ordinal generators never
    produce such ordinals, but direct construction and :meth:`DeweyID.
    decode` accept them, and for them Python's tuple prefix rule
    disagrees with the padded comparison.  Comparisons against plain
    tuple keys work through reflected operators (tuple returns
    NotImplemented for non-tuple operands).
    """

    __slots__ = ("pairs",)

    def __init__(self, pairs):
        self.pairs = pairs

    def _cmp(self, other) -> int:
        other_pairs = other.pairs if isinstance(other, _PaddedKey) else other
        for (oa, la), (ob, lb) in zip(self.pairs, other_pairs):
            cmp = ordinal_compare(oa, ob)
            if cmp:
                return cmp
            if la != lb:
                return -1 if la < lb else 1
        if len(self.pairs) == len(other_pairs):
            return 0
        return -1 if len(self.pairs) < len(other_pairs) else 1

    def __lt__(self, other) -> bool:
        return self._cmp(other) < 0

    def __le__(self, other) -> bool:
        return self._cmp(other) <= 0

    def __gt__(self, other) -> bool:
        return self._cmp(other) > 0

    def __ge__(self, other) -> bool:
        return self._cmp(other) >= 0

    def __eq__(self, other) -> bool:
        return self._cmp(other) == 0


class DeweyID:
    """A structural node identifier: a tuple of ``(label, ordinal)`` steps.

    IDs are immutable, hashable and totally ordered by document order
    (ancestors precede their descendants; siblings are ordered by their
    dynamic ordinals).
    """

    __slots__ = ("steps", "_hash", "_key", "_ancestors")

    def __init__(self, steps: Sequence[Tuple[str, Sequence[int]]]):
        if not steps:
            raise ValueError("a DeweyID needs at least one step")
        self.steps: Tuple[Tuple[str, Ordinal], ...] = tuple(
            (label, _normalize(ordinal)) for label, ordinal in steps
        )
        # Precomputed document-order key: plain tuple comparison over
        # (ordinal, label) pairs matches the padded ordinal comparison
        # of _compare because normalized ordinals carry no trailing
        # zeros and the ordinal generators only ever produce negative
        # values in an ordinal's *first* component (so a proper prefix
        # always zero-pads to something <= its extensions).  Comparing
        # via this key keeps the hot sorts/bisects in C.  IDs built
        # from out-of-band ordinals violating that invariant fall back
        # to a padded-semantics key object.
        pairs = tuple((ordinal, label) for label, ordinal in self.steps)
        if any(part < 0 for ordinal, _ in pairs for part in ordinal[1:]):
            self._key = _PaddedKey(pairs)
        else:
            self._key = pairs
        self._hash = hash(self.steps)
        self._ancestors: "Tuple[DeweyID, ...] | None" = None

    # -- construction -------------------------------------------------

    @classmethod
    def root(cls, label: str) -> "DeweyID":
        """The ID of a document root labeled ``label``."""
        return cls(((label, (1,)),))

    @classmethod
    def _from_steps(cls, steps: Tuple[Tuple[str, Ordinal], ...]) -> "DeweyID":
        """Internal: build from *already-normalized* steps.

        ``child`` / ``parent`` / ``ancestor_ids`` derive IDs whose steps
        are prefixes (or one-step extensions) of an existing ID, so the
        per-step normalization of ``__init__`` would be pure overhead on
        the hottest construction paths (Dewey assignment during
        document writes, ancestor probing inside structural joins).
        """
        self = object.__new__(cls)
        self.steps = steps
        pairs = tuple((ordinal, label) for label, ordinal in steps)
        if any(part < 0 for ordinal, _ in pairs for part in ordinal[1:]):
            self._key = _PaddedKey(pairs)
        else:
            self._key = pairs
        self._hash = hash(steps)
        self._ancestors = None
        return self

    def child(self, label: str, ordinal: Sequence[int]) -> "DeweyID":
        """The ID of a child of this node with the given label/ordinal."""
        return DeweyID._from_steps(self.steps + ((label, _normalize(ordinal)),))

    # -- basic accessors ----------------------------------------------

    @property
    def label(self) -> str:
        """Label of the node this ID identifies (the last step's label)."""
        return self.steps[-1][0]

    @property
    def ordinal(self) -> Ordinal:
        return self.steps[-1][1]

    @property
    def depth(self) -> int:
        return len(self.steps)

    def parent(self) -> "DeweyID | None":
        """ID of the parent node, or None for the root."""
        if len(self.steps) == 1:
            return None
        cached = self._ancestors
        if cached is not None:
            return cached[-1]
        return DeweyID._from_steps(self.steps[:-1])

    def ancestor_ids(self) -> Iterator["DeweyID"]:
        """IDs of all proper ancestors, outermost first.

        This is property (2) of the scheme: ancestor IDs are extracted
        from the node's own ID without touching the document.  The
        tuple is memoized: structural joins probe the same Δ rows once
        per term and view, and rebuilding the chain dominated the join.
        """
        cached = self._ancestors
        if cached is None:
            cached = tuple(
                DeweyID._from_steps(self.steps[:i])
                for i in range(1, len(self.steps))
            )
            self._ancestors = cached
        return iter(cached)

    def ancestor_labels(self) -> Tuple[str, ...]:
        """Labels of all proper ancestors, outermost first."""
        return tuple(label for label, _ in self.steps[:-1])

    def label_path(self) -> Tuple[str, ...]:
        """Labels from the root down to this node (inclusive)."""
        return tuple(label for label, _ in self.steps)

    # -- structural comparisons (the paper's ≺ and ≺≺) -----------------

    def is_parent_of(self, other: "DeweyID") -> bool:
        """``self ≺ other``: is self the parent of other?"""
        return len(other.steps) == len(self.steps) + 1 and other.steps[: len(self.steps)] == self.steps

    def is_ancestor_of(self, other: "DeweyID") -> bool:
        """``self ≺≺ other``: is self a proper ancestor of other?"""
        return len(other.steps) > len(self.steps) and other.steps[: len(self.steps)] == self.steps

    def is_ancestor_or_self(self, other: "DeweyID") -> bool:
        return len(other.steps) >= len(self.steps) and other.steps[: len(self.steps)] == self.steps

    def has_ancestor_labeled(self, label: str) -> bool:
        """Does any proper ancestor carry ``label``?  (Props. 3.8 / 4.7.)"""
        return label in self.ancestor_labels()

    @property
    def sort_key(self):
        """The precomputed document-order key (plain nested tuples for
        generator-produced ordinals).  ``sorted(nodes, key=lambda n:
        n.id.sort_key)`` compares entirely in C, unlike sorting
        :class:`DeweyID` objects whose rich comparisons are Python
        calls; equal keys imply equal IDs."""
        return self._key

    # -- ordering ------------------------------------------------------

    def _compare(self, other: "DeweyID") -> int:
        """Reference comparison (the definition _key is derived from)."""
        for (la, oa), (lb, ob) in zip(self.steps, other.steps):
            cmp = ordinal_compare(oa, ob)
            if cmp:
                return cmp
            if la != lb:
                # Distinct labels with equal ordinals cannot share a
                # parent slot in one document; order them by label to
                # keep the comparison total across documents.
                return -1 if la < lb else 1
        if len(self.steps) == len(other.steps):
            return 0
        return -1 if len(self.steps) < len(other.steps) else 1

    def __lt__(self, other: "DeweyID") -> bool:
        return self._key < other._key

    def __le__(self, other: "DeweyID") -> bool:
        return self._key <= other._key

    def __gt__(self, other: "DeweyID") -> bool:
        return self._key > other._key

    def __ge__(self, other: "DeweyID") -> bool:
        return self._key >= other._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DeweyID) and self.steps == other.steps

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Ship only the steps across process boundaries (the sharded
        # maintenance pipeline pickles IDs inside Δ fragments); key,
        # hash and the ancestor cache are rebuilt on the other side.
        # A live ID's steps are already normalized, so reconstruction
        # takes the fast path -- fragment unpickling is on the critical
        # merge path of every parallel round.
        return (_dewey_from_normalized_steps, (self.steps,))

    # -- compact encoding ---------------------------------------------

    def encode(self, label_codes: dict) -> bytes:
        """Compact binary encoding using a label dictionary.

        ``label_codes`` maps labels to small integers; unknown labels
        are added on the fly (the dictionary doubles as an encoder
        state, as in dictionary-compressed stores).
        """
        out = bytearray()
        _encode_varint(len(self.steps), out)
        for label, ordinal in self.steps:
            code = label_codes.setdefault(label, len(label_codes))
            _encode_varint(code, out)
            _encode_varint(len(ordinal), out)
            for part in ordinal:
                _encode_varint(part, out)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, label_names: Sequence[str]) -> "DeweyID":
        """Inverse of :meth:`encode`; ``label_names[code] == label``."""
        nsteps, offset = _decode_varint(data, 0)
        steps = []
        for _ in range(nsteps):
            code, offset = _decode_varint(data, offset)
            length, offset = _decode_varint(data, offset)
            parts = []
            for _ in range(length):
                part, offset = _decode_varint(data, offset)
                parts.append(part)
            steps.append((label_names[code], tuple(parts)))
        return cls(steps)

    # -- display -------------------------------------------------------

    def __repr__(self) -> str:
        return "DeweyID(%s)" % (str(self),)

    def __str__(self) -> str:
        rendered = []
        for label, ordinal in self.steps:
            suffix = "_".join(str(part) for part in ordinal)
            rendered.append("%s%s" % (label, suffix))
        return ".".join(rendered)


def _dewey_from_normalized_steps(steps) -> "DeweyID":
    """Module-level unpickle hook for :meth:`DeweyID.__reduce__`."""
    return DeweyID._from_steps(steps)


# -- sorted-list probes (Dewey order puts a subtree in one contiguous
# run right after its root, so one bisect answers containment) ---------


def has_strict_descendant(sorted_ids: Sequence["DeweyID"], ancestor: "DeweyID") -> bool:
    """Does the sorted ID list hold a proper descendant of ``ancestor``?"""
    position = bisect.bisect_right(sorted_ids, ancestor)
    return position < len(sorted_ids) and ancestor.is_ancestor_of(sorted_ids[position])


def has_descendant_or_self(sorted_ids: Sequence["DeweyID"], ancestor: "DeweyID") -> bool:
    """Does the sorted ID list hold ``ancestor`` or a proper descendant?"""
    position = bisect.bisect_left(sorted_ids, ancestor)
    return position < len(sorted_ids) and ancestor.is_ancestor_or_self(
        sorted_ids[position]
    )
