"""A small recursive-descent XML parser.

Covers the XML subset appearing in the paper's workloads (XMark-style
documents and the update snippets of Appendix A): elements, attributes,
character data, the five predefined entities, numeric character
references, comments, processing instructions and a prolog/DOCTYPE to
skip.  CDATA sections are supported for completeness.

Namespaces are treated as plain label prefixes (XMark does not use
them), and DTD internal subsets are skipped, not interpreted -- schema
reasoning lives in :mod:`repro.schema`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.xmldom.model import (
    AttributeNode,
    Document,
    ElementNode,
    Node,
    TextNode,
    build_document,
)

_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_EXTRA = set("-._:")


class XMLSyntaxError(ValueError):
    """Raised on malformed input, with a character offset."""

    def __init__(self, message: str, offset: int):
        super().__init__("%s (at offset %d)" % (message, offset))
        self.offset = offset


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- low-level helpers -------------------------------------------------

    def error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error("expected %r" % token)
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        while self.pos < self.length:
            char = self.text[self.pos]
            if char.isalnum() or char in _NAME_EXTRA:
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start:self.pos]

    def decode_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out: List[str] = []
        index = 0
        while index < len(raw):
            char = raw[index]
            if char != "&":
                out.append(char)
                index += 1
                continue
            end = raw.find(";", index)
            if end == -1:
                raise self.error("unterminated entity reference")
            name = raw[index + 1:end]
            if name.startswith("#x") or name.startswith("#X"):
                out.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                out.append(chr(int(name[1:])))
            elif name in _ENTITIES:
                out.append(_ENTITIES[name])
            else:
                raise self.error("unknown entity &%s;" % name)
            index = end + 1
        return "".join(out)

    # -- grammar -------------------------------------------------------------

    def skip_misc(self) -> None:
        """Skip whitespace, comments, PIs, prolog and DOCTYPE."""
        while True:
            self.skip_whitespace()
            if self.startswith("<!--"):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.startswith("<?"):
                end = self.text.find("?>", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.startswith("<!DOCTYPE"):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        depth = 0
        while self.pos < self.length:
            char = self.text[self.pos]
            self.pos += 1
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth <= 0:
                return
        raise self.error("unterminated DOCTYPE")

    def parse_attributes(self) -> List[Tuple[str, str]]:
        attributes: List[Tuple[str, str]] = []
        while True:
            self.skip_whitespace()
            char = self.peek()
            if char in (">", "/", ""):
                return attributes
            name = self.read_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ("'", '"'):
                raise self.error("attribute value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end == -1:
                raise self.error("unterminated attribute value")
            value = self.decode_entities(self.text[self.pos:end])
            self.pos = end + 1
            attributes.append((name, value))

    def parse_element(self) -> ElementNode:
        self.expect("<")
        label = self.read_name()
        element = ElementNode(label)
        for name, value in self.parse_attributes():
            element.append(AttributeNode(name, value))
        self.skip_whitespace()
        if self.startswith("/>"):
            self.pos += 2
            return element
        self.expect(">")
        self.parse_content(element)
        self.expect("</")
        closing = self.read_name()
        if closing != label:
            raise self.error("mismatched closing tag </%s> for <%s>" % (closing, label))
        self.skip_whitespace()
        self.expect(">")
        return element

    def parse_content(self, element: ElementNode, allow_eof: bool = False) -> None:
        buffer: List[str] = []

        def flush_text() -> None:
            if buffer:
                text = self.decode_entities("".join(buffer))
                buffer.clear()
                if text.strip():
                    element.append(TextNode(text.strip()))

        while self.pos < self.length:
            if self.startswith("</"):
                flush_text()
                return
            if self.startswith("<!--"):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.startswith("<![CDATA["):
                end = self.text.find("]]>", self.pos + 9)
                if end == -1:
                    raise self.error("unterminated CDATA section")
                buffer.append(self.text[self.pos + 9:end].replace("&", "&amp;"))
                self.pos = end + 3
            elif self.startswith("<?"):
                end = self.text.find("?>", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.peek() == "<":
                flush_text()
                element.append(self.parse_element())
            else:
                buffer.append(self.peek())
                self.pos += 1
        if allow_eof:
            flush_text()
            return
        raise self.error("unexpected end of input inside <%s>" % element.label)


def parse_fragment(text: str) -> List[Node]:
    """Parse an XML forest (the shape of inserted ``xml`` snippets).

    Returns the top-level nodes in order; leading/trailing whitespace
    between trees is discarded, bare text becomes text nodes.
    """
    parser = _Parser(text)
    wrapper = ElementNode("#fragment")
    parser.skip_misc()
    parser.parse_content(wrapper, allow_eof=True)
    if parser.pos != parser.length:
        raise parser.error("trailing content after fragment")
    roots = list(wrapper.children)
    for node in roots:
        node.parent = None
    return roots


def parse_document(text: str, uri: str = "doc.xml") -> Document:
    """Parse a full document and assign Dewey IDs."""
    parser = _Parser(text)
    parser.skip_misc()
    if parser.peek() != "<":
        raise parser.error("expected the root element")
    root = parser.parse_element()
    parser.skip_misc()
    if parser.pos != parser.length:
        raise parser.error("trailing content after the root element")
    return build_document(root, uri=uri)
