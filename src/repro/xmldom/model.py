"""Ordered labeled trees and documents (Section 2.1 of the paper).

Documents are ordered trees of element, attribute and text nodes.
Element and attribute nodes carry a label; text nodes carry a string
value.  Every node owns a :class:`~repro.xmldom.dewey.DeweyID`.

A :class:`Document` additionally maintains, for every label ``a``, the
paper's *virtual canonical relation* ``R_a``: the document-ordered list
of ``a``-labeled nodes, from which ``(ID, val, cont)`` tuples are drawn
by the algebra layer.  The index is kept consistent under subtree
insertion and deletion.

Conventions:

* attribute nodes are modeled as children with label ``@name`` (so tree
  patterns can match them uniformly, as in ``person[@id]``);
* ``val`` of an element is the concatenation of its text descendants in
  document order (XPath string value); ``val`` of an attribute or text
  node is its own string;
* ``cont`` is the serialized XML image of the subtree.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence

from repro.xmldom.dewey import (
    DeweyID,
    Ordinal,
    ordinal_after,
    ordinal_before,
    ordinal_between,
    ordinal_initial,
)

TEXT_LABEL = "#text"


class Node:
    """Common behaviour of element, attribute and text nodes."""

    __slots__ = ("label", "parent", "dewey")

    kind = "node"

    def __init__(self, label: str):
        self.label = label
        self.parent: Optional["ElementNode"] = None
        self.dewey: Optional[DeweyID] = None

    # -- tree navigation ------------------------------------------------

    def ancestors(self) -> Iterator["ElementNode"]:
        """Proper ancestors, innermost first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def self_and_descendants(self) -> Iterator["Node"]:
        yield self

    def descendants(self) -> Iterator["Node"]:
        return iter(())

    # -- stored attributes (ID / val / cont) ----------------------------

    @property
    def id(self) -> DeweyID:
        if self.dewey is None:
            raise ValueError("node %r is not part of a document yet" % (self.label,))
        return self.dewey

    @property
    def val(self) -> str:
        raise NotImplementedError

    @property
    def cont(self) -> str:
        from repro.xmldom.serializer import serialize_fragment

        return serialize_fragment(self)

    def __repr__(self) -> str:
        ident = str(self.dewey) if self.dewey is not None else "<detached>"
        return "%s(%s)" % (type(self).__name__, ident)


class TextNode(Node):
    """A text node; its ``val`` is its character data."""

    __slots__ = ("text",)

    kind = "text"

    def __init__(self, text: str):
        super().__init__(TEXT_LABEL)
        self.text = text

    @property
    def val(self) -> str:
        return self.text


class AttributeNode(Node):
    """An attribute, modeled as a labeled child node ``@name``."""

    __slots__ = ("value",)

    kind = "attribute"

    def __init__(self, name: str, value: str):
        label = name if name.startswith("@") else "@" + name
        super().__init__(label)
        self.value = value

    @property
    def name(self) -> str:
        return self.label[1:]

    @property
    def val(self) -> str:
        return self.value


class ElementNode(Node):
    """An element with an ordered child list (attributes come first)."""

    __slots__ = ("children",)

    kind = "element"

    def __init__(self, label: str, children: Sequence[Node] = ()):
        super().__init__(label)
        self.children: List[Node] = []
        for child in children:
            self.append(child)

    # -- construction ----------------------------------------------------

    def append(self, child: Node) -> Node:
        """Attach ``child`` as the last child (no ID assignment)."""
        if child.parent is not None:
            raise ValueError("node %r already has a parent" % (child.label,))
        child.parent = self
        self.children.append(child)
        return child

    def set_attribute(self, name: str, value: str) -> AttributeNode:
        attr = AttributeNode(name, value)
        # Attributes conventionally precede other children.
        attr.parent = self
        index = 0
        while index < len(self.children) and self.children[index].kind == "attribute":
            index += 1
        self.children.insert(index, attr)
        return attr

    # -- navigation -------------------------------------------------------

    def self_and_descendants(self) -> Iterator[Node]:
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ElementNode):
                stack.extend(reversed(node.children))

    def descendants(self) -> Iterator[Node]:
        nodes = self.self_and_descendants()
        next(nodes)
        return nodes

    def child_elements(self) -> Iterator["ElementNode"]:
        return (child for child in self.children if isinstance(child, ElementNode))

    def attribute(self, name: str) -> Optional[AttributeNode]:
        label = name if name.startswith("@") else "@" + name
        for child in self.children:
            if child.kind == "attribute" and child.label == label:
                return child  # type: ignore[return-value]
        return None

    @property
    def val(self) -> str:
        """XPath string value: concatenated text descendants in order."""
        parts: List[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: List[str]) -> None:
        for child in self.children:
            if child.kind == "text":
                parts.append(child.val)
            elif isinstance(child, ElementNode):
                child._collect_text(parts)


def deep_copy(node: Node) -> Node:
    """Structural copy of a subtree, detached (no parent, no IDs)."""
    if isinstance(node, TextNode):
        return TextNode(node.text)
    if isinstance(node, AttributeNode):
        return AttributeNode(node.name, node.value)
    assert isinstance(node, ElementNode)
    clone = ElementNode(node.label)
    for child in node.children:
        clone.append(deep_copy(child))
    return clone


class _LabelIndex:
    """Per-label canonical relation ``R_a``: document-ordered node lists."""

    def __init__(self) -> None:
        self._by_label: Dict[str, List[Node]] = {}

    def labels(self) -> Iterator[str]:
        return iter(self._by_label)

    def nodes(self, label: str) -> List[Node]:
        return self._by_label.get(label, [])

    def add(self, node: Node) -> None:
        row = self._by_label.setdefault(node.label, [])
        keys = [n.id for n in row]
        position = bisect.bisect(keys, node.id)
        row.insert(position, node)

    def add_bulk(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            self._by_label.setdefault(node.label, []).append(node)
        for row in self._by_label.values():
            row.sort(key=lambda n: n.id)

    def remove(self, node: Node) -> None:
        row = self._by_label.get(node.label)
        if not row:
            return
        keys = [n.id for n in row]
        position = bisect.bisect_left(keys, node.id)
        if position < len(row) and row[position] is node:
            row.pop(position)

    def copy_label(self, label: str) -> List[Node]:
        return list(self._by_label.get(label, []))


class Document:
    """A rooted XML document with structural IDs and canonical relations."""

    def __init__(self, root: ElementNode, uri: str = "doc.xml"):
        self.uri = uri
        self.root = root
        self._index = _LabelIndex()
        self._by_id: Dict[DeweyID, Node] = {}
        # IDs of deleted nodes are *retired*, never reissued: node
        # identity is immutable (XDM) and the Dewey scheme guarantees
        # a dead ID stays dead, so references held by pending update
        # lists or optimizers can never silently re-bind.
        self._retired_ids: set = set()
        self._assign_ids()

    # -- bulk loading ------------------------------------------------------

    def _assign_ids(self) -> None:
        self.root.dewey = DeweyID.root(self.root.label)
        stack: List[ElementNode] = [self.root]
        all_nodes: List[Node] = [self.root]
        while stack:
            element = stack.pop()
            for position, child in enumerate(element.children, start=1):
                child.dewey = element.id.child(child.label, ordinal_initial(position))
                all_nodes.append(child)
                if isinstance(child, ElementNode):
                    stack.append(child)
        self._index.add_bulk(all_nodes)
        for node in all_nodes:
            self._by_id[node.id] = node

    # -- canonical relations -------------------------------------------------

    def labels(self) -> Iterator[str]:
        """All labels with at least one node in the document."""
        return self._index.labels()

    def nodes_with_label(self, label: str) -> List[Node]:
        """The canonical relation ``R_label`` (document-ordered, live view)."""
        return self._index.nodes(label)

    def snapshot_label(self, label: str) -> List[Node]:
        """A copy of ``R_label``, immune to subsequent updates."""
        return self._index.copy_label(label)

    def all_elements(self) -> Iterator[ElementNode]:
        for node in self.root.self_and_descendants():
            if isinstance(node, ElementNode):
                yield node

    def node_by_id(self, dewey: DeweyID) -> Optional[Node]:
        """Resolve an ID to its node (None if absent)."""
        return self._by_id.get(dewey)

    def size_in_nodes(self) -> int:
        return sum(len(self._index.nodes(label)) for label in self._index.labels())

    # -- updates (used by repro.updates.pul) ---------------------------------

    def _sibling_ordinal(self, parent: ElementNode, position: int) -> Ordinal:
        """A fresh ordinal for a child inserted at ``position``."""
        siblings = parent.children
        left = siblings[position - 1].id.ordinal if position > 0 else None
        right = siblings[position].id.ordinal if position < len(siblings) else None
        if left is None and right is None:
            return ordinal_initial(1)
        if left is None:
            assert right is not None
            return ordinal_before(right)
        if right is None:
            return ordinal_after(left)
        return ordinal_between(left, right)

    def insert_subtree(
        self,
        parent: ElementNode,
        subtree: Node,
        position: Optional[int] = None,
    ) -> Node:
        """Copy ``subtree`` as a new child of ``parent`` and index it.

        Implements the paper's *apply-insert(n, t)* helper: the returned
        tree is a fresh copy whose nodes carry the Dewey IDs assigned in
        their new context.  ``position`` defaults to "after the last
        child" (the XQuery Update ``insert into`` semantics used by the
        paper's ``ins↘`` operation).
        """
        if position is None:
            position = len(parent.children)
        clone = deep_copy(subtree)
        ordinal = self._sibling_ordinal(parent, position)
        # Never reissue a retired ID: nudge the ordinal upward (staying
        # below the right sibling, if any) until the ID is fresh.
        right = (
            parent.children[position].id.ordinal
            if position < len(parent.children)
            else None
        )
        while parent.id.child(clone.label, ordinal) in self._retired_ids:
            if right is None:
                ordinal = ordinal_after(ordinal)
            else:
                ordinal = ordinal_between(ordinal, right)
        clone.parent = parent
        parent.children.insert(position, clone)
        clone.dewey = parent.id.child(clone.label, ordinal)
        new_nodes: List[Node] = [clone]
        if isinstance(clone, ElementNode):
            stack = [clone]
            while stack:
                element = stack.pop()
                for child_position, child in enumerate(element.children, start=1):
                    child.dewey = element.id.child(child.label, ordinal_initial(child_position))
                    new_nodes.append(child)
                    if isinstance(child, ElementNode):
                        stack.append(child)
        for node in new_nodes:
            self._index.add(node)
            self._by_id[node.id] = node
        return clone

    def delete_subtree(self, node: Node) -> List[Node]:
        """Remove ``node`` and its subtree; returns the removed nodes.

        Per XQuery Update semantics, deleting a node removes all its
        descendants as well; the returned list (document order) is what
        CD− turns into Δ− tables.
        """
        if node.parent is None:
            raise ValueError("cannot delete the document root")
        removed = list(node.self_and_descendants())
        removed.sort(key=lambda n: n.id)
        for gone in removed:
            self._index.remove(gone)
            self._by_id.pop(gone.id, None)
            self._retired_ids.add(gone.id)
        node.parent.children.remove(node)
        node.parent = None
        return removed

    def __repr__(self) -> str:
        return "Document(uri=%r, root=%r)" % (self.uri, self.root.label)


def build_document(root: ElementNode, uri: str = "doc.xml") -> Document:
    """Wrap a detached element tree into a document, assigning IDs."""
    return Document(root, uri=uri)
