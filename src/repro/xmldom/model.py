"""Ordered labeled trees and documents (Section 2.1 of the paper).

Documents are ordered trees of element, attribute and text nodes.
Element and attribute nodes carry a label; text nodes carry a string
value.  Every node owns a :class:`~repro.xmldom.dewey.DeweyID`.

A :class:`Document` additionally maintains, for every label ``a``, the
paper's *virtual canonical relation* ``R_a``: the document-ordered list
of ``a``-labeled nodes, from which ``(ID, val, cont)`` tuples are drawn
by the algebra layer.  The index is kept consistent under subtree
insertion and deletion with O(log n) bisects per node
(:class:`repro.xmldom.index.LabelIndex`), and a lazily built per-label
value index (:class:`repro.xmldom.index.ValueIndex`) answers σ-constant
selections (:meth:`Document.nodes_with_value`) without scanning.

Elements memoize ``val`` and ``cont``.  The caches are invalidated by
the document's update choke points (:meth:`Document.insert_subtree` /
:meth:`Document.delete_subtree`) walking the target's ancestor chain:
``cont`` on every structural change, ``val`` only when the moved
subtree contains text; the same walk feeds the value index's dirty
set.  Invariant: a set ``val`` cache implies no un-notified text
change anywhere in the element's subtree (every change clears the
whole chain above it).  :func:`set_hot_path_caches` turns the
memoization and indexed σ lookups off for seed-equivalent baseline
measurements; invalidation bookkeeping keeps running while disabled,
so re-enabling is always safe.

Conventions:

* attribute nodes are modeled as children with label ``@name`` (so tree
  patterns can match them uniformly, as in ``person[@id]``);
* ``val`` of an element is the concatenation of its text descendants in
  document order (XPath string value); ``val`` of an attribute or text
  node is its own string;
* ``cont`` is the serialized XML image of the subtree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.xmldom.index import LabelIndex, ValueIndex
from repro.xmldom.dewey import (
    DeweyID,
    Ordinal,
    ordinal_after,
    ordinal_before,
    ordinal_between,
    ordinal_initial,
)

TEXT_LABEL = "#text"

_USE_HOT_PATH_CACHES = True


def set_hot_path_caches(enabled: bool) -> bool:
    """Toggle val/cont memoization and indexed σ lookups; returns the
    previous setting.  Benchmarks and regression tests use this to
    compare the indexed hot path against seed-equivalent recomputation;
    cache invalidation keeps running while disabled, so flipping the
    switch mid-session never yields stale reads."""
    global _USE_HOT_PATH_CACHES
    previous = _USE_HOT_PATH_CACHES
    _USE_HOT_PATH_CACHES = bool(enabled)
    return previous


def hot_path_caches_enabled() -> bool:
    """Whether val/cont memoization and indexed σ lookups are active.

    The maintenance engine's dirty-subtree repair restores pre-batch
    values into detached nodes' caches; that restoration is only
    effective while memoization is on, so the engine consults this
    before choosing repair over recomputation."""
    return _USE_HOT_PATH_CACHES


def fresh_val(node: "Node") -> str:
    """``val`` recomputed from the tree, bypassing any memoized value."""
    if isinstance(node, ElementNode):
        parts: List[str] = []
        node._collect_text(parts)
        return "".join(parts)
    return node.val


class Node:
    """Common behaviour of element, attribute and text nodes."""

    __slots__ = ("label", "parent", "dewey")

    kind = "node"

    def __init__(self, label: str):
        self.label = label
        self.parent: Optional["ElementNode"] = None
        self.dewey: Optional[DeweyID] = None

    # -- tree navigation ------------------------------------------------

    def ancestors(self) -> Iterator["ElementNode"]:
        """Proper ancestors, innermost first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def self_and_descendants(self) -> Iterator["Node"]:
        yield self

    def descendants(self) -> Iterator["Node"]:
        return iter(())

    # -- stored attributes (ID / val / cont) ----------------------------

    @property
    def id(self) -> DeweyID:
        if self.dewey is None:
            raise ValueError("node %r is not part of a document yet" % (self.label,))
        return self.dewey

    @property
    def val(self) -> str:
        raise NotImplementedError

    @property
    def cont(self) -> str:
        from repro.xmldom.serializer import serialize_fragment

        return serialize_fragment(self)

    def __repr__(self) -> str:
        ident = str(self.dewey) if self.dewey is not None else "<detached>"
        return "%s(%s)" % (type(self).__name__, ident)


class TextNode(Node):
    """A text node; its ``val`` is its character data."""

    __slots__ = ("text",)

    kind = "text"

    def __init__(self, text: str):
        super().__init__(TEXT_LABEL)
        self.text = text

    @property
    def val(self) -> str:
        return self.text


class AttributeNode(Node):
    """An attribute, modeled as a labeled child node ``@name``."""

    __slots__ = ("value",)

    kind = "attribute"

    def __init__(self, name: str, value: str):
        label = name if name.startswith("@") else "@" + name
        super().__init__(label)
        self.value = value

    @property
    def name(self) -> str:
        return self.label[1:]

    @property
    def val(self) -> str:
        return self.value


class ElementNode(Node):
    """An element with an ordered child list (attributes come first).

    ``val`` and ``cont`` are memoized; the owning document invalidates
    the caches along the ancestor chain of every subtree change (see
    the module docstring for the invariant).  Detached construction
    (:meth:`append` / :meth:`set_attribute`) needs no invalidation:
    attached-tree mutations must go through the document's
    ``insert_subtree`` / ``delete_subtree``, which deep-copy their
    input and therefore never see pre-populated caches.
    """

    __slots__ = ("children", "_val_cache", "_cont_cache")

    kind = "element"

    def __init__(self, label: str, children: Sequence[Node] = ()):
        super().__init__(label)
        self.children: List[Node] = []
        self._val_cache: Optional[str] = None
        self._cont_cache: Optional[str] = None
        for child in children:
            self.append(child)

    # -- construction ----------------------------------------------------

    def append(self, child: Node) -> Node:
        """Attach ``child`` as the last child (no ID assignment)."""
        if child.parent is not None:
            raise ValueError("node %r already has a parent" % (child.label,))
        child.parent = self
        self.children.append(child)
        return child

    def set_attribute(self, name: str, value: str) -> AttributeNode:
        attr = AttributeNode(name, value)
        # Attributes conventionally precede other children.
        attr.parent = self
        index = 0
        while index < len(self.children) and self.children[index].kind == "attribute":
            index += 1
        self.children.insert(index, attr)
        return attr

    # -- navigation -------------------------------------------------------

    def self_and_descendants(self) -> Iterator[Node]:
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ElementNode):
                stack.extend(reversed(node.children))

    def descendants(self) -> Iterator[Node]:
        nodes = self.self_and_descendants()
        next(nodes)
        return nodes

    def child_elements(self) -> Iterator["ElementNode"]:
        return (child for child in self.children if isinstance(child, ElementNode))

    def attribute(self, name: str) -> Optional[AttributeNode]:
        label = name if name.startswith("@") else "@" + name
        for child in self.children:
            if child.kind == "attribute" and child.label == label:
                return child  # type: ignore[return-value]
        return None

    @property
    def val(self) -> str:
        """XPath string value: concatenated text descendants in order.

        Memoized via the children's caches, so recomputation after an
        invalidation costs only the dirty chain, not the full subtree.
        """
        if not _USE_HOT_PATH_CACHES:
            return fresh_val(self)
        cached = self._val_cache
        if cached is None:
            pieces: List[str] = []
            for child in self.children:
                if child.kind == "text":
                    pieces.append(child.text)  # type: ignore[attr-defined]
                elif child.kind == "element":
                    pieces.append(child.val)
            cached = "".join(pieces)
            self._val_cache = cached
        return cached

    @property
    def cont(self) -> str:
        """Serialized XML image of the subtree, memoized."""
        from repro.xmldom.serializer import serialize_fragment

        if not _USE_HOT_PATH_CACHES:
            return serialize_fragment(self)
        cached = self._cont_cache
        if cached is None:
            cached = serialize_fragment(self)
            self._cont_cache = cached
        return cached

    def _collect_text(self, parts: List[str]) -> None:
        for child in self.children:
            if child.kind == "text":
                parts.append(child.val)
            elif isinstance(child, ElementNode):
                child._collect_text(parts)


def deep_copy(node: Node) -> Node:
    """Structural copy of a subtree, detached (no parent, no IDs)."""
    if isinstance(node, TextNode):
        return TextNode(node.text)
    if isinstance(node, AttributeNode):
        return AttributeNode(node.name, node.value)
    assert isinstance(node, ElementNode)
    clone = ElementNode(node.label)
    for child in node.children:
        clone.append(deep_copy(child))
    return clone


class Document:
    """A rooted XML document with structural IDs and canonical relations."""

    def __init__(self, root: ElementNode, uri: str = "doc.xml"):
        self.uri = uri
        self.root = root
        self._index = LabelIndex()
        self._values = ValueIndex(self._index, elements=self.all_elements)
        self._by_id: Dict[DeweyID, Node] = {}
        # IDs of deleted nodes are *retired*, never reissued: node
        # identity is immutable (XDM) and the Dewey scheme guarantees
        # a dead ID stays dead, so references held by pending update
        # lists or optimizers can never silently re-bind.
        self._retired_ids: set = set()
        self._assign_ids()

    # -- bulk loading ------------------------------------------------------

    def _assign_ids(self) -> None:
        self.root.dewey = DeweyID.root(self.root.label)
        stack: List[ElementNode] = [self.root]
        all_nodes: List[Node] = [self.root]
        while stack:
            element = stack.pop()
            for position, child in enumerate(element.children, start=1):
                child.dewey = element.id.child(child.label, ordinal_initial(position))
                all_nodes.append(child)
                if isinstance(child, ElementNode):
                    stack.append(child)
        self._index.add_bulk(all_nodes)
        for node in all_nodes:
            self._by_id[node.id] = node

    # -- canonical relations -------------------------------------------------

    def labels(self) -> Iterator[str]:
        """All labels with at least one node in the document."""
        return self._index.labels()

    def nodes_with_label(self, label: str) -> List[Node]:
        """The canonical relation ``R_label`` (document-ordered, live view)."""
        return self._index.nodes(label)

    def snapshot_label(self, label: str) -> List[Node]:
        """A copy of ``R_label``, immune to subsequent updates."""
        return self._index.copy_label(label)

    def nodes_with_value(self, label: str, constant: str) -> List[Node]:
        """σ-constant selection ``σ_{val=constant}(R_label)`` via the
        value index (document-ordered, fresh list).

        ``label`` may be ``"*"``: the selection then runs over every
        element via the lazily built all-labels entry, so wildcard σ
        pattern nodes avoid the ``all_elements()`` scan.
        """
        if not _USE_HOT_PATH_CACHES:
            if label == "*":
                return [n for n in self.all_elements() if n.val == constant]
            return [n for n in self._index.nodes(label) if n.val == constant]
        return self._values.lookup(label, constant)

    def all_elements(self) -> Iterator[ElementNode]:
        for node in self.root.self_and_descendants():
            if isinstance(node, ElementNode):
                yield node

    def node_by_id(self, dewey: DeweyID) -> Optional[Node]:
        """Resolve an ID to its node (None if absent)."""
        return self._by_id.get(dewey)

    def size_in_nodes(self) -> int:
        return sum(len(self._index.nodes(label)) for label in self._index.labels())

    # -- updates (used by repro.updates.pul) ---------------------------------

    def _sibling_ordinal(self, parent: ElementNode, position: int) -> Ordinal:
        """A fresh ordinal for a child inserted at ``position``."""
        siblings = parent.children
        left = siblings[position - 1].id.ordinal if position > 0 else None
        right = siblings[position].id.ordinal if position < len(siblings) else None
        if left is None and right is None:
            return ordinal_initial(1)
        if left is None:
            assert right is not None
            return ordinal_before(right)
        if right is None:
            return ordinal_after(left)
        return ordinal_between(left, right)

    def insert_subtree(
        self,
        parent: ElementNode,
        subtree: Node,
        position: Optional[int] = None,
    ) -> Node:
        """Copy ``subtree`` as a new child of ``parent`` and index it.

        Implements the paper's *apply-insert(n, t)* helper: the returned
        tree is a fresh copy whose nodes carry the Dewey IDs assigned in
        their new context.  ``position`` defaults to "after the last
        child" (the XQuery Update ``insert into`` semantics used by the
        paper's ``ins↘`` operation).
        """
        if position is None:
            position = len(parent.children)
        clone = deep_copy(subtree)
        ordinal = self._sibling_ordinal(parent, position)
        # Never reissue a retired ID: nudge the ordinal upward (staying
        # below the right sibling, if any) until the ID is fresh.
        right = (
            parent.children[position].id.ordinal
            if position < len(parent.children)
            else None
        )
        while parent.id.child(clone.label, ordinal) in self._retired_ids:
            if right is None:
                ordinal = ordinal_after(ordinal)
            else:
                ordinal = ordinal_between(ordinal, right)
        clone.parent = parent
        parent.children.insert(position, clone)
        clone.dewey = parent.id.child(clone.label, ordinal)
        new_nodes: List[Node] = [clone]
        if isinstance(clone, ElementNode):
            stack = [clone]
            while stack:
                element = stack.pop()
                for child_position, child in enumerate(element.children, start=1):
                    child.dewey = element.id.child(child.label, ordinal_initial(child_position))
                    new_nodes.append(child)
                    if isinstance(child, ElementNode):
                        stack.append(child)
        text_changed = False
        for node in new_nodes:
            self._index.add(node)
            self._by_id[node.id] = node
            self._values.on_add(node)
            if node.kind == "text":
                text_changed = True
        self._invalidate_ancestors(parent, text_changed)
        return clone

    def delete_subtree(self, node: Node) -> List[Node]:
        """Remove ``node`` and its subtree; returns the removed nodes.

        Per XQuery Update semantics, deleting a node removes all its
        descendants as well; the returned list (document order) is what
        CD− turns into Δ− tables.
        """
        if node.parent is None:
            raise ValueError("cannot delete the document root")
        removed = list(node.self_and_descendants())
        removed.sort(key=lambda n: n.id)
        text_changed = False
        for gone in removed:
            self._index.remove(gone)
            self._by_id.pop(gone.id, None)
            self._retired_ids.add(gone.id)
            self._values.on_remove(gone)
            if gone.kind == "text":
                text_changed = True
        parent = node.parent
        parent.children.remove(node)
        node.parent = None
        self._invalidate_ancestors(parent, text_changed)
        return removed

    def _invalidate_ancestors(self, element: Optional[ElementNode], text_changed: bool) -> None:
        """Clear memoized val/cont along the ancestor chain of a change.

        ``cont`` changes for every structural change; ``val`` only when
        the moved subtree contained text, in which case the value index
        is told to re-bucket the affected elements on its next lookup.
        """
        walk = element
        while walk is not None:
            walk._cont_cache = None
            if text_changed:
                walk._val_cache = None
                self._values.on_val_change(walk)
            walk = walk.parent

    def __repr__(self) -> str:
        return "Document(uri=%r, root=%r)" % (self.uri, self.root.label)


def build_document(root: ElementNode, uri: str = "doc.xml") -> Document:
    """Wrap a detached element tree into a document, assigning IDs."""
    return Document(root, uri=uri)
