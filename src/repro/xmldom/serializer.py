"""Serialization of nodes and documents back to XML text.

``serialize_fragment`` is what backs the ``cont`` stored attribute of
view tuples: the serialized image of the subtree rooted at a node.
"""

from __future__ import annotations

from typing import List

from repro.xmldom.model import AttributeNode, Document, ElementNode, Node, TextNode


def escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    return escape_text(text).replace('"', "&quot;")


def _write_node(node: Node, out: List[str], indent: int, pretty: bool) -> None:
    pad = "  " * indent if pretty else ""
    newline = "\n" if pretty else ""
    if isinstance(node, TextNode):
        out.append("%s%s%s" % (pad, escape_text(node.text), newline))
        return
    if isinstance(node, AttributeNode):
        # A detached attribute serialized on its own (rare; used when an
        # attribute node is itself a view return node).
        out.append('%s%s="%s"%s' % (pad, node.name, escape_attribute(node.value), newline))
        return
    assert isinstance(node, ElementNode)
    attributes = [child for child in node.children if child.kind == "attribute"]
    others = [child for child in node.children if child.kind != "attribute"]
    attr_text = "".join(
        ' %s="%s"' % (attr.name, escape_attribute(attr.value))  # type: ignore[union-attr]
        for attr in attributes
    )
    if not others:
        out.append("%s<%s%s/>%s" % (pad, node.label, attr_text, newline))
        return
    out.append("%s<%s%s>%s" % (pad, node.label, attr_text, newline))
    for child in others:
        _write_node(child, out, indent + 1, pretty)
    out.append("%s</%s>%s" % (pad, node.label, newline))


def serialize_fragment(node: Node, pretty: bool = False) -> str:
    """Serialize one subtree (the ``cont`` of its root)."""
    out: List[str] = []
    _write_node(node, out, 0, pretty)
    return "".join(out)


def serialize(document: Document, pretty: bool = False, declaration: bool = True) -> str:
    """Serialize a whole document."""
    out: List[str] = []
    if declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>')
        out.append("\n")
    _write_node(document.root, out, 0, pretty)
    return "".join(out)
