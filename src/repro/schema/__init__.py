"""DTD-based schema reasoning (Section 3.3).

DTDs are modeled as extended context-free grammars whose right-hand
sides are regular expressions over element labels (Figure 5).  From a
DTD we derive constraints over the Δ+ tables ("Δ+_b ≠ ∅ ⇒ Δ+_c ≠ ∅",
Examples 3.9/3.10) that cheaply reject schema-violating insertions at
run time, plus a full content-model revalidation of the update targets
for the precise check.
"""

from repro.schema.dtd import (
    DTD,
    ContentModel,
    DTDSyntaxError,
    any_model,
    choice,
    empty_model,
    name,
    opt,
    parse_dtd,
    plus,
    seq,
    star,
    text_model,
)
from repro.schema.constraints import (
    DeltaImplication,
    check_insert_against_dtd,
    derive_delta_implications,
    validate_document,
)

__all__ = [
    "DTD",
    "ContentModel",
    "DTDSyntaxError",
    "DeltaImplication",
    "any_model",
    "check_insert_against_dtd",
    "choice",
    "derive_delta_implications",
    "empty_model",
    "name",
    "opt",
    "parse_dtd",
    "plus",
    "seq",
    "star",
    "text_model",
    "validate_document",
]
