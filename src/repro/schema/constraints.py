"""Run-time schema-violation detection from Δ+ tables (Section 3.3).

Two layers, as the paper sketches:

1. **Δ-implications** (:func:`derive_delta_implications`): from the DTD
   derive rules of the form ``Δ+_a ≠ ∅ ⇒ Δ+_b ≠ ∅`` (Example 3.10; the
   contrapositive of Example 3.9's ``Δ+_c = ∅ ⇒ Δ+_b = ∅``) and check
   them on the Δ+ tables of an insertion *before* touching the
   document.  Cheap but incomplete.
2. **Target revalidation** (:func:`check_insert_against_dtd`): rebuild
   each target's would-be child-label sequence and match it against the
   target's content model, and validate the inserted trees internally.
   Complete for the supported DTD fragment (covers the sibling
   constraints of Example 3.10: inserting ``a`` under ``d2`` demands
   ``b`` and ``c`` ride along).

The user-facing contract matches the paper: when a violation is
reported the caller may refuse the update or let it through knowingly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.schema.dtd import DTD
from repro.updates.pul import AtomicInsert, PendingUpdateList
from repro.xmldom.model import Document, ElementNode, Node


class DeltaImplication:
    """``Δ+_antecedent ≠ ∅ ⇒ Δ+_consequent ≠ ∅``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: str, consequent: str):
        self.antecedent = antecedent
        self.consequent = consequent

    def holds(self, delta_labels: Set[str]) -> bool:
        return self.antecedent not in delta_labels or self.consequent in delta_labels

    def __repr__(self) -> str:
        return "Δ+%s≠∅ ⇒ Δ+%s≠∅" % (self.antecedent, self.consequent)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DeltaImplication)
            and self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self) -> int:
        return hash((self.antecedent, self.consequent))


def derive_delta_implications(dtd: DTD) -> List[DeltaImplication]:
    """All required-descendant implications the DTD induces.

    For DTD d1 of Figure 5 (``b → c``) this yields ``Δ+_b ≠ ∅ ⇒
    Δ+_c ≠ ∅``, whose violation rejects update u5 of Example 3.9.
    """
    out: List[DeltaImplication] = []
    for label in sorted(dtd.rules):
        for required in sorted(dtd.required_descendants(label)):
            out.append(DeltaImplication(label, required))
    return out


def _inserted_labels(forest: Sequence[Node]) -> Set[str]:
    labels: Set[str] = set()
    for tree in forest:
        for node in tree.self_and_descendants():
            if isinstance(node, ElementNode):
                labels.add(node.label)
    return labels


def check_delta_implications(
    dtd: DTD, forest: Sequence[Node], implications: Sequence[DeltaImplication] = ()
) -> List[str]:
    """Layer 1: check Δ-implications over an insertion's forest."""
    rules = list(implications) or derive_delta_implications(dtd)
    labels = _inserted_labels(forest)
    return [
        "inserted %s without the required %s (%r)"
        % (rule.antecedent, rule.consequent, rule)
        for rule in rules
        if not rule.holds(labels)
    ]


def _element_children_labels(element: ElementNode) -> List[str]:
    return [child.label for child in element.children if isinstance(child, ElementNode)]


def _validate_tree(dtd: DTD, tree: Node, problems: List[str]) -> None:
    if not isinstance(tree, ElementNode):
        return
    if not dtd.allows_children(tree.label, _element_children_labels(tree)):
        problems.append(
            "element <%s> with children %r violates its content model"
            % (tree.label, _element_children_labels(tree))
        )
    for child in tree.children:
        _validate_tree(dtd, child, problems)


def check_insert_against_dtd(dtd: DTD, pul: PendingUpdateList) -> List[str]:
    """Layer 2: full revalidation of an insertion PUL.

    Checks (a) every inserted tree internally and (b) every target's
    post-insert child sequence, without touching the document.
    """
    problems: List[str] = []
    for op in pul.inserts():
        assert isinstance(op, AtomicInsert)
        for tree in op.forest:
            _validate_tree(dtd, tree, problems)
        target = op.target
        future = _element_children_labels(target) + [
            tree.label for tree in op.forest if isinstance(tree, ElementNode)
        ]
        if not dtd.allows_children(target.label, future):
            problems.append(
                "inserting %r under <%s> (%s) yields invalid children %r"
                % (
                    [tree.label for tree in op.forest],
                    target.label,
                    target.id,
                    future,
                )
            )
    return problems


def validate_document(dtd: DTD, document: Document) -> List[str]:
    """Validate the whole document against the DTD."""
    problems: List[str] = []
    _validate_tree(dtd, document.root, problems)
    if dtd.root is not None and document.root.label != dtd.root:
        problems.append(
            "root is <%s>, DTD expects <%s>" % (document.root.label, dtd.root)
        )
    return problems
