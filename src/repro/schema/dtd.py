"""DTDs as extended context-free grammars with regular right-hand sides.

Content models are regular expressions over element labels::

    name(l)         a single required child labeled l
    seq(m1, m2...)  concatenation
    choice(m1,...)  disjunction
    star(m) / plus(m) / opt(m)
    empty_model()   EMPTY
    text_model()    #PCDATA (character data only)
    any_model()     ANY

Matching a child-label sequence against a model runs a Thompson-style
epsilon-NFA built once per element declaration.  Besides validation,
the analyses feeding Section 3.3 live here:

* :meth:`ContentModel.required_labels` -- labels occurring in *every*
  word of the model's language (a ``b → c`` rule makes ``c`` required);
* :meth:`DTD.required_descendants` -- the transitive closure of the
  above, which induces the Δ-table implications of Examples 3.9/3.10.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


class ContentModel:
    """Base class of content-model regular expressions."""

    def required_labels(self) -> FrozenSet[str]:
        """Labels present in every word of the language."""
        raise NotImplementedError

    def possible_labels(self) -> FrozenSet[str]:
        """Labels present in at least one word."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Does the language contain the empty word?"""
        raise NotImplementedError

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        raise NotImplementedError


class _Name(ContentModel):
    def __init__(self, label: str):
        self.label = label

    def required_labels(self) -> FrozenSet[str]:
        return frozenset((self.label,))

    def possible_labels(self) -> FrozenSet[str]:
        return frozenset((self.label,))

    def nullable(self) -> bool:
        return False

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        nfa.add_label_edge(start, self.label, end)

    def __repr__(self) -> str:
        return self.label


class _Seq(ContentModel):
    def __init__(self, parts: Sequence[ContentModel]):
        self.parts = list(parts)

    def required_labels(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.required_labels()
        return frozenset(out)

    def possible_labels(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.possible_labels()
        return frozenset(out)

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        current = start
        for part in self.parts[:-1]:
            nxt = nfa.new_state()
            part._build(nfa, current, nxt)
            current = nxt
        self.parts[-1]._build(nfa, current, end)

    def __repr__(self) -> str:
        return "(%s)" % ", ".join(repr(part) for part in self.parts)


class _Choice(ContentModel):
    def __init__(self, parts: Sequence[ContentModel]):
        self.parts = list(parts)

    def required_labels(self) -> FrozenSet[str]:
        sets = [part.required_labels() for part in self.parts]
        out = set(sets[0])
        for other in sets[1:]:
            out &= other
        return frozenset(out)

    def possible_labels(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.possible_labels()
        return frozenset(out)

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        for part in self.parts:
            part._build(nfa, start, end)

    def __repr__(self) -> str:
        return "(%s)" % " | ".join(repr(part) for part in self.parts)


class _Repeat(ContentModel):
    def __init__(self, inner: ContentModel, at_least_one: bool):
        self.inner = inner
        self.at_least_one = at_least_one

    def required_labels(self) -> FrozenSet[str]:
        return self.inner.required_labels() if self.at_least_one else frozenset()

    def possible_labels(self) -> FrozenSet[str]:
        return self.inner.possible_labels()

    def nullable(self) -> bool:
        return not self.at_least_one or self.inner.nullable()

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        loop = nfa.new_state()
        self.inner._build(nfa, loop, loop)
        if self.at_least_one:
            first = nfa.new_state()
            self.inner._build(nfa, start, first)
            nfa.add_eps_edge(first, loop)
            nfa.add_eps_edge(first, end)
            nfa.add_eps_edge(loop, end)
        else:
            nfa.add_eps_edge(start, loop)
            nfa.add_eps_edge(loop, end)

    def __repr__(self) -> str:
        return "%r%s" % (self.inner, "+" if self.at_least_one else "*")


class _Opt(ContentModel):
    def __init__(self, inner: ContentModel):
        self.inner = inner

    def required_labels(self) -> FrozenSet[str]:
        return frozenset()

    def possible_labels(self) -> FrozenSet[str]:
        return self.inner.possible_labels()

    def nullable(self) -> bool:
        return True

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        self.inner._build(nfa, start, end)
        nfa.add_eps_edge(start, end)

    def __repr__(self) -> str:
        return "%r?" % (self.inner,)


class _Empty(ContentModel):
    def required_labels(self) -> FrozenSet[str]:
        return frozenset()

    def possible_labels(self) -> FrozenSet[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        nfa.add_eps_edge(start, end)

    def __repr__(self) -> str:
        return "EMPTY"


class _Any(ContentModel):
    def required_labels(self) -> FrozenSet[str]:
        return frozenset()

    def possible_labels(self) -> FrozenSet[str]:
        return frozenset(("*",))

    def nullable(self) -> bool:
        return True

    def _build(self, nfa: "_NFA", start: int, end: int) -> None:
        nfa.add_label_edge(start, "*", start)
        nfa.add_eps_edge(start, end)

    def __repr__(self) -> str:
        return "ANY"


def name(label: str) -> ContentModel:
    return _Name(label)


def seq(*parts: ContentModel) -> ContentModel:
    return _Seq(parts) if len(parts) != 1 else parts[0]


def choice(*parts: ContentModel) -> ContentModel:
    return _Choice(parts) if len(parts) != 1 else parts[0]


def star(inner: ContentModel) -> ContentModel:
    return _Repeat(inner, at_least_one=False)


def plus(inner: ContentModel) -> ContentModel:
    return _Repeat(inner, at_least_one=True)


def opt(inner: ContentModel) -> ContentModel:
    return _Opt(inner)


def empty_model() -> ContentModel:
    return _Empty()


def text_model() -> ContentModel:
    """#PCDATA: character content only, no element children."""
    return _Empty()


def any_model() -> ContentModel:
    return _Any()


class _NFA:
    """Thompson epsilon-NFA over the label alphabet ('*' = wildcard)."""

    def __init__(self) -> None:
        self.eps: List[List[int]] = []
        self.labeled: List[List[Tuple[str, int]]] = []
        self.start = self.new_state()
        self.accept = self.new_state()

    def new_state(self) -> int:
        self.eps.append([])
        self.labeled.append([])
        return len(self.eps) - 1

    def add_eps_edge(self, src: int, dst: int) -> None:
        self.eps[src].append(dst)

    def add_label_edge(self, src: int, label: str, dst: int) -> None:
        self.labeled[src].append((label, dst))

    def _closure(self, states: Set[int]) -> Set[int]:
        stack = list(states)
        closed = set(states)
        while stack:
            state = stack.pop()
            for nxt in self.eps[state]:
                if nxt not in closed:
                    closed.add(nxt)
                    stack.append(nxt)
        return closed

    def matches(self, labels: Sequence[str]) -> bool:
        current = self._closure({self.start})
        for label in labels:
            nxt: Set[int] = set()
            for state in current:
                for edge_label, dst in self.labeled[state]:
                    if edge_label == "*" or edge_label == label:
                        nxt.add(dst)
            if not nxt:
                return False
            current = self._closure(nxt)
        return self.accept in current


class DTDSyntaxError(ValueError):
    pass


class DTD:
    """A set of element declarations ``label → content model``.

    Undeclared elements are treated as ``ANY`` (open interpretation),
    so partial DTDs constrain only what they mention.
    """

    def __init__(self, rules: Dict[str, ContentModel], root: Optional[str] = None):
        self.rules = dict(rules)
        self.root = root
        self._nfas: Dict[str, _NFA] = {}

    def model_for(self, label: str) -> Optional[ContentModel]:
        return self.rules.get(label)

    def _nfa_for(self, label: str) -> Optional[_NFA]:
        if label not in self.rules:
            return None
        nfa = self._nfas.get(label)
        if nfa is None:
            nfa = _NFA()
            self.rules[label]._build(nfa, nfa.start, nfa.accept)
            self._nfas[label] = nfa
        return nfa

    def allows_children(self, label: str, child_labels: Sequence[str]) -> bool:
        """Does the child element-label sequence satisfy the model?"""
        nfa = self._nfa_for(label)
        if nfa is None:
            return True
        return nfa.matches(list(child_labels))

    # -- analyses feeding Section 3.3 --------------------------------------

    def required_children(self, label: str) -> FrozenSet[str]:
        model = self.rules.get(label)
        return model.required_labels() if model is not None else frozenset()

    def required_descendants(self, label: str) -> FrozenSet[str]:
        """Labels that must occur (at any depth) under every ``label``.

        Fixpoint over the required-children relation; a label requiring
        itself transitively denotes an unsatisfiable (infinite) element,
        which we simply report as requiring itself.
        """
        required: Set[str] = set()
        frontier = list(self.required_children(label))
        while frontier:
            current = frontier.pop()
            if current in required:
                continue
            required.add(current)
            frontier.extend(self.required_children(current) - required)
        return frozenset(required)

    def __repr__(self) -> str:
        return "DTD(%d rules)" % len(self.rules)


_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.-]+)\s+(.*?)>", re.DOTALL)


def _parse_model(text: str) -> ContentModel:
    text = text.strip()
    parser = _ModelParser(text)
    model = parser.parse_expression()
    parser.skip_ws()
    if parser.pos != len(parser.text):
        raise DTDSyntaxError("trailing content in model %r" % text)
    return model


class _ModelParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def parse_expression(self) -> ContentModel:
        self.skip_ws()
        if self.text.startswith("EMPTY", self.pos):
            self.pos += 5
            return empty_model()
        if self.text.startswith("ANY", self.pos):
            self.pos += 3
            return any_model()
        return self._parse_postfix()

    def _parse_postfix(self) -> ContentModel:
        base = self._parse_base()
        self.skip_ws()
        if self.pos < len(self.text):
            suffix = self.text[self.pos]
            if suffix == "*":
                self.pos += 1
                return star(base)
            if suffix == "+":
                self.pos += 1
                return plus(base)
            if suffix == "?":
                self.pos += 1
                return opt(base)
        return base

    def _parse_base(self) -> ContentModel:
        self.skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == "(":
            self.pos += 1
            parts = [self._parse_postfix()]
            self.skip_ws()
            connective = None
            while self.pos < len(self.text) and self.text[self.pos] in ",|":
                symbol = self.text[self.pos]
                if connective is None:
                    connective = symbol
                elif connective != symbol:
                    raise DTDSyntaxError("mixed , and | in one group: %r" % self.text)
                self.pos += 1
                parts.append(self._parse_postfix())
                self.skip_ws()
            if self.pos >= len(self.text) or self.text[self.pos] != ")":
                raise DTDSyntaxError("unbalanced parentheses in %r" % self.text)
            self.pos += 1
            if connective == "|":
                return choice(*parts)
            return seq(*parts)
        if self.text.startswith("#PCDATA", self.pos):
            self.pos += len("#PCDATA")
            return text_model()
        match = re.match(r"[\w.-]+", self.text[self.pos:])
        if match is None:
            raise DTDSyntaxError("expected a name at %r" % self.text[self.pos:])
        self.pos += match.end()
        return name(match.group())


def parse_dtd(text: str, root: Optional[str] = None) -> DTD:
    """Parse ``<!ELEMENT name (model)>`` declarations."""
    rules: Dict[str, ContentModel] = {}
    for match in _ELEMENT_RE.finditer(text):
        label, model_text = match.group(1), match.group(2)
        rules[label] = _parse_model(model_text)
    if not rules:
        raise DTDSyntaxError("no element declarations found")
    return DTD(rules, root=root)
