"""Atomic update operations in the Cavalieri et al. calculus.

Two operation kinds cover the paper's Section 5 fragment:

* ``ins↘(v, P)`` -- :class:`Ins`: insert forest ``P`` after the last
  child of the node identified by ``v``;
* ``del(v)`` -- :class:`Del`: delete the node identified by ``v``.

Targets are Dewey IDs (the paper: "we represent the PULs in our
syntax, i.e., by making the IDs of nodes explicit").  Forests are
detached node trees; merging operations concatenates forests.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.updates.pul import AtomicDelete, AtomicInsert, PendingUpdateList
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Node, deep_copy
from repro.xmldom.parser import parse_fragment


class Operation:
    """Base class; ``target`` is a Dewey ID."""

    kind = "op"

    def __init__(self, target: DeweyID):
        self.target = target

    def __repr__(self) -> str:
        return "%s(%s)" % (self.kind, self.target)


class Ins(Operation):
    """``ins↘(target, forest)``."""

    kind = "ins"

    def __init__(self, target: DeweyID, forest: Union[str, Sequence[Node]]):
        super().__init__(target)
        if isinstance(forest, str):
            self.forest: List[Node] = parse_fragment(forest)
        else:
            self.forest = list(forest)

    def merged_with(self, other: "Ins") -> "Ins":
        """Rule I5 / A1: one insertion carrying both forests, in order."""
        if other.target != self.target:
            raise ValueError("cannot merge inserts with different targets")
        return Ins(self.target, self.forest + other.forest)

    def __repr__(self) -> str:
        return "ins↘(%s, [%s])" % (
            self.target,
            " ".join(tree.label for tree in self.forest),
        )


class Del(Operation):
    """``del(target)``."""

    kind = "del"


def pul_to_operations(pul: PendingUpdateList) -> List[Operation]:
    """Compile a PUL's atomic operations into the optimizer calculus.

    Forests are deep-copied so that later fragment-level rewrites (rule
    D6) cannot alias statement-owned trees.
    """
    out: List[Operation] = []
    for op in pul.operations:
        if isinstance(op, AtomicInsert):
            out.append(Ins(op.target.id, [deep_copy(tree) for tree in op.forest]))
        elif isinstance(op, AtomicDelete):
            out.append(Del(op.target.id))
    return out
