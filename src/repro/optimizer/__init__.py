"""PUL optimization (Section 5, after Cavalieri et al. 2011).

The paper interleaves its statement-level maintenance with the PUL
calculus of [Cavalieri et al. 2011]: statements are compiled to atomic
operations (``ins↘`` -- insert a forest after the last child -- and
``del``), which are then

* **reduced** (:mod:`repro.optimizer.rules`): O1 (op then delete of the
  same node), O3 (op then delete of an ancestor), I5 (merge same-target
  insertions);
* **checked for conflicts** when two PULs run in parallel
  (:mod:`repro.optimizer.conflicts`): IO (insertion order), LO (local
  override), NLO (non-local override);
* **aggregated** when two PULs run sequentially
  (:mod:`repro.optimizer.aggregation`): A1/A2 (merge same-target
  inserts across PULs), D6 (fold an op targeting a node of a
  to-be-inserted tree into that tree).

The optimized atomic sequence is what PINT/PDDT propagate (Figure 13).
"""

from repro.optimizer.ops import Del, Ins, Operation, pul_to_operations
from repro.optimizer.rules import reduce_operations, reduce_statements
from repro.optimizer.conflicts import Conflict, detect_conflicts
from repro.optimizer.aggregation import aggregate_puls

__all__ = [
    "Conflict",
    "Del",
    "Ins",
    "Operation",
    "aggregate_puls",
    "detect_conflicts",
    "pul_to_operations",
    "reduce_operations",
    "reduce_statements",
]
