"""Reduction rules O1, O3 and I5 (Figure 14).

Given one sequential list of atomic operations:

* **O1** -- ``op(n, _) ; del(n)`` with ``op ∈ {ins↘, del}``: only the
  deletion needs to run;
* **O3** -- ``op(n, _) ; del(n')`` with ``n`` a descendant of ``n'``:
  only the (ancestor) deletion needs to run;
* **I5** -- ``ins↘(n, L1) ; ins↘(n, L2)``: one insertion carrying
  ``[L1, L2]``.

O1/O3 belong to stage 1 and I5 to a later stage, so the reducer first
sweeps deletions over the list, then merges insertions.  Reduction is
semantics-preserving on the *document*; the experiments of Section 6.8
measure how much view-maintenance work it saves.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.optimizer.ops import Del, Ins, Operation
from repro.updates.language import UpdateStatement
from repro.updates.pul import compute_pul
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Document


def reduce_operations(operations: Sequence[Operation]) -> List[Operation]:
    """Apply O1, O3 and I5 to an atomic operation sequence."""
    # Stage 1: O1/O3.  A deletion voids every *earlier* operation
    # targeting the deleted node or any of its descendants.
    stage1: List[Operation] = []
    for op in operations:
        if isinstance(op, Del):
            target = op.target
            stage1 = [
                kept
                for kept in stage1
                if not (
                    kept.target == target or target.is_ancestor_of(kept.target)
                )
            ]
        stage1.append(op)
    # Dedupe identical deletions (a degenerate O1 instance).
    deduped: List[Operation] = []
    seen_deletes = set()
    for op in stage1:
        if isinstance(op, Del):
            if op.target in seen_deletes:
                continue
            seen_deletes.add(op.target)
        deduped.append(op)
    # Later stage: I5 merges insertions sharing a target, preserving the
    # position of the first occurrence and the forests' order.
    merged: List[Operation] = []
    insert_at: Dict[DeweyID, int] = {}
    for op in deduped:
        if isinstance(op, Ins):
            index = insert_at.get(op.target)
            if index is not None:
                merged[index] = merged[index].merged_with(op)  # type: ignore[union-attr]
                continue
            insert_at[op.target] = len(merged)
        merged.append(op)
    return merged


def reduce_statements(
    document: Document, statements: Sequence[UpdateStatement]
) -> List[UpdateStatement]:
    """Figure 13's CP → OR pipeline at statement granularity.

    Each statement is compiled to its PUL (CP); the concatenated atomic
    sequence is reduced (OR); the surviving operations are wrapped back
    into statements for propagation, in order.  To preserve the bulk
    (statement-level) character of propagation, maximal runs of
    same-kind operations are coalesced: consecutive deletions become one
    multi-target deletion, consecutive insertions of an identical forest
    become one multi-target insertion.
    """
    from repro.optimizer.ops import pul_to_operations
    from repro.updates.language import ResolvedDeleteUpdate, ResolvedInsertUpdate
    from repro.xmldom.serializer import serialize_fragment

    operations: List = []
    for statement in statements:
        operations.extend(pul_to_operations(compute_pul(document, statement)))
    reduced = reduce_operations(operations)

    out: List[UpdateStatement] = []

    def forest_key(op: Ins) -> str:
        return "".join(serialize_fragment(tree) for tree in op.forest)

    index = 0
    while index < len(reduced):
        op = reduced[index]
        if isinstance(op, Del):
            targets = [op.target]
            while index + 1 < len(reduced) and isinstance(reduced[index + 1], Del):
                index += 1
                targets.append(reduced[index].target)
            out.append(ResolvedDeleteUpdate(targets, name="reduced_del_%d" % len(out)))
        else:
            assert isinstance(op, Ins)
            key = forest_key(op)
            targets = [op.target]
            while (
                index + 1 < len(reduced)
                and isinstance(reduced[index + 1], Ins)
                and forest_key(reduced[index + 1]) == key
            ):
                index += 1
                targets.append(reduced[index].target)
            out.append(
                ResolvedInsertUpdate(targets, op.forest, name="reduced_ins_%d" % len(out))
            )
        index += 1
    return out
