"""Aggregation rules for sequential PULs: A1, A2, D6 (Figure 16).

Aggregating ``Δ1 ; Δ2`` (``Δ2`` runs on the document as updated by
``Δ1``) merges operations across the two lists:

* **A1** -- ``ins↘(v, L1) ∈ Δ1`` and ``ins↘(v, L2) ∈ Δ2``: fold the
  second insert into the first as ``ins↘(v, [L1, L2])``;
* **A2** -- the mirror image, folding into Δ2's insert;
* **D6** -- an operation of Δ2 targets a node that only exists inside
  a tree Δ1 is about to insert: apply it to the fragment directly and
  drop it from Δ2 (Example 5.3's ``<d><b/></d>`` gaining a second
  ``<b/>``).

D6 resolves the "future node" by walking the fragment with the target
ID's label steps beyond the insertion point -- the Dewey encoding makes
the would-be path of fragment nodes predictable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.optimizer.ops import Del, Ins, Operation
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import ElementNode, Node


def _find_fragment_node(ins: Ins, target: DeweyID) -> Optional[ElementNode]:
    """Locate, inside an insert's fragment, the future node ``target``.

    ``target`` must extend the insertion point's ID; the extra label
    steps are matched against the fragment's structure (positions are
    matched by per-label ordinal among siblings when unambiguous).
    """
    base = ins.target
    if not base.is_ancestor_of(target):
        return None
    extra_steps = target.steps[base.depth:]
    candidates: Sequence[Node] = ins.forest
    node: Optional[ElementNode] = None
    for label, _ordinal in extra_steps:
        matches = [
            child
            for child in candidates
            if isinstance(child, ElementNode) and child.label == label
        ]
        if len(matches) != 1:
            return None  # ambiguous or absent: rule does not apply
        node = matches[0]
        candidates = node.children
    return node


def aggregate_puls(
    pul1: Sequence[Operation], pul2: Sequence[Operation]
) -> Tuple[List[Operation], List[Operation]]:
    """Apply A1/A2/D6 to a sequential pair of PULs.

    Returns the rewritten ``(Δ1', Δ2')``; their sequential execution is
    equivalent to the input's.
    """
    first: List[Operation] = list(pul1)
    second: List[Operation] = []
    for op2 in pul2:
        folded = False
        # A1: merge into an existing Δ1 insert on the same target.
        if isinstance(op2, Ins):
            for index, op1 in enumerate(first):
                if isinstance(op1, Ins) and op1.target == op2.target:
                    first[index] = op1.merged_with(op2)
                    folded = True
                    break
        if folded:
            continue
        # D6: op2 references a node inside a Δ1 fragment-to-be.
        for op1 in first:
            if not isinstance(op1, Ins):
                continue
            spot = _find_fragment_node(op1, op2.target)
            if spot is None:
                continue
            if isinstance(op2, Ins):
                for tree in op2.forest:
                    spot.append(tree)
            else:
                parent = spot.parent
                if parent is not None:
                    parent.children.remove(spot)
                    spot.parent = None
                else:
                    op1.forest.remove(spot)
            folded = True
            break
        if not folded:
            second.append(op2)
    # A2: merge Δ1 inserts forward into Δ2 inserts sharing a target when
    # the Δ1 copy did not already absorb them (A1 ran first); at this
    # point any same-target pair has been folded, so A2 is a no-op --
    # kept for rule-set completeness.
    return first, second
