"""Conflict rules for parallel PULs: IO, LO, NLO (Figure 15).

When two pending update lists are to be integrated for parallel
execution, some operation pairs are order-sensitive or overriding:

* **IO (Insertion Order)** -- two ``ins↘`` on the same target: the
  resulting sibling order depends on execution order (symmetric);
* **LO (Local Override)** -- ``del`` in one PUL and ``ins↘`` on the
  same target in the other: the insertion's effect is voided;
* **NLO (Non-Local Override)** -- ``del`` whose target is an ancestor
  of the other PUL's ``ins↘`` target.

Detection returns the conflicts plus the conflict-free remainder; how
conflicts are resolved is the PUL producers' policy (the paper leaves
this open), so a pluggable ``resolution`` callback decides survivor
operations, defaulting to "fail on any conflict".
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.optimizer.ops import Del, Ins, Operation


class Conflict:
    """One detected conflict between operations of two parallel PULs."""

    KINDS = ("IO", "LO", "NLO")

    def __init__(self, kind: str, first: Operation, second: Operation):
        if kind not in self.KINDS:
            raise ValueError("unknown conflict kind %r" % kind)
        self.kind = kind
        self.first = first
        self.second = second

    @property
    def symmetric(self) -> bool:
        """IO conflicts are order-symmetric; overrides are directed."""
        return self.kind == "IO"

    def __repr__(self) -> str:
        arrow = "<->" if self.symmetric else "->"
        return "Conflict(%s: %r %s %r)" % (self.kind, self.first, arrow, self.second)


def detect_conflicts(
    pul1: Sequence[Operation], pul2: Sequence[Operation]
) -> List[Conflict]:
    """All IO/LO/NLO conflicts between two parallel PULs."""
    conflicts: List[Conflict] = []
    for op1 in pul1:
        for op2 in pul2:
            if isinstance(op1, Ins) and isinstance(op2, Ins):
                if op1.target == op2.target:
                    conflicts.append(Conflict("IO", op1, op2))
            elif isinstance(op1, Del) and isinstance(op2, Ins):
                if op1.target == op2.target:
                    conflicts.append(Conflict("LO", op2, op1))
                elif op1.target.is_ancestor_of(op2.target):
                    conflicts.append(Conflict("NLO", op2, op1))
            elif isinstance(op1, Ins) and isinstance(op2, Del):
                if op2.target == op1.target:
                    conflicts.append(Conflict("LO", op1, op2))
                elif op2.target.is_ancestor_of(op1.target):
                    conflicts.append(Conflict("NLO", op1, op2))
    return conflicts


Resolution = Callable[[Conflict], Optional[Operation]]


def fail_on_conflict(conflict: Conflict) -> Optional[Operation]:
    """Default policy: any conflict aborts integration."""
    raise ValueError("unresolved PUL conflict: %r" % conflict)


def deletes_win(conflict: Conflict) -> Optional[Operation]:
    """A simple policy: overriding deletions win, IO keeps first-PUL order."""
    if conflict.kind in ("LO", "NLO"):
        return conflict.second  # the delete
    return None  # IO: keep both, first PUL's op first


def integrate_puls(
    pul1: Sequence[Operation],
    pul2: Sequence[Operation],
    resolution: Resolution = fail_on_conflict,
) -> Tuple[List[Operation], List[Conflict]]:
    """Integrate two parallel PULs under a conflict-resolution policy.

    Returns the integrated operation list and the conflicts that were
    resolved.  With the default policy, any conflict raises.
    """
    conflicts = detect_conflicts(pul1, pul2)
    dropped: set = set()
    for conflict in conflicts:
        winner = resolution(conflict)
        if winner is None:
            continue
        loser = conflict.first if winner is conflict.second else conflict.second
        dropped.add(id(loser))
    integrated = [op for op in list(pul1) + list(pul2) if id(op) not in dropped]
    return integrated, conflicts
