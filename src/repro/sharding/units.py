"""Per-shard work units of one batch maintenance round.

A unit is the pure slice of one view's propagation work for one side of
the batch Δ: it reads engine state (document, canonical relations,
lattice, candidate buckets) that every worker shares -- by copy-on-write
fork locally, by construction in a serial run -- and returns a
**fragment**: a picklable value (plain tuples, ints, strings,
:class:`~repro.xmldom.dewey.DeweyID`) that crosses the process boundary
and is merged deterministically by :mod:`repro.sharding.merge`.

Three unit kinds cover the round:

* :class:`RefreshUnit` -- the PIMT/PDMT extent scan; fragment: the
  ``(old row, new row)`` rewrite pairs.
* :class:`DeleteSideUnit` -- Δ− extraction, term development and
  ET-DEL evaluation against reconstructed pre-batch relations;
  fragment: the doomed-embedding map ``{binding ID key: projected
  row}``.
* :class:`InsertSideUnit` -- Δ+ extraction, term development, ET-INS
  evaluation over survivor relations, plus the snowcap-addition rows
  (shipped as ID tuples and re-resolved to live nodes by the owner);
  fragment: ``(additions, snowcap id-rows)``.

Mutation of views, stores and lattices never happens here -- fragments
are applied by the engine on the owning process, which is what keeps
sharded extents byte-identical to the serial path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.maintenance.delete import (
    collect_delete_embeddings,
    surviving_delete_terms,
)
from repro.maintenance.delta import BatchCandidates, delta_from_candidates
from repro.maintenance.insert import (
    collect_attribute_refreshes,
    collect_insert_additions,
    snowcap_additions,
    surviving_insert_terms,
)


class UnitStats:
    """Sub-timings and counters one unit reports back (picklable)."""

    __slots__ = (
        "live",
        "delta_sizes",
        "terms_developed",
        "terms_surviving",
        "delta_seconds",
        "develop_seconds",
        "eval_seconds",
        "snowcap_seconds",
    )

    def __init__(self) -> None:
        self.live = False
        self.delta_sizes: Dict[str, int] = {}
        self.terms_developed = 0
        self.terms_surviving = 0
        self.delta_seconds = 0.0
        self.develop_seconds = 0.0
        self.eval_seconds = 0.0
        self.snowcap_seconds = 0.0


class ShardWorkUnit:
    """Base: a schedulable, independently executable slice of work."""

    kind = "unit"

    def __init__(self, view_name: str, shard: int, labels: Sequence[str], estimate: int):
        self.view_name = view_name
        self.shard = shard
        self.labels = list(labels)
        #: rough work size used for LPT ordering (candidate rows, extent rows).
        self.estimate = estimate

    def execute(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%s, shard=%d, est=%d)" % (
            type(self).__name__,
            self.view_name,
            self.shard,
            self.estimate,
        )


class RefreshUnit(ShardWorkUnit):
    """Collect the merged PIMT/PDMT val/cont rewrite pairs of one view."""

    kind = "refresh"

    def __init__(
        self,
        view_name: str,
        shard: int,
        *,
        view,
        document,
        insert_target_ids,
        delete_target_ids,
    ):
        super().__init__(view_name, shard, (), estimate=len(view))
        self.view = view
        self.document = document
        self.insert_target_ids = insert_target_ids
        self.delete_target_ids = delete_target_ids

    def execute(self) -> List[Tuple[tuple, tuple]]:
        return collect_attribute_refreshes(
            self.view, self.document, self.insert_target_ids, self.delete_target_ids
        )


class DeleteSideUnit(ShardWorkUnit):
    """Δ− extraction + ET-DEL for one view (pre-batch relations)."""

    kind = "minus"

    def __init__(
        self,
        view_name: str,
        shard: int,
        labels: Sequence[str],
        estimate: int,
        *,
        engine,
        registered,
        removed_candidates: BatchCandidates,
        inserted_ids: set,
        inserted_labels: set,
        source_cache: Optional[dict],
    ):
        super().__init__(view_name, shard, labels, estimate)
        self.engine = engine
        self.registered = registered
        self.removed_candidates = removed_candidates
        self.inserted_ids = inserted_ids
        self.inserted_labels = inserted_labels
        self.source_cache = source_cache

    def execute(self) -> Tuple[Dict[tuple, tuple], UnitStats]:
        stats = UnitStats()
        pattern = self.registered.pattern
        started = time.perf_counter()
        delta_minus = delta_from_candidates(pattern, self.removed_candidates, "-")
        stats.delta_seconds = time.perf_counter() - started
        stats.delta_sizes = {
            name: len(delta_minus.nodes(name)) for name in pattern.node_names()
        }
        if not delta_minus.nonempty_names():
            return {}, stats
        stats.live = True
        started = time.perf_counter()
        terms, developed = surviving_delete_terms(
            pattern,
            delta_minus,
            self.engine.prune_even_terms,
            self.engine.use_data_pruning,
            self.engine.use_id_pruning,
        )
        stats.develop_seconds = time.perf_counter() - started
        stats.terms_developed = developed
        stats.terms_surviving = len(terms)
        old_sources = self.engine._sources_pre_batch(
            pattern,
            self.inserted_ids,
            self.inserted_labels,
            self.removed_candidates,
            self.source_cache,
        )
        embeddings, stats.eval_seconds = collect_delete_embeddings(
            pattern, terms, old_sources, delta_minus, self.registered.lattice
        )
        return embeddings, stats


class InsertSideUnit(ShardWorkUnit):
    """Δ+ extraction + ET-INS + snowcap additions for one view."""

    kind = "plus"

    def __init__(
        self,
        view_name: str,
        shard: int,
        labels: Sequence[str],
        estimate: int,
        *,
        engine,
        registered,
        inserted_candidates: BatchCandidates,
        inserted_ids: set,
        inserted_labels: set,
        insert_target_ids,
        source_cache: Optional[dict],
        ship_ids: bool = True,
    ):
        super().__init__(view_name, shard, labels, estimate)
        self.engine = engine
        self.registered = registered
        self.inserted_candidates = inserted_candidates
        self.inserted_ids = inserted_ids
        self.inserted_labels = inserted_labels
        self.insert_target_ids = insert_target_ids
        self.source_cache = source_cache
        #: True when the fragment crosses a process boundary: binding
        #: rows are then shipped as ID tuples (nodes would drag the
        #: whole tree through pickle) and re-resolved by the owner.
        #: In-process execution hands the relations over directly.
        self.ship_ids = ship_ids

    def execute(self) -> Tuple[Dict[tuple, int], Optional[dict], UnitStats]:
        stats = UnitStats()
        pattern = self.registered.pattern
        started = time.perf_counter()
        delta_plus = delta_from_candidates(pattern, self.inserted_candidates, "+")
        stats.delta_seconds = time.perf_counter() - started
        stats.delta_sizes = {
            name: len(delta_plus.nodes(name)) for name in pattern.node_names()
        }
        if not delta_plus.nonempty_names():
            return {}, None, stats
        stats.live = True
        started = time.perf_counter()
        terms, developed = surviving_insert_terms(
            pattern,
            delta_plus,
            self.insert_target_ids,
            self.engine.use_data_pruning,
            self.engine.use_id_pruning,
        )
        stats.develop_seconds = time.perf_counter() - started
        stats.terms_developed = developed
        stats.terms_surviving = len(terms)
        r_sources = self.engine._sources_excluding(
            pattern,
            self.inserted_ids,
            cache=self.source_cache,
            excluded_labels=self.inserted_labels,
        )
        additions, stats.eval_seconds = collect_insert_additions(
            pattern, terms, r_sources, delta_plus, self.registered.lattice
        )
        snowcap_rows: Optional[dict] = None
        lattice = self.registered.lattice
        if lattice.materialized_sets():
            started = time.perf_counter()
            relations = snowcap_additions(
                pattern,
                lattice,
                r_sources,
                delta_plus,
                self.insert_target_ids,
                self.engine.use_data_pruning,
                self.engine.use_id_pruning,
            )
            if self.ship_ids:
                snowcap_rows = {
                    subset: (
                        relation.schema,
                        [tuple(cell.id for cell in row) for row in relation.rows],
                    )
                    for subset, relation in relations.items()
                }
            else:
                snowcap_rows = relations
            stats.snowcap_seconds = time.perf_counter() - started
        return additions, snowcap_rows, stats
