"""Per-shard work units of one batch maintenance round.

A unit is the pure slice of one view's propagation work for one side of
the batch Δ: it reads engine state (document, canonical relations,
lattice, candidate buckets) that every worker shares -- by copy-on-write
fork locally, by construction in a serial run -- and returns a
**fragment**: a picklable value (plain tuples, ints, strings,
:class:`~repro.xmldom.dewey.DeweyID`) that crosses the process boundary
and is merged deterministically by :mod:`repro.sharding.merge`.

Three unit kinds cover the round:

* :class:`RefreshUnit` -- the PIMT/PDMT extent scan; fragment: the
  ``(old row, new row)`` rewrite pairs.
* :class:`DeleteSideUnit` -- Δ− extraction, term development and
  ET-DEL evaluation against reconstructed pre-batch relations;
  fragment: the doomed-embedding map ``{binding ID key: projected
  row}``.
* :class:`InsertSideUnit` -- Δ+ extraction, term development, ET-INS
  evaluation over survivor relations, plus the snowcap-addition rows
  (shipped as ID tuples and re-resolved to live nodes by the owner);
  fragment: ``(additions, snowcap id-rows)``.

Two more kinds serve the σ-flip repair and fallback paths:

* :class:`SigmaRepairUnit` -- the flip repair Δ± of one view: evict
  embeddings rooted at flipped-false candidates (pre-batch-membership
  survivor relations) and admit flipped-true ones (current-membership
  relations); fragment: ``(evictions, admissions)``.
* :class:`ExtentRecomputeUnit` / :class:`LatticeRecomputeUnit` -- when
  a true fallback fires, full materialization is itself pure work:
  these evaluate one view's extent rows resp. snowcap relations and
  ship them back (extent rows directly, lattice rows as ID tuples), so
  even recomputation fans out instead of serializing on the owner.

One kind serves the session's view-migration protocol:

* :class:`ViewSnapshotUnit` -- reads one registered view's *stored*
  extent pairs and materialized snowcap rows (no re-evaluation) into
  the same picklable shape the recompute units produce, so a migrating
  view can be shipped from its source replica and installed on the
  target via :func:`repro.sharding.merge.install_view_snapshot` when
  that is cheaper than rematerializing there.

Mutation of views, stores and lattices never happens here -- fragments
are applied by the engine on the owning process, which is what keeps
sharded extents byte-identical to the serial path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.maintenance.delete import (
    collect_delete_embeddings,
    removals_from_embeddings,
    surviving_delete_terms,
)
from repro.maintenance.delta import BatchCandidates, delta_from_candidates
from repro.maintenance.insert import (
    collect_attribute_refreshes,
    collect_insert_additions,
    snowcap_additions,
    surviving_insert_terms,
)
from repro.maintenance.repair import collect_flip_embeddings
from repro.pattern.evaluate import evaluate_bindings, evaluate_view
from repro.views.view import row_sort_key


class UnitStats:
    """Sub-timings and counters one unit reports back (picklable)."""

    __slots__ = (
        "live",
        "delta_sizes",
        "terms_developed",
        "terms_surviving",
        "delta_seconds",
        "develop_seconds",
        "eval_seconds",
        "snowcap_seconds",
    )

    def __init__(self) -> None:
        self.live = False
        self.delta_sizes: Dict[str, int] = {}
        self.terms_developed = 0
        self.terms_surviving = 0
        self.delta_seconds = 0.0
        self.develop_seconds = 0.0
        self.eval_seconds = 0.0
        self.snowcap_seconds = 0.0


class ShardWorkUnit:
    """Base: a schedulable, independently executable slice of work."""

    kind = "unit"

    def __init__(self, view_name: str, shard: int, labels: Sequence[str], estimate: int):
        self.view_name = view_name
        self.shard = shard
        self.labels = list(labels)
        #: rough work size used for LPT ordering (candidate rows, extent rows).
        self.estimate = estimate

    def execute(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%s, shard=%d, est=%d)" % (
            type(self).__name__,
            self.view_name,
            self.shard,
            self.estimate,
        )


class RefreshUnit(ShardWorkUnit):
    """Collect the merged PIMT/PDMT val/cont rewrite pairs of one view."""

    kind = "refresh"

    def __init__(
        self,
        view_name: str,
        shard: int,
        *,
        view,
        document,
        insert_target_ids,
        delete_target_ids,
    ):
        super().__init__(view_name, shard, (), estimate=len(view))
        self.view = view
        self.document = document
        self.insert_target_ids = insert_target_ids
        self.delete_target_ids = delete_target_ids

    def execute(self) -> List[Tuple[tuple, tuple]]:
        return collect_attribute_refreshes(
            self.view, self.document, self.insert_target_ids, self.delete_target_ids
        )


class DeleteSideUnit(ShardWorkUnit):
    """Δ− extraction + ET-DEL for one view (pre-batch relations)."""

    kind = "minus"

    def __init__(
        self,
        view_name: str,
        shard: int,
        labels: Sequence[str],
        estimate: int,
        *,
        engine,
        registered,
        removed_candidates: BatchCandidates,
        inserted_ids: set,
        inserted_labels: set,
        source_cache: Optional[dict],
        flips: Optional[set] = None,
    ):
        super().__init__(view_name, shard, labels, estimate)
        self.engine = engine
        self.registered = registered
        self.removed_candidates = removed_candidates
        self.inserted_ids = inserted_ids
        self.inserted_labels = inserted_labels
        self.source_cache = source_cache
        #: ``(node ID, constant)`` keys of σ flips in this batch; the
        #: pre-batch relation reconstruction XOR-corrects against them.
        self.flips = flips

    def execute(self) -> Tuple[Dict[tuple, tuple], UnitStats]:
        stats = UnitStats()
        pattern = self.registered.pattern
        started = time.perf_counter()
        delta_minus = delta_from_candidates(pattern, self.removed_candidates, "-")
        stats.delta_seconds = time.perf_counter() - started
        stats.delta_sizes = {
            name: len(delta_minus.nodes(name)) for name in pattern.node_names()
        }
        if not delta_minus.nonempty_names():
            return {}, stats
        stats.live = True
        started = time.perf_counter()
        terms, developed = surviving_delete_terms(
            pattern,
            delta_minus,
            self.engine.prune_even_terms,
            self.engine.use_data_pruning,
            self.engine.use_id_pruning,
        )
        stats.develop_seconds = time.perf_counter() - started
        stats.terms_developed = developed
        stats.terms_surviving = len(terms)
        old_sources = self.engine._sources_pre_batch(
            pattern,
            self.inserted_ids,
            self.inserted_labels,
            self.removed_candidates,
            self.source_cache,
            flips=self.flips,
        )
        embeddings, stats.eval_seconds = collect_delete_embeddings(
            pattern, terms, old_sources, delta_minus, self.registered.lattice
        )
        return embeddings, stats


class InsertSideUnit(ShardWorkUnit):
    """Δ+ extraction + ET-INS + snowcap additions for one view."""

    kind = "plus"

    def __init__(
        self,
        view_name: str,
        shard: int,
        labels: Sequence[str],
        estimate: int,
        *,
        engine,
        registered,
        inserted_candidates: BatchCandidates,
        inserted_ids: set,
        inserted_labels: set,
        insert_target_ids,
        source_cache: Optional[dict],
        ship_ids: bool = True,
    ):
        super().__init__(view_name, shard, labels, estimate)
        self.engine = engine
        self.registered = registered
        self.inserted_candidates = inserted_candidates
        self.inserted_ids = inserted_ids
        self.inserted_labels = inserted_labels
        self.insert_target_ids = insert_target_ids
        self.source_cache = source_cache
        #: True when the fragment crosses a process boundary: binding
        #: rows are then shipped as ID tuples (nodes would drag the
        #: whole tree through pickle) and re-resolved by the owner.
        #: In-process execution hands the relations over directly.
        self.ship_ids = ship_ids

    def execute(self) -> Tuple[Dict[tuple, int], Optional[dict], UnitStats]:
        stats = UnitStats()
        pattern = self.registered.pattern
        started = time.perf_counter()
        delta_plus = delta_from_candidates(pattern, self.inserted_candidates, "+")
        stats.delta_seconds = time.perf_counter() - started
        stats.delta_sizes = {
            name: len(delta_plus.nodes(name)) for name in pattern.node_names()
        }
        if not delta_plus.nonempty_names():
            return {}, None, stats
        stats.live = True
        started = time.perf_counter()
        terms, developed = surviving_insert_terms(
            pattern,
            delta_plus,
            self.insert_target_ids,
            self.engine.use_data_pruning,
            self.engine.use_id_pruning,
        )
        stats.develop_seconds = time.perf_counter() - started
        stats.terms_developed = developed
        stats.terms_surviving = len(terms)
        r_sources = self.engine._sources_excluding(
            pattern,
            self.inserted_ids,
            cache=self.source_cache,
            excluded_labels=self.inserted_labels,
        )
        additions, stats.eval_seconds = collect_insert_additions(
            pattern, terms, r_sources, delta_plus, self.registered.lattice
        )
        snowcap_rows: Optional[dict] = None
        lattice = self.registered.lattice
        if lattice.materialized_sets():
            started = time.perf_counter()
            relations = snowcap_additions(
                pattern,
                lattice,
                r_sources,
                delta_plus,
                self.insert_target_ids,
                self.engine.use_data_pruning,
                self.engine.use_id_pruning,
            )
            if self.ship_ids:
                snowcap_rows = {
                    subset: (
                        relation.schema,
                        [tuple(cell.id for cell in row) for row in relation.rows],
                    )
                    for subset, relation in relations.items()
                }
            else:
                snowcap_rows = relations
            stats.snowcap_seconds = time.perf_counter() - started
        return additions, snowcap_rows, stats


class SigmaRepairUnit(ShardWorkUnit):
    """σ-flip repair Δ± for one view: evict + admit embeddings.

    The evict side reads *pre-batch membership* survivor relations
    (flipped-true candidates removed, flipped-false restored) so the
    repair terms reproduce exactly the stored embeddings of the
    flipped-false candidates; the admit side reads current-membership
    survivor relations and projects with live vals, so admitted rows
    match a fresh evaluation byte for byte.  Fragment:
    ``(evictions, admissions)`` -- an embedding map keyed by binding
    IDs (merged with the batch Δ− fragments) and a counted row dict
    (merged with the batch Δ+ fragments).
    """

    kind = "repair"

    def __init__(
        self,
        view_name: str,
        shard: int,
        labels: Sequence[str],
        estimate: int,
        *,
        engine,
        registered,
        minus_sets: Dict[str, list],
        plus_sets: Dict[str, list],
        inserted_ids: set,
        inserted_labels: set,
        source_cache: Optional[dict],
    ):
        super().__init__(view_name, shard, labels, estimate)
        self.engine = engine
        self.registered = registered
        self.minus_sets = minus_sets
        self.plus_sets = plus_sets
        self.inserted_ids = inserted_ids
        self.inserted_labels = inserted_labels
        self.source_cache = source_cache

    def execute(self) -> Tuple[Dict[tuple, tuple], Dict[tuple, int], UnitStats]:
        stats = UnitStats()
        stats.live = True
        pattern = self.registered.pattern
        stats.delta_sizes = {
            name: len(nodes)
            for sets in (self.minus_sets, self.plus_sets)
            for name, nodes in sets.items()
        }
        evictions: Dict[tuple, tuple] = {}
        if self.minus_sets:
            pre_sources = self.engine._sources_flip_pre(
                pattern,
                self.inserted_ids,
                self.inserted_labels,
                self.source_cache,
                self.minus_sets,
                self.plus_sets,
            )
            evictions, seconds = collect_flip_embeddings(
                pattern, self.minus_sets, pre_sources, "-"
            )
            stats.eval_seconds += seconds
        admissions: Dict[tuple, int] = {}
        if self.plus_sets:
            r_sources = self.engine._sources_excluding(
                pattern,
                self.inserted_ids,
                cache=self.source_cache,
                excluded_labels=self.inserted_labels,
            )
            embeddings, seconds = collect_flip_embeddings(
                pattern, self.plus_sets, r_sources, "+"
            )
            stats.eval_seconds += seconds
            admissions = removals_from_embeddings(embeddings)
        return evictions, admissions, stats


class ExtentRecomputeUnit(ShardWorkUnit):
    """Full extent materialization of one view, run as shard work.

    A true fallback (e.g. an unrepairable dirty subtree) still has to
    re-evaluate the view, but the evaluation itself is pure: this unit
    ships the sorted ``(row, count)`` pairs back to the owner, which
    installs them via :meth:`MaterializedView.from_pairs` -- so several
    falling-back views rematerialize in parallel instead of
    serializing on the owning process.
    """

    kind = "recompute_extent"

    def __init__(self, view_name: str, shard: int, *, pattern, document, estimate: int):
        super().__init__(view_name, shard, (), estimate)
        self.pattern = pattern
        self.document = document

    def execute(self) -> Tuple[List[Tuple[tuple, int]], UnitStats]:
        stats = UnitStats()
        stats.live = True
        started = time.perf_counter()
        content = evaluate_view(self.pattern, self.document)
        stats.eval_seconds = time.perf_counter() - started
        pairs = sorted(content, key=lambda item: row_sort_key(item[0]))
        return pairs, stats


class LatticeRecomputeUnit(ShardWorkUnit):
    """Snowcap rematerialization of one view, run as shard work.

    Evaluates every selected snowcap's binding relation and ships the
    rows as ID tuples (the resolve step on the owner swaps live nodes
    back in); paired with :class:`ExtentRecomputeUnit` to cover a full
    fallback materialization.
    """

    kind = "recompute_lattice"

    def __init__(
        self,
        view_name: str,
        shard: int,
        *,
        pattern,
        document,
        selected: Sequence[frozenset],
        estimate: int,
    ):
        super().__init__(view_name, shard, (), estimate)
        self.pattern = pattern
        self.document = document
        self.selected = list(selected)

    def execute(self) -> Tuple[Dict[frozenset, tuple], UnitStats]:
        stats = UnitStats()
        stats.live = True
        started = time.perf_counter()
        fragment: Dict[frozenset, tuple] = {}
        for subset in self.selected:
            sub = self.pattern.subpattern(subset)
            relation = evaluate_bindings(sub, self.document)
            fragment[subset] = (
                relation.schema,
                [tuple(cell.id for cell in row) for row in relation.rows],
            )
        stats.eval_seconds = time.perf_counter() - started
        return fragment, stats


class ViewSnapshotUnit(ShardWorkUnit):
    """Snapshot one registered view's stored state for migration.

    Unlike the recompute units, nothing is re-evaluated: the extent
    pairs come straight out of the store and the snowcap rows out of
    the materialized relations, both already current on the source
    replica.  The payload shape matches the recompute units' fragments
    exactly -- sorted ``(row, count)`` pairs plus ``{subset: (schema,
    ID rows)}`` -- so :func:`repro.sharding.merge.install_view_snapshot`
    installs either indistinguishably.
    """

    kind = "snapshot"

    def __init__(self, view_name: str, shard: int, *, registered, estimate: int = 0):
        super().__init__(view_name, shard, (), estimate)
        self.registered = registered

    def size(self) -> int:
        """Extent tuples plus materialized lattice rows -- the shipped
        row count the migration ship-vs-recompute criterion compares
        (identical on every replica, so the decision is too)."""
        return len(self.registered.view) + self.registered.lattice.stored_tuples()

    def execute(self) -> Tuple[Dict[str, object], UnitStats]:
        stats = UnitStats()
        stats.live = True
        started = time.perf_counter()
        lattice = self.registered.lattice
        fragment = {}
        for subset in lattice.materialized_sets():
            relation = lattice.relation_for(subset)
            fragment[subset] = (
                relation.schema,
                [tuple(cell.id for cell in row) for row in relation.rows],
            )
        payload = {
            "pairs": self.registered.view.content(),
            "lattice": fragment,
        }
        stats.eval_seconds = time.perf_counter() - started
        return payload, stats
