"""Label-hash shard planning for batch maintenance rounds.

The batch pipeline already buckets a batch's Δ candidates by label
(:class:`repro.maintenance.delta.BatchCandidates`); the planner turns
that bucketing into a parallel execution plan:

* every label is assigned a **shard** by a stable hash
  (:func:`shard_of_label` -- ``crc32``, not Python's randomized
  ``hash``, so the mapping is identical across worker processes and
  runs);
* the propagation work of the affected views -- Δ extraction, term
  development and evaluation, snowcap upkeep, stored-attribute
  refreshes -- becomes independent :mod:`work units
  <repro.sharding.units>`.  The unit of parallelism is the (view,
  side) pair: a unit reads its view's full candidate buckets, and the
  shard owning its dominant Δ label anchors it for deterministic
  ordering, with LPT by estimated size balancing the pool's makespan.
  The ``shards`` count therefore shapes anchoring/ordering, not a
  finer work split;
* :meth:`ShardPlanner.partition_candidates` exposes the underlying
  bucket partition itself (per-shard candidate fragments) for
  diagnostics and tests.

Units are pure with respect to the engine state they read, so any
assignment of units to workers yields the same fragments; the shard
anchor fixes a *deterministic* plan (stable unit order, stable
ownership) on top of that freedom.  View-granular sharding across
*resident* workers -- where each worker owns a view subset and its
replica state -- lives in :class:`repro.sharding.session.ShardSession`;
its view->worker partition (and the rebalance policy's re-planning of
it) uses the module-level :func:`lpt_assignment`/:func:`imbalance_ratio`
helpers here, so there is exactly one LPT implementation.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Union

from repro.maintenance.delta import BatchCandidates
from repro.pattern.tree_pattern import Pattern


def shard_of_label(label: str, shards: int) -> int:
    """Stable shard assignment of one label (crc32 mod shard count)."""
    if shards <= 1:
        return 0
    return zlib.crc32(label.encode("utf-8")) % shards


def lpt_assignment(weights: Dict[str, float], workers: int) -> List[List[str]]:
    """Deterministic LPT partition of weighted names across workers.

    Names are placed heaviest-first (ties broken by name) into the
    currently lightest bucket (ties broken by bucket index), the classic
    longest-processing-time approximation whose makespan stays within
    4/3 of the optimum.  Both the session's fork-time view assignment
    and the rebalance policy's migration planning call this one
    implementation, so a frozen plan and a re-planned one can never
    disagree about what "balanced" means.
    """
    if workers < 1:
        raise ValueError("need at least one worker, got %d" % workers)
    buckets: List[List[str]] = [[] for _ in range(workers)]
    loads = [0.0] * workers
    for name in sorted(weights, key=lambda key: (-weights[key], key)):
        slot = loads.index(min(loads))
        buckets[slot].append(name)
        loads[slot] += weights[name]
    return buckets


def imbalance_ratio(loads: Sequence[float]) -> float:
    """Max over mean bucket load; 1.0 for an empty or all-zero plan.

    The makespan quality metric shared by the session's
    ``repro_session_lpt_imbalance_ratio`` gauge and the rebalance
    policy's trigger/target thresholds: 1.0 is a perfectly level plan,
    N means one worker carries everything.
    """
    loads = list(loads)
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    return max(loads) / mean if mean > 0.0 else 1.0


class ShardPlanner:
    """Hashes labels into ``shards`` groups and plans batch work units."""

    def __init__(self, shards: int = 4):
        if shards < 1:
            raise ValueError("need at least one shard, got %d" % shards)
        self.shards = shards

    @classmethod
    def coerce(
        cls, value: Union[None, int, "ShardPlanner"], workers: int = 0
    ) -> "ShardPlanner":
        """Accept a planner, a shard count, or None (defaults scale
        with the worker count so each worker owns at least one shard)."""
        if isinstance(value, ShardPlanner):
            return value
        if isinstance(value, int):
            return cls(value)
        if value is None:
            return cls(max(4, workers))
        raise TypeError("shard_plan must be a ShardPlanner or int, got %r" % (value,))

    # -- label / candidate partitioning ---------------------------------

    def shard_of(self, label: str) -> int:
        return shard_of_label(label, self.shards)

    def partition_labels(self, labels: Sequence[str]) -> Dict[int, List[str]]:
        """shard -> sorted labels it owns (only shards with labels)."""
        out: Dict[int, List[str]] = {}
        for label in sorted(set(labels)):
            out.setdefault(self.shard_of(label), []).append(label)
        return out

    def partition_candidates(
        self, candidates: BatchCandidates
    ) -> Dict[int, BatchCandidates]:
        """Split a batch's Δ candidate buckets into per-shard fragments.

        Fragments partition the candidate set exactly: every node lands
        in the shard owning its label, buckets keep document order.
        """
        out: Dict[int, BatchCandidates] = {}
        grouped: Dict[int, List] = {}
        for label, nodes in candidates.by_label.items():
            grouped.setdefault(self.shard_of(label), []).extend(nodes)
        for shard, nodes in grouped.items():
            out[shard] = BatchCandidates(nodes)
        return out

    # -- view-side planning ---------------------------------------------

    def touched_labels(
        self, pattern: Pattern, candidates: BatchCandidates
    ) -> List[str]:
        """Candidate labels this pattern's Δ tables can see (label-level
        liveness check: an empty result proves every Δ table empty, so
        the whole side can be skipped without σ-filtering anything)."""
        if not candidates.by_label:
            return []
        touched: List[str] = []
        wildcard = any(node.label == "*" for node in pattern.nodes())
        pattern_labels = {node.label for node in pattern.nodes()}
        for label in sorted(candidates.by_label):
            if label in pattern_labels or wildcard:
                touched.append(label)
        return touched

    def anchor_shard(self, labels: Sequence[str]) -> int:
        """The shard owning a unit, from the labels its Δ side reads.

        The dominant (first, in sorted order) label decides; a unit
        with no Δ labels (e.g. a refresh scan) anchors to shard 0.
        """
        for label in sorted(labels):
            return self.shard_of(label)
        return 0

    def order_units(self, units: Sequence) -> List:
        """Deterministic LPT schedule: heaviest unit first, ties broken
        by (shard, kind, view) so the plan is stable across runs."""
        return sorted(
            units,
            key=lambda u: (-u.estimate, u.shard, u.kind, u.view_name),
        )

    def describe(self) -> Dict[str, int]:
        return {"shards": self.shards}

    def __repr__(self) -> str:
        return "ShardPlanner(%d shards)" % self.shards
