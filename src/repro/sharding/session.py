"""Resident shard workers: fork once, maintain view replicas per batch.

:class:`ShardSession` is the streaming counterpart of the per-batch
fork pool in :mod:`repro.sharding.executor`.  A pool forked per round
pays the copy-on-write warm-up on every batch; a session forks its
workers **once** and keeps them resident, so the warm-up amortizes over
a whole statement stream -- the shape
:class:`~repro.maintenance.queue.ApplyQueue` produces.

Design (replicated state machines):

* at session start the registered views are partitioned across
  ``workers`` by an LPT schedule over their extent sizes; each worker
  is forked with a full copy-on-write replica of the engine and
  restricts itself to its owned views;
* per batch, the owner coalesces the statements once and broadcasts
  the resulting list (a few KB) to every worker.  Each worker applies
  the statements to its replica document -- resolution and Dewey
  assignment are deterministic, so every replica evolves
  byte-identically to the owner -- and runs the ordinary serial
  ``apply_batch`` over its views, which keeps its extents *and*
  lattices current for the next batch;
* workers ship back only the extent-delta inputs of the store pass
  (refresh pairs, Δ+/Δ− tuple counts -- recorded by the engine's
  ``record_deltas`` hook) plus slim per-view stats; the owner, which
  applied the same statements to its authoritative document
  concurrently, replays those deltas into its authoritative extents.
  The deltas are exactly what a serial engine would have computed, so
  owner extents stay byte-identical to ``workers=0`` propagation.
* σ-flip repair runs on the workers (their replicas hold the lattices
  and survivor relations); the repair Δ± folds into the ordinary
  shipped delta rows, so the owner replays flips without ever seeing
  the repair machinery.  A view that still trips a true recompute
  fallback on its worker ships its full recomputed extent instead
  (rare; the owner holds no lattices, so it cannot recompute as
  cheaply itself).

Failure semantics mirror the engine's poison-batch contract: a
statement that fails poisons *its* batch only.  Owner and replicas run
the same deterministic application, so they fail the same statement
identically, each side restores its own views by recomputation, they
stay in lockstep, and the session keeps serving subsequent batches.
Only unrecoverable faults -- a dead worker, or a worker disagreeing
with the owner about a batch's outcome -- restore the owner's views
and close the session for good.

Adaptive rebalancing (opt-in via ``rebalance=``): the per-view
``maintenance_seconds`` each worker already ships feed a
:class:`~repro.sharding.rebalance.RebalancePolicy`; when the observed
imbalance ratio stays over its trigger long enough, the policy plans
ownership moves and the session executes them at the next batch
boundary *without re-forking*.  Every worker holds a byte-identical
document replica (idle views stay registered, just unmaintained), so
the target can rematerialize an adopted view against its own replica
-- or install the source's shipped extent pairs + snowcap rows when
the view is small -- through the same unit/merge machinery the
fallback path uses; the source drops the view, and the owner's
assignment map flips only after both sides acked.  Extents stay
byte-identical to serial propagation throughout, and a failure
mid-migration degrades exactly like a dead worker.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sharding.merge import merge_span_fragments
from repro.updates.language import UpdateBatch, UpdateStatement
from repro.updates.pul import BatchApplication


def _canonical_row(row: tuple, canon: Dict[str, str]) -> tuple:
    """Rebuild a view tuple with string cells deduplicated via ``canon``."""
    return tuple(
        canon.setdefault(cell, cell) if type(cell) is str else cell
        for cell in row
    )


def _serve_migration(engine, idle_views: Dict, message: tuple):
    """Handle one ``migrate_out``/``migrate_in`` message on a worker.

    Releasing a view moves it from the maintained set into the idle
    stash (shipping its stored state when it fits the ship budget);
    adopting pulls it back, installing the shipped snapshot or
    rematerializing extent and snowcaps against this replica's own
    document -- which is byte-identical to the source's, so either
    route yields the same bytes.
    """
    from repro.sharding.merge import install_view_snapshot
    from repro.sharding.units import (
        ExtentRecomputeUnit,
        LatticeRecomputeUnit,
        ViewSnapshotUnit,
    )

    if message[0] == "migrate_out":
        _tag, names, ship_rows = message
        shipped: Dict[str, Optional[Dict]] = {}
        for name in names:
            registered = engine.views.pop(name)
            idle_views[name] = registered
            unit = ViewSnapshotUnit(name, 0, registered=registered)
            shipped[name] = unit.execute()[0] if unit.size() <= ship_rows else None
        return shipped
    if message[0] == "migrate_in":
        _tag, payloads = message
        for name in sorted(payloads):
            registered = idle_views.pop(name)
            payload = payloads[name]
            if payload is None:
                pairs, _stats = ExtentRecomputeUnit(
                    name,
                    0,
                    pattern=registered.pattern,
                    document=engine.document,
                    estimate=0,
                ).execute()
                fragment, _stats = LatticeRecomputeUnit(
                    name,
                    0,
                    pattern=registered.pattern,
                    document=engine.document,
                    selected=registered.lattice.selected,
                    estimate=0,
                ).execute()
                payload = {"pairs": pairs, "lattice": fragment}
            install_view_snapshot(registered, payload, engine.document)
            engine.views[name] = registered
        return None
    raise RuntimeError("unknown session control message %r" % (message[0],))


def _session_worker_main(conn, owned_names: List[str]) -> None:
    """Worker loop: inherits the engine by fork, serves its views."""
    from repro.obs import NULL_OBS, Observability, spans_to_fragments

    engine = _FORK_STATE["engine"]
    # Non-owned views stay resident in an idle stash instead of being
    # dropped: a later migration may hand one over, and adoption reuses
    # the registration (pattern, lattice selection) this replica
    # already inherited.  Idle views are not maintained -- their
    # extents and lattices go stale -- so adoption reinstalls both.
    owned = set(owned_names)
    idle_views = {
        name: registered
        for name, registered in engine.views.items()
        if name not in owned
    }
    engine.views = {name: engine.views[name] for name in owned_names}
    engine.record_deltas = True
    engine.workers = 0
    # The inherited obs is the owner's copy-on-write twin: spans drained
    # here would never reach the owner.  Trace into a fresh worker-local
    # tracer instead and ship each batch's tree home as picklable
    # fragments (the owner stitches them under its replica_apply span).
    ship_spans = engine.obs.enabled
    engine.obs = Observability() if ship_spans else NULL_OBS
    conn.send(("ready", None))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        if isinstance(message, tuple):
            # Control message (migration); batches arrive as raw lists.
            try:
                reply = _serve_migration(engine, idle_views, message)
            except BaseException as exc:
                try:
                    conn.send(("error", exc))
                except Exception:
                    conn.send(("error", RuntimeError(repr(exc))))
                continue
            conn.send(("ok", reply))
            continue
        statements = message
        started = time.perf_counter()
        try:
            report = engine.apply_batch(statements)
            # One canonical object per distinct string across the whole
            # payload: XMark-style workloads repeat identical val/cont
            # text across thousands of delta rows, and pickle stores a
            # memo reference per repeated *object* -- deduplication
            # shrinks the shipped bytes by up to an order of magnitude.
            canon: Dict[str, str] = {}
            for name in engine.views:
                deltas = (report.view_deltas or {}).get(name, {})
                for key in ("additions", "removals"):
                    rows = deltas.get(key)
                    if rows:
                        deltas[key] = {
                            _canonical_row(row, canon): count
                            for row, count in rows.items()
                        }
                pairs = deltas.get("refresh")
                if pairs:
                    deltas["refresh"] = [
                        (_canonical_row(old, canon), _canonical_row(new, canon))
                        for old, new in pairs
                    ]
            payload: Dict[str, Dict] = {}
            for name in engine.views:
                deltas = (report.view_deltas or {}).get(name, {})
                view_report = report.view_reports.get(name)
                entry: Dict = {
                    "refresh": deltas.get("refresh", ()),
                    "additions": deltas.get("additions", {}),
                    "removals": deltas.get("removals", {}),
                    "fallback": report.fallbacks.get(name),
                    "repairs": report.repairs.get(name),
                    "stats": None,
                }
                if view_report is not None:
                    entry["stats"] = {
                        "targets": view_report.targets,
                        "terms_developed": view_report.terms_developed,
                        "terms_surviving": view_report.terms_surviving,
                        "term_eval_seconds": view_report.term_eval_seconds,
                        "maintenance_seconds": view_report.phases.total(),
                    }
                if entry["fallback"] is not None:
                    # The owner holds no lattice for this view; ship the
                    # recomputed extent outright.
                    entry["content"] = engine.views[name].view.content()
                payload[name] = entry
            span_rows = None
            if ship_spans:
                drained = engine.obs.tracer.drain()
                if drained:
                    span_rows = spans_to_fragments(drained)
            conn.send(
                (
                    "ok",
                    {
                        "views": payload,
                        "worker_wall_s": time.perf_counter() - started,
                        "apply_document_s": report.apply_document_seconds,
                        "propagation_s": report.propagation_seconds(),
                        "spans": span_rows,
                    },
                )
            )
        except BaseException as exc:  # ship the poison, stay alive
            if ship_spans:
                engine.obs.tracer.drain()  # don't let poison spans pile up
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(("error", RuntimeError(repr(exc))))
    conn.close()


#: fork hand-off slot read by the child right after Process.start().
_FORK_STATE: Dict = {}


class ShardSession:
    """Resident worker pool maintaining view replicas batch by batch.

    Exposes ``apply_batch`` (and ``apply``) with the engine's
    signature, so it can be handed directly to
    :class:`~repro.maintenance.queue.ApplyQueue`.  Use as a context
    manager or call :meth:`close`.
    """

    def __init__(
        self,
        engine,
        workers: int = 4,
        planner=None,
        weights=None,
        obs=None,
        rebalance=None,
    ):
        import multiprocessing

        from repro.maintenance.engine import BatchEngine, MaintenanceEngine
        from repro.obs import NULL_OBS
        from repro.sharding.planner import ShardPlanner
        from repro.sharding.rebalance import RebalancePolicy

        if isinstance(engine, BatchEngine):
            engine = engine.engine
        if not isinstance(engine, MaintenanceEngine):
            raise TypeError("ShardSession needs a MaintenanceEngine/BatchEngine")
        if workers < 1:
            raise ValueError("a session needs at least one worker")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ShardSession requires the fork start method; use "
                "apply_batch(workers=N) for the per-batch thread fallback"
            )
        if getattr(engine, "_shard_session_active", False):
            raise RuntimeError("engine already has an active ShardSession")
        self.engine = engine
        self.planner = ShardPlanner.coerce(planner, workers)
        self.workers = min(workers, max(1, len(engine.views)))
        #: calibration knob (used by the bench on single-CPU hosts):
        #: apply the owner's document update *before* broadcasting, so
        #: owner and worker phases never overlap and each measured
        #: component is clean of time-slicing.  Results are identical;
        #: only the timeline changes.
        self.sequential_send = False
        #: optional view -> relative maintenance cost used by the LPT
        #: assignment (e.g. measured per-view propagation seconds from
        #: a profiling run); defaults to the extent+lattice size proxy.
        self.weights = dict(weights) if weights else None
        #: adaptive rebalancing policy (None keeps the fork-time
        #: assignment frozen, today's default; True means defaults).
        self.rebalance = RebalancePolicy.coerce(rebalance)
        #: shipped-row budget of the migration protocol: a migrating
        #: view at most this big travels as stored extent pairs +
        #: snowcap rows, a bigger one is rematerialized by the target.
        self.migration_ship_rows = (
            self.rebalance.ship_rows if self.rebalance is not None else 4096
        )
        #: telemetry facade: explicit ``obs`` wins, else the engine's
        #: own (one registry across engine, queue and session), else the
        #: shared null facade.
        self.obs = obs if obs is not None else getattr(engine, "obs", None) or NULL_OBS
        metrics = self.obs.metrics
        self._makespan_gauge = metrics.gauge(
            "repro_session_worker_makespan_seconds",
            "per-batch wall seconds of each resident worker",
            ("worker",),
        )
        self._skew_gauge = metrics.gauge(
            "repro_session_skew_seconds",
            "spread between the fastest and slowest party "
            "(owner document apply and every worker) in one batch",
        )
        self._imbalance_gauge = metrics.gauge(
            "repro_session_lpt_imbalance_ratio",
            "max over mean worker load: planned at assignment time, "
            "observed per batch from recorded view timings",
        )
        self._migrations_counter = metrics.counter(
            "repro_session_migrations_total",
            "view ownership moves executed by the migration protocol",
            ("view",),
        )
        self._closed = False
        self._assignment = self._assign_views()
        context = multiprocessing.get_context("fork")
        self._processes = []
        self._connections = []
        from repro.sharding.executor import _ROUND_LOCK

        with _ROUND_LOCK:  # _FORK_STATE is shared with any sibling session
            for owned in self._assignment:
                parent_conn, child_conn = context.Pipe()
                _FORK_STATE["engine"] = engine
                try:
                    process = context.Process(
                        target=_session_worker_main,
                        args=(child_conn, owned),
                        daemon=True,
                    )
                    process.start()
                finally:
                    _FORK_STATE.clear()
                child_conn.close()
                self._processes.append(process)
                self._connections.append(parent_conn)
        for conn in self._connections:
            kind, _ = conn.recv()
            assert kind == "ready"
        # While the session drives maintenance, the owner's lattices go
        # stale (workers maintain their replicas' lattices instead);
        # block direct serial propagation until close() re-syncs them.
        engine._shard_session_active = True

    def _assign_views(self) -> List[List[str]]:
        """LPT partition of views across workers by maintenance weight.

        The weight proxy is extent size plus materialized lattice rows:
        per-batch cost is dominated by the refresh scan (O(extent)) and
        the term/snowcap work seeded from the lattice relations.  The
        partition itself is the planner module's shared
        :func:`~repro.sharding.planner.lpt_assignment`.
        """
        from repro.sharding.planner import imbalance_ratio, lpt_assignment

        def weight(name, registered) -> float:
            if self.weights is not None and name in self.weights:
                return max(1e-9, float(self.weights[name]))
            return float(
                max(1, len(registered.view) + registered.lattice.stored_tuples())
            )

        weights = {
            name: weight(name, registered)
            for name, registered in self.engine.views.items()
        }
        buckets = lpt_assignment(weights, self.workers)
        loads = [sum(weights[name] for name in owned) for owned in buckets]
        self._imbalance_gauge.set(imbalance_ratio(loads))
        return buckets

    @property
    def assignment(self) -> Dict[str, int]:
        """view name -> worker index (the session's shard map)."""
        return {
            name: index
            for index, owned in enumerate(self._assignment)
            for name in owned
        }

    # -- batch application ----------------------------------------------

    def apply_batch(
        self, batch: Union[UpdateBatch, Sequence[UpdateStatement]], **_ignored
    ):
        """Apply one batch through the resident workers.

        The owner's document is updated locally (concurrently with the
        replicas); view extents are updated from the workers' shipped
        deltas.  Returns a :class:`~repro.maintenance.engine.BatchReport`
        with ``mode`` visible via ``report.workers`` / ``shard_rounds``.
        """
        from repro.maintenance.engine import BatchReport

        if self._closed:
            raise RuntimeError("shard session is closed")
        if isinstance(batch, UpdateBatch):
            submitted = len(batch)
            statements = batch.coalesced().statements
        else:
            statements = list(batch)
            submitted = len(statements)
        report = BatchReport(statements)
        report.statements_submitted = submitted
        report.statements_applied = len(statements)
        report.workers = self.workers
        if not statements:
            return report
        # Durable engines WAL the batch here too; lattice snapshots are
        # skipped (the owner's lattices are stale while the session
        # runs), so the persisted lattice_version lags and recovery
        # rematerializes lattices only -- never extents.
        batch_id = self.engine._durability_begin(statements)
        try:
            with self.obs.span(
                "session_batch", statements=len(statements), workers=self.workers
            ):
                return self._apply_statements(statements, report)
        finally:
            self.engine._durability_commit(batch_id, include_lattices=False)

    def _apply_statements(self, statements: List[UpdateStatement], report):
        """One broadcast/apply/replay round under the session_batch span."""
        from repro.maintenance.engine import ViewReport

        tracer = self.obs.tracer

        def broadcast() -> None:
            broadcast_started = time.perf_counter()
            for conn in self._connections:
                try:
                    conn.send(statements)
                except (BrokenPipeError, OSError) as exc:
                    # A worker is gone before the owner touched its own
                    # document (default mode broadcasts first), so the
                    # views are still consistent; shut down cleanly.
                    self.close(force=True)
                    raise RuntimeError("shard worker died") from exc
            tracer.record(
                "broadcast",
                time.perf_counter() - broadcast_started,
                workers=len(self._connections),
            )

        started = time.perf_counter()
        if not self.sequential_send:
            broadcast()
        # Owner document apply overlaps the replicas' work (unless the
        # calibration knob sequences it first).
        application = BatchApplication(self.engine.document, statements)
        owner_error: Optional[BaseException] = None
        try:
            application.apply()
        except BaseException as exc:
            if self.sequential_send:
                # Workers never saw the batch; the owner's partial
                # apply desynchronized it from the replicas for good.
                self._poison()
                raise
            owner_error = exc
        if self.sequential_send:
            try:
                broadcast()
            except RuntimeError:
                # Here the owner HAS applied the batch; restore view
                # consistency against its document before surfacing.
                self._poison()
                raise
        if owner_error is None:
            tracer.record("owner_apply", application.apply_seconds)
            report.apply_document_seconds = application.apply_seconds
            report.pul_size = application.pul_size
            inserted = application.net_inserted_nodes()
            report.net_inserted = len(inserted)
            report.net_removed = len(application.net_removed_nodes())
            report.cancelled = application.cancelled_count()
        applied_done = time.perf_counter()

        worker_walls: List[float] = []
        worker_props: List[float] = []
        worker_applies: List[float] = []
        #: per-view maintenance seconds recorded by the owning workers
        #: this batch -- the rebalance policy's only input.
        batch_timings: Dict[str, float] = {}
        store_seconds = 0.0
        error: Optional[BaseException] = owner_error
        worker_died = False
        mixed_outcome = False
        for worker_index, conn in enumerate(self._connections):
            try:
                kind, payload = conn.recv()
            except EOFError:
                kind, payload = "error", RuntimeError("shard worker died")
                worker_died = True
            if kind == "error":
                if owner_error is None and not worker_died:
                    # Replicas are deterministic, so a worker failing a
                    # batch the owner applied means divergence.
                    mixed_outcome = True
                if error is None:
                    error = payload
                continue
            worker_walls.append(payload["worker_wall_s"])
            worker_props.append(payload["propagation_s"])
            worker_applies.append(payload["apply_document_s"])
            self._makespan_gauge.set(
                payload["worker_wall_s"], labels=(str(worker_index),)
            )
            replica_span = tracer.record(
                "replica_apply", payload["worker_wall_s"], worker=worker_index
            )
            if payload.get("spans"):
                tracer.adopt(
                    replica_span, merge_span_fragments([payload["spans"]])
                )
            if error is not None:
                if owner_error is not None:
                    mixed_outcome = True  # worker applied what the owner could not
                continue  # drain remaining workers, then poison
            store_started = time.perf_counter()
            for name, entry in payload["views"].items():
                registered = self.engine.views[name]
                view_report = ViewReport(name)
                stats = entry.get("stats")
                if stats:
                    view_report.targets = stats["targets"]
                    view_report.terms_developed = stats["terms_developed"]
                    view_report.terms_surviving = stats["terms_surviving"]
                    view_report.term_eval_seconds = stats["term_eval_seconds"]
                    batch_timings[name] = stats["maintenance_seconds"]
                report.view_reports[name] = view_report
                if entry.get("repairs"):
                    report.repairs[name] = entry["repairs"]
                if entry["fallback"] is not None:
                    report.fallbacks[name] = entry["fallback"]
                    view_report.predicate_fallback = True
                    self._replace_extent(registered, entry["content"])
                    continue
                # Fold the refresh rewrites into the Δ sets so the whole
                # replay is ONE bulk store pass: a rewrite is exactly
                # "remove every derivation of the old form, add them
                # under the new form", and shipped Δ rows already carry
                # final attribute values, so the three inputs compose.
                additions = dict(entry["additions"])
                removals = dict(entry["removals"])
                refresh_derivations = 0
                if entry["refresh"]:
                    view = registered.view
                    for old_row, new_row in entry["refresh"]:
                        count = view.count(old_row)
                        refresh_derivations += count
                        removals[old_row] = removals.get(old_row, 0) + count
                        additions[new_row] = additions.get(new_row, 0) + count
                view_report.tuples_modified = len(entry["refresh"])
                added, tuples_removed, derivations_removed = (
                    registered.view.apply_batch_delta(additions, removals)
                )
                # Rewrite churn cancels out of the derivation counters
                # (tuples_removed still counts dropped old-form rows).
                view_report.derivations_added = added - refresh_derivations
                view_report.tuples_removed = tuples_removed
                view_report.derivations_removed = (
                    derivations_removed - refresh_derivations
                )
            replay_seconds = time.perf_counter() - store_started
            store_seconds += replay_seconds
            tracer.record("delta_replay", replay_seconds, worker=worker_index)
        if error is not None:
            if worker_died or mixed_outcome:
                # Unrecoverable: a replica is gone or no longer agrees
                # with the owner; restore the views and shut down.
                self._poison()
                raise error
            # Deterministic poison: owner and every worker failed the
            # same statement identically, so owner document and
            # replicas are still in lockstep (each side's engine
            # restored its own views by recomputation).  Re-sync the
            # owner extents and keep serving -- a poison batch fails
            # only itself, as in the serial engine and the queue.
            self._resync_extents()
            raise error
        finished = time.perf_counter()
        if worker_walls:
            # Balance telemetry: how far apart the batch's parties
            # finished (owner document apply counted as one party).
            parties = worker_walls + [applied_done - started]
            self._skew_gauge.set(max(parties) - min(parties))
        # Observed balance: the recorded per-view maintenance seconds
        # grouped by the live assignment -- the same quantity the
        # planned-LPT gauge approximated with its size proxy, now
        # measured.  This (not wall clock) is what drives rebalancing.
        observed_ratio = None
        if batch_timings:
            from repro.sharding.planner import imbalance_ratio

            loads = [
                sum(batch_timings.get(name, 0.0) for name in owned)
                for owned in self._assignment
            ]
            observed_ratio = imbalance_ratio(loads)
            self._imbalance_gauge.set(observed_ratio)
        migrations: List[Dict] = []
        migration_seconds = 0.0
        if self.rebalance is not None and batch_timings:
            moves = self.rebalance.observe(self._assignment, batch_timings)
            if moves:
                migration_started = time.perf_counter()
                self._migrate(moves)
                migration_seconds = time.perf_counter() - migration_started
                migrations = [
                    {"view": name, "source": source, "target": target}
                    for name, source, target in moves
                ]
        # Time attributable to maintenance: everything past the owner's
        # own document apply, with the store replay counted in per-view
        # phases' stead (shard_seconds carries the wait + replay once);
        # migration work is maintenance too, so it is charged here.
        report.shard_seconds = max(0.0, finished - applied_done) + migration_seconds
        report.shard_rounds.append(
            {
                "mode": "session",
                "units": len(self._connections),
                "imbalance_ratio": (
                    None if observed_ratio is None else round(observed_ratio, 4)
                ),
                "migrations": migrations,
                "migration_s": round(migration_seconds, 6),
                "wall_s": round(finished - started, 6),
                "worker_s": round(sum(worker_walls), 6),
                "worker_propagation_s": round(sum(worker_props), 6),
                "worker_apply_s": round(sum(worker_applies), 6),
                "owner_prep_s": round(applied_done - started, 6),
                "store_s": round(store_seconds, 6),
                "unit_s": [
                    {
                        "view": "worker%d" % index,
                        "kind": "session",
                        "shard": index,
                        "seconds": round(wall, 6),
                    }
                    for index, wall in enumerate(worker_walls)
                ],
            }
        )
        return report

    def apply(self, batch, **kwargs):
        return self.apply_batch(batch, **kwargs)

    # -- view migration ---------------------------------------------------

    def _migrate(self, moves: Sequence[Tuple[str, int, int]]) -> None:
        """Move view ownership between resident workers (batch boundary).

        ``moves`` is ``(view name, source worker, target worker)``
        triples, normally planned by the rebalance policy.  Two
        half-rounds: every source releases its outgoing views (shipping
        stored state for views within ``migration_ship_rows``), then
        every target adopts them -- installing the shipped snapshot or
        rematerializing against its own replica.  The owner's
        assignment map flips only after every ack, so a completed
        migration is atomic with respect to batches; any failure
        mid-protocol degrades exactly like a dead worker mid-batch
        (recompute owner extents, close the session).
        """
        if not moves:
            return
        if self._closed:
            raise RuntimeError("shard session is closed")
        by_source: Dict[int, List[str]] = {}
        by_target: Dict[int, List[str]] = {}
        for name, source, target in moves:
            if source == target:
                raise ValueError("move of %r has source == target %d" % (name, source))
            if name not in self._assignment[source]:
                raise ValueError(
                    "view %r is not owned by worker %d" % (name, source)
                )
            by_source.setdefault(source, []).append(name)
            by_target.setdefault(target, []).append(name)
        started = time.perf_counter()
        shipped: Dict[str, Optional[Dict]] = {}
        try:
            with self.obs.span("session_migration", moves=len(moves)):
                for source in sorted(by_source):
                    self._connections[source].send(
                        (
                            "migrate_out",
                            sorted(by_source[source]),
                            self.migration_ship_rows,
                        )
                    )
                for source in sorted(by_source):
                    kind, reply = self._connections[source].recv()
                    if kind != "ok":
                        raise reply
                    shipped.update(reply)
                for target in sorted(by_target):
                    self._connections[target].send(
                        (
                            "migrate_in",
                            {name: shipped[name] for name in sorted(by_target[target])},
                        )
                    )
                for target in sorted(by_target):
                    kind, reply = self._connections[target].recv()
                    if kind != "ok":
                        raise reply
        except BaseException as exc:
            # A replica died or failed mid-protocol; ownership state
            # across workers is no longer trustworthy.  Same degradation
            # as a dead worker during a batch: restore the owner's views
            # from its own document and shut the session down.
            self._poison()
            raise RuntimeError("shard worker died during migration") from exc
        for name, source, target in moves:
            self._assignment[source].remove(name)
            self._assignment[target].append(name)
            self._migrations_counter.inc(labels=(name,))
        self.obs.tracer.record(
            "view_migration", time.perf_counter() - started, moves=len(moves)
        )

    @staticmethod
    def _replace_extent(registered, content) -> None:
        # Content-level reload keeps the store object (and its durable
        # table binding, when the engine has a storage backend).
        registered.view.reload_content(content)

    def _resync_extents(self) -> None:
        """Recompute every owner extent from the owner document."""
        from repro.views.view import MaterializedView

        for registered in self.engine.views.values():
            fresh = MaterializedView.materialize(
                registered.pattern, self.engine.document, name=registered.name
            )
            registered.view.reload_content(fresh.content())

    def _poison(self) -> None:
        """Restore owner views by recomputation, then shut down."""
        self._resync_extents()
        self.close(force=True)

    # -- lifecycle -------------------------------------------------------

    def close(self, force: bool = False) -> None:
        """Stop the workers and re-sync the owner engine (idempotent).

        The owner's lattices were not maintained while the session ran;
        closing re-materializes them from the owner document so direct
        serial propagation is valid again.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._connections:
            try:
                if not force:
                    conn.send(None)
                conn.close()
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
        self._connections = []
        self._processes = []
        for registered in self.engine.views.values():
            registered.lattice.materialize(self.engine.document)
        self.engine._shard_session_active = False
        # With a durable backend, checkpoint the re-materialized
        # lattices (and any buffered extent ops) so the persisted
        # lattice_version catches back up to the batch version.
        sync = getattr(self.engine, "sync_durability", None)
        if sync is not None:
            sync()

    def __enter__(self) -> "ShardSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return "ShardSession(%d workers, %d views%s)" % (
            self.workers,
            len(self.engine.views),
            ", closed" if self._closed else "",
        )
