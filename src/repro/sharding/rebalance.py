"""Timing-driven adaptive view rebalancing for :class:`ShardSession`.

A session freezes its LPT view assignment at fork time, so when a
workload's hot labels drift (the ~95/4/1 stage-dependent event-rate
shape of lifecycle-modeled churn) one resident worker ends up owning
every hot view and the per-batch makespan degrades toward the
single-worker time while the other replicas idle.  This module closes
the loop: the per-view ``maintenance_seconds`` the workers already ship
home each batch feed an EWMA cost model, and a deterministic policy
decides -- purely from those recorded timings -- when to migrate view
ownership between resident workers so the makespan tracks Sigma/N again.

Two invariants shape the design:

* **decisions are replayable.**  :meth:`RebalancePolicy.observe` is a
  pure function of the timing stream and the policy's own constants --
  no wall clock, no RNG, no iteration over unordered containers.  The
  exact migration trajectory of a live session can be reproduced
  offline from the recorded per-batch timings (the projection fallback
  of ``benchmarks/bench_rebalance.py`` does exactly that on hosts too
  small to measure real concurrency).
* **the plan never thrashes.**  A migration is triggered only after
  the observed imbalance ratio exceeds ``trigger_ratio`` for
  ``patience`` consecutive batches (hysteresis against one-batch
  spikes), each decision moves at most ``budget`` views (and stops
  early once the planned ratio falls under ``target_ratio``, which sits
  below the trigger so a freshly balanced plan has slack before it can
  re-trigger), and ``cooldown`` batches must pass after a migration
  before the trigger counter may grow again (the EWMA needs a few
  batches to reflect the new assignment).

The session applies the returned moves through its batch-boundary
migration protocol (:meth:`ShardSession._migrate`); this module knows
nothing about processes or pipes and is trivially unit-testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sharding.planner import imbalance_ratio

#: A planned ownership move: (view name, source worker, target worker).
Move = Tuple[str, int, int]


class ViewCostModel:
    """Median-prefiltered EWMA per-view maintenance cost in seconds.

    ``alpha`` is the weight of the newest observation: high values track
    drift quickly but chase noise, low values smooth.  The first
    observation of a view seeds its cell directly, so a cold-started
    model is usable after one batch.  Views are updated in sorted name
    order purely for reproducible trace output; the EWMA cells are
    independent, so the order never changes the numbers.

    Before a measurement enters the EWMA it passes a median-of-
    ``spike_window`` prefilter over that view's most recent raw
    observations.  A single-batch measurement spike -- a GC pause or a
    burst of CPU steal landing inside one view's phase timer -- can
    fake a cost larger than any worker's fair share, and no assignment
    repairs that; the median rejects an isolated outlier entirely,
    while a *sustained* change (a real drift-phase flip) passes with
    one batch of delay.  ``spike_window=1`` disables the filter.
    """

    def __init__(self, alpha: float = 0.3, spike_window: int = 3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1], got %r" % (alpha,))
        if spike_window < 1 or spike_window % 2 == 0:
            raise ValueError(
                "spike_window must be a positive odd integer, got %r"
                % (spike_window,)
            )
        self.alpha = alpha
        self.spike_window = spike_window
        self._costs: Dict[str, float] = {}
        self._recent: Dict[str, List[float]] = {}

    def observe(self, name: str, seconds: float) -> float:
        """Fold one measured per-view maintenance time into the model."""
        seconds = max(0.0, float(seconds))
        if self.spike_window > 1:
            recent = self._recent.setdefault(name, [])
            recent.append(seconds)
            del recent[: -self.spike_window]
            seconds = sorted(recent)[len(recent) // 2]
        previous = self._costs.get(name)
        if previous is None:
            self._costs[name] = seconds
        else:
            self._costs[name] = previous + self.alpha * (seconds - previous)
        return self._costs[name]

    def observe_batch(self, timings: Dict[str, float]) -> None:
        """Fold one batch's ``view -> maintenance_seconds`` map."""
        for name in sorted(timings):
            self.observe(name, timings[name])

    def cost(self, name: str, default: float = 0.0) -> float:
        return self._costs.get(name, default)

    def costs(self) -> Dict[str, float]:
        """A snapshot copy of every tracked view's smoothed cost."""
        return dict(self._costs)

    def load_of(self, names: Sequence[str]) -> float:
        return sum(self._costs.get(name, 0.0) for name in names)

    def __repr__(self) -> str:
        return "ViewCostModel(alpha=%g, %d views)" % (
            self.alpha,
            len(self._costs),
        )


class RebalancePolicy:
    """Deterministic migration policy over a :class:`ViewCostModel`.

    Feed it one :meth:`observe` call per completed batch (the current
    assignment plus that batch's recorded per-view timings); it returns
    the migration moves the session should apply at the next batch
    boundary -- usually none.  All state is explicit counters, so equal
    timing streams produce equal decision streams.
    """

    def __init__(
        self,
        trigger_ratio: float = 1.25,
        target_ratio: float = 1.1,
        patience: int = 3,
        cooldown: int = 2,
        budget: int = 2,
        alpha: float = 0.3,
        ship_rows: int = 4096,
    ):
        if trigger_ratio < target_ratio:
            raise ValueError(
                "trigger_ratio %.3f must be >= target_ratio %.3f (hysteresis)"
                % (trigger_ratio, target_ratio)
            )
        if target_ratio < 1.0:
            raise ValueError("target_ratio must be >= 1.0, got %r" % (target_ratio,))
        if patience < 1:
            raise ValueError("patience must be >= 1, got %r" % (patience,))
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0, got %r" % (cooldown,))
        if budget < 1:
            raise ValueError("budget must be >= 1, got %r" % (budget,))
        self.trigger_ratio = trigger_ratio
        self.target_ratio = target_ratio
        self.patience = patience
        self.cooldown = cooldown
        self.budget = budget
        self.model = ViewCostModel(alpha)
        #: when a migrating view's extent+lattice rows fit under this,
        #: the source ships the data instead of the target recomputing.
        self.ship_rows = ship_rows
        self._over_trigger = 0
        self._cooldown_left = 0
        #: total moves decided over the policy's lifetime (telemetry).
        self.moves_decided = 0

    @classmethod
    def coerce(
        cls, value: Union[None, bool, "RebalancePolicy"]
    ) -> Optional["RebalancePolicy"]:
        """Accept a policy, ``True`` (defaults) or ``None``/``False``."""
        if isinstance(value, RebalancePolicy):
            return value
        if value is True:
            return cls()
        if value is None or value is False:
            return None
        raise TypeError(
            "rebalance must be a RebalancePolicy, True or None, got %r" % (value,)
        )

    # -- the per-batch decision -----------------------------------------

    def observe(
        self, assignment: Sequence[Sequence[str]], timings: Dict[str, float]
    ) -> List[Move]:
        """Fold one batch's timings; return the moves to apply (if any).

        ``assignment`` is the live worker -> owned-view-names partition
        (the session's ``_assignment``); ``timings`` maps each view to
        the ``maintenance_seconds`` its worker recorded for this batch.
        The caller applies the returned moves to its own assignment --
        the policy never mutates the argument.
        """
        self.model.observe_batch(timings)
        if len(assignment) < 2:
            return []
        loads = [self.model.load_of(owned) for owned in assignment]
        ratio = imbalance_ratio(loads)
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            self._over_trigger = 0
            return []
        if ratio <= self.trigger_ratio:
            self._over_trigger = 0
            return []
        self._over_trigger += 1
        if self._over_trigger < self.patience:
            return []
        self._over_trigger = 0
        moves = self.plan(assignment)
        if moves:
            self._cooldown_left = self.cooldown
            self.moves_decided += len(moves)
        return moves

    def plan(self, assignment: Sequence[Sequence[str]]) -> List[Move]:
        """Greedy makespan repair under the migration budget (pure).

        Repeatedly moves the heaviest view that *strictly* lowers the
        makespan from the most loaded worker to the least loaded one
        (ties on load broken by worker index, ties on cost by view
        name), stopping at ``budget`` moves or once the planned ratio
        reaches ``target_ratio``.  Each view moves at most one hop per
        round: the migration protocol ships every move from its
        pre-round owner, so a chained double-move would be both invalid
        there and a wasted second ship.  Working on model costs only,
        the same model state always plans the same moves.
        """
        buckets = [list(owned) for owned in assignment]
        loads = [self.model.load_of(owned) for owned in buckets]
        moves: List[Move] = []
        moved = set()
        while len(moves) < self.budget:
            if imbalance_ratio(loads) <= self.target_ratio:
                break
            source = loads.index(max(loads))
            target = loads.index(min(loads))
            if source == target:
                break
            headroom = loads[source] - loads[target]
            candidates = sorted(
                (name for name in buckets[source] if name not in moved),
                key=lambda name: (-self.model.cost(name), name),
            )
            chosen = None
            for name in candidates:
                cost = self.model.cost(name)
                # Moving `cost` helps iff the target stays below the
                # source's old load: new makespan contribution
                # max(source - cost, target + cost) < source.
                if 0.0 < cost < headroom:
                    chosen = name
                    break
            if chosen is None:
                break
            buckets[source].remove(chosen)
            buckets[target].append(chosen)
            cost = self.model.cost(chosen)
            loads[source] -= cost
            loads[target] += cost
            moved.add(chosen)
            moves.append((chosen, source, target))
        return moves

    def describe(self) -> Dict[str, float]:
        return {
            "trigger_ratio": self.trigger_ratio,
            "target_ratio": self.target_ratio,
            "patience": self.patience,
            "cooldown": self.cooldown,
            "budget": self.budget,
            "alpha": self.model.alpha,
            "ship_rows": self.ship_rows,
            "moves_decided": self.moves_decided,
        }

    def __repr__(self) -> str:
        return (
            "RebalancePolicy(trigger=%.2f, target=%.2f, patience=%d, "
            "cooldown=%d, budget=%d)"
            % (
                self.trigger_ratio,
                self.target_ratio,
                self.patience,
                self.cooldown,
                self.budget,
            )
        )
