"""Worker-pool execution of shard work units.

``ShardExecutor`` runs one *round* -- an ordered list of
:class:`~repro.sharding.units.ShardWorkUnit` -- and returns every
unit's fragment plus timing.  Three modes:

``serial`` (``workers=0``)
    Units run inline on the calling thread.  This is the reference
    path: the parallel modes must produce byte-identical merge inputs.

``fork`` (default for ``workers >= 1`` where ``os.fork`` exists)
    A fresh ``multiprocessing`` fork pool per round.  Children inherit
    the engine state (document, relations, lattices, candidate
    buckets) by copy-on-write, so nothing is pickled *into* a worker
    -- the dispatched payload is the unit's index into the
    fork-inherited round, and only the picklable fragments travel
    back.  A pool per round is deliberate: engine state changes
    between rounds, and re-forking is how workers observe the current
    state without any serialization protocol.

``thread``
    ``multiprocessing.dummy`` pool; a compatibility fallback for
    platforms without ``fork`` (no speedup under the GIL, same
    semantics).  The engine pre-warms value-index lookups before
    dispatch so threaded units only read.

Worker failures propagate: the first unit exception re-raises on the
caller, which the engine turns into its poison-batch recovery
(recompute every view) exactly as in the serial path.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import List, Optional, Sequence

from repro.obs import NULL_OBS, SpanFragment
from repro.sharding.units import ShardWorkUnit

#: round state inherited by fork children (set only while dispatching).
_ACTIVE_ROUND: Optional[Sequence[ShardWorkUnit]] = None
#: whether the dispatching executor wants worker-side span fragments;
#: published parent-side next to ``_ACTIVE_ROUND`` (fork children
#: inherit it, thread workers read it -- never write it).
_ACTIVE_OBS_ENABLED: bool = False
#: serializes pooled rounds within one process: the round state is a
#: module global (that is what fork children inherit), so two engines
#: dispatching concurrently -- e.g. two ApplyQueues with workers>0 --
#: must take turns or thread-mode units would read the other round's
#: state and fork-mode pools could observe it cleared mid-fork.
_ROUND_LOCK = threading.Lock()


def _execute_indexed(index: int):
    """Pool target: run one fork-inherited unit, return its fragment.

    The worker cannot ship a live tracer home (locks and thread-locals
    do not pickle across the fork boundary), so when telemetry is on it
    returns the unit's timing as a flat picklable
    :class:`~repro.obs.SpanFragment` row; the owner stitches rows under
    its shard-round span via ``sharding.merge.merge_span_fragments``.
    """
    unit = _ACTIVE_ROUND[index]
    started = time.perf_counter()
    fragment = unit.execute()
    seconds = time.perf_counter() - started
    span_fragments = None
    if _ACTIVE_OBS_ENABLED:
        span_fragments = [
            SpanFragment(
                (0,),
                "unit",
                {"view": unit.view_name, "kind": unit.kind, "shard": unit.shard},
                0.0,
                seconds,
            )
        ]
    return index, fragment, seconds, span_fragments


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


class RoundResult:
    """Fragments and timing of one executed round."""

    __slots__ = (
        "fragments",
        "unit_seconds",
        "wall_seconds",
        "mode",
        "units",
        "span_fragments",
    )

    def __init__(
        self,
        units: Sequence[ShardWorkUnit],
        fragments: List,
        unit_seconds: List[float],
        wall_seconds: float,
        mode: str,
        span_fragments: Optional[List] = None,
    ):
        self.units = list(units)
        self.fragments = fragments
        self.unit_seconds = unit_seconds
        self.wall_seconds = wall_seconds
        self.mode = mode
        #: per-unit lists of :class:`~repro.obs.SpanFragment` (aligned
        #: with ``units``; ``None`` entries when telemetry is off).
        self.span_fragments = (
            span_fragments if span_fragments is not None else [None] * len(self.units)
        )

    @property
    def worker_seconds(self) -> float:
        """Summed self-reported compute time across all units."""
        return sum(self.unit_seconds)

    def describe(self) -> dict:
        return {
            "mode": self.mode,
            "units": len(self.units),
            "wall_s": round(self.wall_seconds, 6),
            "worker_s": round(self.worker_seconds, 6),
            "unit_s": [
                {
                    "view": unit.view_name,
                    "kind": unit.kind,
                    "shard": unit.shard,
                    "seconds": round(seconds, 6),
                }
                for unit, seconds in zip(self.units, self.unit_seconds)
            ],
        }

    def __repr__(self) -> str:
        return "RoundResult(%d units, %s, %.4fs wall)" % (
            len(self.units),
            self.mode,
            self.wall_seconds,
        )


class ShardExecutor:
    """Runs shard rounds serially or on a worker pool."""

    def __init__(self, workers: int = 0, mode: Optional[str] = None, obs=None):
        if workers < 0:
            raise ValueError("workers must be >= 0, got %d" % workers)
        if mode not in (None, "serial", "fork", "thread"):
            raise ValueError("unknown executor mode %r" % (mode,))
        self.workers = workers
        if workers == 0:
            mode = "serial"
        elif mode is None:
            mode = "fork" if _fork_available() else "thread"
        elif mode == "fork" and not _fork_available():
            mode = "thread"
        self.mode = mode
        self.obs = obs if obs is not None else NULL_OBS
        self._spinup_histogram = self.obs.metrics.histogram(
            "repro_pool_spinup_seconds",
            "seconds from pool construction to a dispatch-ready pool",
            ("mode",),
        )

    @property
    def parallel(self) -> bool:
        return self.workers > 0 and self.mode != "serial"

    def run(self, units: Sequence[ShardWorkUnit]) -> RoundResult:
        units = list(units)
        if not units:
            return RoundResult(units, [], [], 0.0, self.mode)
        # A single unit gains nothing from a pool; run it inline even
        # in parallel mode.  The round's recorded mode says so -- the
        # report must not claim a fan-out that never happened.
        if not self.parallel or len(units) == 1:
            tracer = self.obs.tracer
            started = time.perf_counter()
            fragments: List = []
            unit_seconds: List[float] = []
            for unit in units:
                unit_started = time.perf_counter()
                fragments.append(unit.execute())
                seconds = time.perf_counter() - unit_started
                unit_seconds.append(seconds)
                tracer.record(
                    "unit",
                    seconds,
                    view=unit.view_name,
                    kind=unit.kind,
                    shard=unit.shard,
                )
            wall = time.perf_counter() - started
            mode = "inline" if self.parallel else "serial"
            return RoundResult(units, fragments, unit_seconds, wall, mode)
        if self.mode == "fork":
            return self._run_fork(units)
        return self._run_thread(units)

    # -- pool modes ------------------------------------------------------

    def _run_fork(self, units: List[ShardWorkUnit]) -> RoundResult:
        global _ACTIVE_ROUND, _ACTIVE_OBS_ENABLED
        context = multiprocessing.get_context("fork")
        processes = min(self.workers, len(units))
        started = time.perf_counter()
        with _ROUND_LOCK:
            _ACTIVE_ROUND = units
            _ACTIVE_OBS_ENABLED = self.obs.enabled
            try:
                spinup_started = time.perf_counter()
                with context.Pool(processes=processes) as pool:
                    spinup = time.perf_counter() - spinup_started
                    indexed = pool.map(
                        _execute_indexed, range(len(units)), chunksize=1
                    )
            finally:
                _ACTIVE_ROUND = None
                _ACTIVE_OBS_ENABLED = False
        wall = time.perf_counter() - started
        self._record_spinup(spinup, "fork", processes)
        return self._collect(units, indexed, wall, "fork")

    def _run_thread(self, units: List[ShardWorkUnit]) -> RoundResult:
        global _ACTIVE_ROUND, _ACTIVE_OBS_ENABLED
        from multiprocessing.dummy import Pool as ThreadPool

        processes = min(self.workers, len(units))
        started = time.perf_counter()
        with _ROUND_LOCK:
            _ACTIVE_ROUND = units
            _ACTIVE_OBS_ENABLED = self.obs.enabled
            try:
                spinup_started = time.perf_counter()
                with ThreadPool(processes=processes) as pool:
                    spinup = time.perf_counter() - spinup_started
                    indexed = pool.map(
                        _execute_indexed, range(len(units)), chunksize=1
                    )
            finally:
                _ACTIVE_ROUND = None
                _ACTIVE_OBS_ENABLED = False
        wall = time.perf_counter() - started
        self._record_spinup(spinup, "thread", processes)
        return self._collect(units, indexed, wall, "thread")

    def _record_spinup(self, seconds: float, mode: str, processes: int) -> None:
        self._spinup_histogram.observe(seconds, labels=(mode,))
        self.obs.tracer.record(
            "pool_spinup", seconds, mode=mode, processes=processes
        )

    @staticmethod
    def _collect(units, indexed, wall: float, mode: str) -> RoundResult:
        fragments: List = [None] * len(units)
        unit_seconds: List[float] = [0.0] * len(units)
        span_fragments: List = [None] * len(units)
        for index, fragment, seconds, unit_spans in indexed:
            fragments[index] = fragment
            unit_seconds[index] = seconds
            span_fragments[index] = unit_spans
        return RoundResult(units, fragments, unit_seconds, wall, mode, span_fragments)

    def __repr__(self) -> str:
        return "ShardExecutor(workers=%d, mode=%s)" % (self.workers, self.mode)
