"""Deterministic reassembly of per-shard fragments.

Workers return fragments in whatever order the pool finishes them; the
merge layer rebuilds the exact inputs the serial pipeline would have
produced, so :meth:`~repro.views.view.MaterializedView.apply_batch_delta`
and the lattice upkeep see byte-identical data regardless of worker
count, shard count or scheduling:

* Δ+ fragments sum derivation counts per projected tuple; Δ− fragments
  union doomed-embedding maps (cross-term duplicates collapse by
  binding key).  Both merged dicts are built in Dewey (sorted-key)
  order.
* Snowcap fragments carry binding rows as ID tuples; the owner
  re-resolves them against the live document into node rows.

σ-flip repair fragments ride the same mergers: an evict fragment is an
embedding map unioned with the batch Δ− fragments before the single
``removals_from_embeddings`` count, an admit fragment is a counted row
dict summed with the batch Δ+ fragments.  Sharded-recompute lattice
fragments reuse :func:`resolve_snowcap_fragment` (identical
``(schema, ID rows)`` shape); extent-recompute fragments are already
sorted pairs and install without a merge step (one unit per view).

View-migration payloads -- ``{"pairs": ..., "lattice": ...}`` from a
:class:`~repro.sharding.units.ViewSnapshotUnit` or the recompute-unit
pair -- install through :func:`install_view_snapshot`, which rebuilds
the extent from the pairs and re-resolves the snowcap rows against the
adopting replica's document.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.algebra.relation import Relation
from repro.maintenance.delete import removals_from_embeddings
from repro.views.view import row_sort_key
from repro.xmldom.model import Document


def merge_addition_fragments(
    fragments: Iterable[Dict[tuple, int]]
) -> Dict[tuple, int]:
    """Sum per-tuple derivation counts across Δ+ fragments, keys in
    Dewey order.

    A single fragment passes through untouched: its insertion order is
    already deterministic (the unit's term loop), and the store pass
    sorts keys itself.
    """
    fragments = list(fragments)
    if len(fragments) == 1:
        return fragments[0]
    accumulated: Dict[tuple, int] = {}
    for fragment in fragments:
        for row, count in fragment.items():
            accumulated[row] = accumulated.get(row, 0) + count
    return {row: accumulated[row] for row in sorted(accumulated, key=row_sort_key)}


def merge_embedding_fragments(
    fragments: Iterable[Dict[tuple, tuple]]
) -> Dict[tuple, int]:
    """Union doomed-embedding maps, then count per projected tuple.

    One embedding surfacing in several fragments (the same binding
    reached through different terms) collapses under dict union; the
    projected row is a function of the binding, so whichever fragment
    contributed it carries the same row.

    A single fragment is counted in its own (deterministic) insertion
    order -- both consumers are order-independent, so the Dewey sort of
    :func:`removals_from_embeddings` is only needed to canonicalize a
    genuine multi-fragment union.
    """
    fragments = list(fragments)
    if len(fragments) == 1:
        removals: Dict[tuple, int] = {}
        for row in fragments[0].values():
            removals[row] = removals.get(row, 0) + 1
        return removals
    merged: Dict[tuple, tuple] = {}
    for fragment in fragments:
        merged.update(fragment)
    return removals_from_embeddings(merged)


def resolve_snowcap_fragment(
    fragment: Optional[Dict[frozenset, object]],
    document: Document,
) -> Dict[frozenset, Relation]:
    """Rebuild snowcap-addition relations from a unit fragment.

    In-process units hand their node-row relations over directly
    (pass-through); fragments that crossed a process boundary carry
    ``(schema, ID rows)`` pairs whose IDs are re-resolved against the
    live document.  Every ID must resolve: snowcap additions bind only
    live nodes (survivors and batch-inserted nodes), so a miss means
    the fragment and the document disagree -- fail loudly rather than
    corrupt the lattice.
    """
    relations: Dict[frozenset, Relation] = {}
    if not fragment:
        return relations
    resolve = document.node_by_id
    for subset, value in fragment.items():
        if isinstance(value, Relation):
            relations[subset] = value
            continue
        schema, id_rows = value
        rows = []
        for id_row in id_rows:
            row = tuple(resolve(node_id) for node_id in id_row)
            if any(node is None for node in row):
                raise LookupError(
                    "snowcap fragment row %r references a node missing "
                    "from the document" % (id_row,)
                )
            rows.append(row)
        relations[subset] = Relation(schema, rows)
    return relations


def install_view_snapshot(registered, payload: Dict[str, object], document) -> None:
    """Install a migrated view's state onto the adopting replica.

    ``payload`` carries sorted ``(row, count)`` extent pairs under
    ``"pairs"`` and a snowcap fragment (``{subset: (schema, ID rows)}``
    or live relations) under ``"lattice"`` -- the shape produced both
    by :class:`~repro.sharding.units.ViewSnapshotUnit` on the source
    replica and by the :class:`ExtentRecomputeUnit`/
    :class:`LatticeRecomputeUnit` pair run locally by the target.
    Replica documents are byte-identical, so the shipped Dewey IDs
    resolve on the adopter exactly as they did on the source; a miss
    means the replicas diverged and :func:`resolve_snowcap_fragment`
    fails loudly.
    """
    from repro.views.view import MaterializedView

    fresh = MaterializedView.from_pairs(
        registered.pattern, payload["pairs"], name=registered.name
    )
    registered.view._store = fresh._store
    relations = resolve_snowcap_fragment(payload["lattice"], document)
    registered.lattice._materialized.clear()
    for subset, relation in relations.items():
        registered.lattice.load_materialized(subset, relation)


def merge_span_fragments(fragment_lists: Iterable) -> list:
    """Stitch worker span fragments back into span trees.

    ``fragment_lists`` yields per-source sequences of
    :class:`~repro.obs.SpanFragment` (one per executed unit or session
    worker, in the caller's deterministic order -- unit index resp.
    worker index); ``None`` entries (telemetry off for that source) are
    skipped.  Within each source the rebuild sorts by fragment ``path``,
    so the stitched trees are independent of shipment order -- exactly
    the property the extent mergers guarantee via their Dewey sort.
    """
    from repro.obs import fragments_to_spans

    spans = []
    for fragments in fragment_lists:
        if fragments:
            spans.extend(fragments_to_spans(fragments))
    return spans
