"""Sharded batch maintenance: label-hash planning, worker pools, merge.

The subsystem splits one batch maintenance round into independent
per-shard work units (:mod:`repro.sharding.units`), planned by a stable
label hash (:mod:`repro.sharding.planner`), executed serially or on a
process/thread pool (:mod:`repro.sharding.executor`) and reassembled
deterministically (:mod:`repro.sharding.merge`) so sharded extents stay
byte-identical to serial propagation.  Entry point:
``MaintenanceEngine.apply_batch(batch, workers=..., shard_plan=...)``.
"""

from repro.sharding.executor import RoundResult, ShardExecutor
from repro.sharding.merge import (
    merge_addition_fragments,
    merge_embedding_fragments,
    resolve_snowcap_fragment,
)
from repro.sharding.planner import ShardPlanner, shard_of_label
from repro.sharding.session import ShardSession
from repro.sharding.units import (
    DeleteSideUnit,
    InsertSideUnit,
    RefreshUnit,
    ShardWorkUnit,
    UnitStats,
)

__all__ = [
    "DeleteSideUnit",
    "InsertSideUnit",
    "RefreshUnit",
    "RoundResult",
    "ShardExecutor",
    "ShardPlanner",
    "ShardSession",
    "ShardWorkUnit",
    "UnitStats",
    "merge_addition_fragments",
    "merge_embedding_fragments",
    "resolve_snowcap_fragment",
    "shard_of_label",
]
