"""Sharded batch maintenance: label-hash planning, worker pools, merge.

The subsystem splits one batch maintenance round into independent
per-shard work units (:mod:`repro.sharding.units`), planned by a stable
label hash (:mod:`repro.sharding.planner`), executed serially or on a
process/thread pool (:mod:`repro.sharding.executor`) and reassembled
deterministically (:mod:`repro.sharding.merge`) so sharded extents stay
byte-identical to serial propagation.  Entry point:
``MaintenanceEngine.apply_batch(batch, workers=..., shard_plan=...)``.
Resident view-sharded workers live in :mod:`repro.sharding.session`;
their timing-driven adaptive rebalancing (EWMA cost model, hysteretic
migration policy) in :mod:`repro.sharding.rebalance`.
"""

from repro.sharding.executor import RoundResult, ShardExecutor
from repro.sharding.merge import (
    install_view_snapshot,
    merge_addition_fragments,
    merge_embedding_fragments,
    merge_span_fragments,
    resolve_snowcap_fragment,
)
from repro.sharding.planner import (
    ShardPlanner,
    imbalance_ratio,
    lpt_assignment,
    shard_of_label,
)
from repro.sharding.rebalance import RebalancePolicy, ViewCostModel
from repro.sharding.session import ShardSession
from repro.sharding.units import (
    DeleteSideUnit,
    ExtentRecomputeUnit,
    InsertSideUnit,
    LatticeRecomputeUnit,
    RefreshUnit,
    ShardWorkUnit,
    SigmaRepairUnit,
    UnitStats,
    ViewSnapshotUnit,
)

# Dependency inversion: maintenance sits below sharding in the layer
# DAG and must not import this package, so the engine looks planners,
# executors, units and merges up through a registered backend instead.
# Registering this package's own namespace (which re-exports every name
# the engine dispatches on) closes the loop; repro/__init__ imports us
# so the seam is wired before any engine code runs.
import sys as _sys

from repro.maintenance.engine import register_shard_backend as _register_shard_backend

_register_shard_backend(_sys.modules[__name__])

__all__ = [
    "DeleteSideUnit",
    "ExtentRecomputeUnit",
    "InsertSideUnit",
    "LatticeRecomputeUnit",
    "RebalancePolicy",
    "RefreshUnit",
    "RoundResult",
    "ShardExecutor",
    "ShardPlanner",
    "ShardSession",
    "ShardWorkUnit",
    "SigmaRepairUnit",
    "UnitStats",
    "ViewCostModel",
    "ViewSnapshotUnit",
    "imbalance_ratio",
    "install_view_snapshot",
    "lpt_assignment",
    "merge_addition_fragments",
    "merge_embedding_fragments",
    "merge_span_fragments",
    "resolve_snowcap_fragment",
    "shard_of_label",
]
