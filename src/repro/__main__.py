"""Command-line demo driver: ``python -m repro <command>``.

Commands:

* ``demo``        -- quick end-to-end run on a generated document
* ``generate``    -- emit an XMark-like document to stdout
* ``experiment``  -- run one figure's experiment driver and print it

Examples::

    python -m repro demo
    python -m repro generate --scale 2 > auction.xml
    python -m repro experiment fig28
    python -m repro experiment fig24
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.maintenance.engine import MaintenanceEngine
    from repro.views.render import render_view
    from repro.workloads.queries import VIEW_TEXTS
    from repro.workloads.updates import delete_variant, insert_update
    from repro.workloads.xmark import generate_document, size_of

    document = generate_document(scale=args.scale)
    print("document: %d bytes" % size_of(document), file=sys.stderr)
    engine = MaintenanceEngine(document)
    registered = engine.register_view(VIEW_TEXTS["Q1"], name="Q1")
    print("view Q1: %d tuples" % len(registered.view), file=sys.stderr)
    for statement in (insert_update("X1_L"), delete_variant("A6_A")):
        report = engine.apply_update(statement)
        print(
            "%s: %.2f ms (%s)"
            % (
                statement.name,
                report.total_maintenance_seconds() * 1000,
                report.report_for("Q1"),
            ),
            file=sys.stderr,
        )
    assert registered.view.equals_fresh_evaluation(document)
    print(render_view(registered.definition, registered.view))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads.xmark import generate_xml

    sys.stdout.write(generate_xml(scale=args.scale, seed=args.seed))
    return 0


_EXPERIMENTS = {
    "fig18": lambda m: m.run_breakdown_matrix(2, "insert", views=("Q1", "Q3", "Q6")),
    "fig19": lambda m: m.run_breakdown_matrix(2, "delete", views=("Q1", "Q3", "Q6")),
    "fig20": lambda m: m.run_breakdown_matrix(2, "insert"),
    "fig21": lambda m: m.run_breakdown_matrix(2, "delete"),
    "fig22": lambda m: m.run_path_depth(1),
    "fig23": lambda m: m.run_path_depth(4),
    "fig24": lambda m: m.run_annotation_variants(2),
    "fig25": lambda m: m.run_scalability(scales=(1, 2, 20)),
    "fig26": lambda m: m.run_vs_full(2, "insert"),
    "fig27": lambda m: m.run_vs_full(2, "delete", selectivity=0.1),
    "fig28": lambda m: m.run_vs_ivma(1),
    "fig29": lambda m: m.run_snowcaps_vs_leaves("Q4"),
    "fig30": lambda m: m.run_snowcaps_vs_leaves("Q6"),
    "fig33": lambda m: m.run_reduction_rule("O1", percents=(20, 60, 100)),
    "fig34": lambda m: m.run_reduction_rule("O3", percents=(20, 60, 100)),
    "fig35": lambda m: m.run_reduction_rule("I5", percents=(20, 60, 100)),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.bench.experiments as experiments
    from repro.bench.harness import BreakdownRow, format_rows

    driver = _EXPERIMENTS.get(args.figure)
    if driver is None:
        print("unknown figure %r; choose from %s"
              % (args.figure, ", ".join(sorted(_EXPERIMENTS))), file=sys.stderr)
        return 2
    rows = driver(experiments)
    if rows and isinstance(rows[0], BreakdownRow):
        print(format_rows(rows, args.figure))
        return 0
    columns = list(rows[0].keys()) if rows else []
    print("  ".join("%-16s" % c for c in columns))
    for row in rows:
        print("  ".join("%-16s" % (row.get(c, ""),) for c in columns))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="end-to-end maintenance demo")
    demo.add_argument("--scale", type=int, default=1)
    demo.set_defaults(func=_cmd_demo)

    generate = commands.add_parser("generate", help="emit an XMark-like document")
    generate.add_argument("--scale", type=int, default=1)
    generate.add_argument("--seed", type=int, default=20110322)
    generate.set_defaults(func=_cmd_generate)

    experiment = commands.add_parser("experiment", help="run one figure driver")
    experiment.add_argument("figure", help="e.g. fig18 ... fig35")
    experiment.set_defaults(func=_cmd_experiment)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
