"""Structured tracing on monotonic clocks.

A :class:`Span` is one timed interval with string-keyed attributes and
nested children.  :class:`Tracer` keeps a *per-thread* open-span stack
(``ApplyQueue`` records from its worker thread while callers read from
theirs) and collects finished root spans into a shared buffer that
:meth:`Tracer.drain` empties.

Clock policy (machine-checked by the ``obs-clock`` lint rule): spans
carry ``perf_counter`` readings only.  ``start`` values are offsets on
the process-local monotonic clock -- meaningful for ordering and
subtraction, never for wall-clock display; export-time timestamps are
the business of :mod:`repro.obs.export` alone.

Spans recorded inside forked workers cannot ride home through this
class (tracers hold locks and thread-locals, both fork-hostile to
pickle); workers flatten their trees into
:class:`repro.obs.fragments.SpanFragment` rows instead and the owner
re-attaches them with :meth:`Tracer.adopt`.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One finished or in-flight timed interval."""

    __slots__ = ("name", "attrs", "start", "seconds", "children")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        start: float = 0.0,
        seconds: float = 0.0,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.start = start
        self.seconds = seconds
        self.children: List["Span"] = []

    def walk(self):
        """Yield ``(span, depth)`` preorder -- the export order."""
        stack = [(self, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def structure(self):
        """Hashable shape ``(name, sorted attrs, child structures)``."""
        return (
            self.name,
            tuple(sorted((str(k), str(v)) for k, v in self.attrs.items())),
            tuple(child.structure() for child in self.children),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%r, %.6fs, %d children)" % (self.name, self.seconds, len(self.children))


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects span trees; open-span stacks are thread-local."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.finished: List[Span] = []

    # -- stack plumbing -------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        span.start = perf_counter()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.seconds = perf_counter() - span.start
        stack = self._stack()
        while stack and stack[-1] is not span:  # defensive: unwind leaks
            stack.pop()
        if stack:
            stack.pop()
        self._attach(span)

    def _attach(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.finished.append(span)

    # -- public API -----------------------------------------------------
    def span(self, name: str, /, **attrs: Any) -> _SpanHandle:
        """Open a nested span: ``with tracer.span("batch", n=3): ...``"""
        return _SpanHandle(self, Span(name, attrs))

    def record(self, name: str, seconds: float, start: float = 0.0, /, **attrs: Any) -> Span:
        """Attach an already-measured leaf span under the current parent.

        This is the single-timing-source hook: callers measure one
        ``perf_counter`` interval, credit it to their report fields and
        hand the *same* float here, so report totals and trace sums can
        never disagree.
        """
        span = Span(name, attrs, start=start, seconds=seconds)
        self._attach(span)
        return span

    def adopt(self, parent: Span, children: Sequence[Span]) -> None:
        """Graft stitched worker span trees under ``parent``."""
        parent.children.extend(children)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def drain(self) -> List[Span]:
        """Pop and return every finished root span."""
        with self._lock:
            finished, self.finished = self.finished, []
        return finished


class _NullHandle:
    __slots__ = ()

    span = None

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = Span("null")
_NULL_HANDLE = _NullHandle()


class NullTracer(Tracer):
    """Inert tracer: every call is a no-op returning shared husks."""

    enabled = False

    def span(self, name: str, /, **attrs: Any) -> _NullHandle:  # type: ignore[override]
        return _NULL_HANDLE

    def record(self, name: str, seconds: float, start: float = 0.0, /, **attrs: Any) -> Span:
        return _NULL_SPAN

    def adopt(self, parent: Span, children: Sequence[Span]) -> None:
        return None

    def current(self) -> Optional[Span]:
        return None

    def drain(self) -> List[Span]:
        return []


#: Process-wide inert tracer; the default for every engine.
NULL_TRACER = NullTracer()
