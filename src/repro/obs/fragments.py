"""Picklable span fragments for the fork boundary.

Tracers hold locks and thread-locals, so span trees recorded inside a
forked worker cannot be pickled back whole.  Workers flatten each root
tree into flat :class:`SpanFragment` rows -- scalars plus a ``path``
tuple encoding tree position -- and the owner rebuilds the trees with
:func:`fragments_to_spans`.  Reconstruction sorts by ``path``, so the
result is independent of the order fragments travelled in, exactly like
extent fragments merging in Dewey order.

``path`` addressing: ``(r,)`` is the r-th root recorded by that worker,
``(r, 0)`` its first child, ``(r, 0, 2)`` that child's third child.
``start_offset`` is the span's start relative to its root's start (the
workers' ``perf_counter`` origins are not comparable across processes;
offsets within one tree are).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.obs.trace import Span

__all__ = ["SpanFragment", "spans_to_fragments", "fragments_to_spans"]


class SpanFragment:
    """One span flattened to picklable scalars; see module docstring."""

    __slots__ = ("path", "name", "attrs", "start_offset", "seconds")

    path: Tuple[int, ...]
    name: str
    attrs: Dict[str, Any]
    start_offset: float
    seconds: float

    def __init__(
        self,
        path: Tuple[int, ...],
        name: str,
        attrs: Dict[str, Any],
        start_offset: float,
        seconds: float,
    ) -> None:
        self.path = tuple(path)
        self.name = name
        self.attrs = dict(attrs)
        self.start_offset = float(start_offset)
        self.seconds = float(seconds)

    def __getstate__(self):
        return (self.path, self.name, self.attrs, self.start_offset, self.seconds)

    def __setstate__(self, state) -> None:
        self.path, self.name, self.attrs, self.start_offset, self.seconds = state

    def __eq__(self, other) -> bool:
        if not isinstance(other, SpanFragment):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanFragment(%r, %r)" % (self.path, self.name)


def spans_to_fragments(roots: Sequence[Span]) -> List[SpanFragment]:
    """Flatten root span trees into fragment rows (preorder)."""
    fragments: List[SpanFragment] = []
    for root_index, root in enumerate(roots):
        origin = root.start
        stack: List[Tuple[Span, Tuple[int, ...]]] = [(root, (root_index,))]
        while stack:
            span, path = stack.pop()
            fragments.append(
                SpanFragment(path, span.name, span.attrs, span.start - origin, span.seconds)
            )
            for child_index, child in enumerate(span.children):
                stack.append((child, path + (child_index,)))
    return fragments


def fragments_to_spans(fragments: Iterable[SpanFragment]) -> List[Span]:
    """Rebuild root span trees from fragments, in ``path`` order.

    Deterministic under any permutation of ``fragments``; raises
    ``ValueError`` when a fragment's parent path is missing (a torn
    shipment must fail loudly, not stitch a hole).
    """
    ordered = sorted(fragments, key=lambda fragment: fragment.path)
    roots: List[Span] = []
    by_path: Dict[Tuple[int, ...], Span] = {}
    for fragment in ordered:
        span = Span(
            fragment.name,
            dict(fragment.attrs),
            start=fragment.start_offset,
            seconds=fragment.seconds,
        )
        by_path[fragment.path] = span
        if len(fragment.path) == 1:
            roots.append(span)
        else:
            parent = by_path.get(fragment.path[:-1])
            if parent is None:
                raise ValueError("span fragment %r has no parent" % (fragment.path,))
            parent.children.append(span)
    return roots
