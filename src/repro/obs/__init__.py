"""``repro.obs`` -- metrics and tracing for the maintenance engine.

The package sits at the bottom of the layer DAG (rank 1, beside
``algebra``): every layer above may import it, and it imports nothing
from ``repro`` at all -- pure stdlib -- so instrumentation can never
create an upward edge.

Two halves:

* :mod:`~repro.obs.registry` -- counters, gauges, fixed-bucket
  histograms with deterministic label sets;
* :mod:`~repro.obs.trace` / :mod:`~repro.obs.fragments` -- span trees
  on monotonic clocks, flattened to picklable fragments at the fork
  boundary and stitched back in ``sharding.merge``.

:class:`Observability` bundles one registry and one tracer; the shared
:data:`NULL_OBS` is the engine-wide default and makes every
instrumentation site a no-op.  Exporters (JSON-lines, Prometheus text)
live in :mod:`~repro.obs.export`, the trace summary CLI behind
``python -m repro.obs`` in :mod:`~repro.obs.cli`.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.fragments import SpanFragment, fragments_to_spans, spans_to_fragments
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanFragment",
    "spans_to_fragments",
    "fragments_to_spans",
    "Observability",
    "NULL_OBS",
]


class Observability:
    """One registry + one tracer, threaded through engine components.

    ``trace_path`` optionally names a JSON-lines sink; :meth:`flush`
    drains finished spans there (``ApplyQueue.close`` calls it so a
    queue shutdown never strands buffered spans).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_path: Optional[str] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.trace_path = trace_path
        self._flushed_once = False

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def span(self, name: str, /, **attrs):
        return self.tracer.span(name, **attrs)

    def flush(self):
        """Drain finished spans; append them to ``trace_path`` if set.

        Returns the drained spans so callers without a sink can still
        collect them.
        """
        spans = self.tracer.drain()
        if self.trace_path is not None and (spans or not self._flushed_once):
            from repro.obs.export import write_jsonl

            write_jsonl(
                self.trace_path,
                spans,
                registry=self.metrics if self.metrics.enabled else None,
                append=self._flushed_once,
            )
            self._flushed_once = True
        return spans


class _NullObservability(Observability):
    """Shared inert facade; the default everywhere."""

    def __init__(self) -> None:
        super().__init__(NULL_REGISTRY, NULL_TRACER, trace_path=None)

    def flush(self):
        return []


#: Process-wide no-op facade -- the default ``obs`` for every engine.
NULL_OBS = _NullObservability()
