"""Metrics registry: counters, gauges and fixed-bucket histograms.

Design constraints inherited from the propagation contract:

* **Deterministic label sets.**  A metric declares its label *names* at
  registration time; samples are keyed by label-*value* tuples and every
  export walks metrics sorted by name and samples sorted by label
  values, so two runs that observe the same values emit byte-identical
  exposition text regardless of observation order.
* **Nil-cost when disabled.**  :class:`NullRegistry` hands out shared
  no-op instruments, so instrumented code can call ``counter.inc(...)``
  unconditionally; the disabled path is a single attribute lookup plus
  an empty method call.
* **Monotonic clocks only.**  Nothing in this module reads a clock; all
  durations are observed by callers holding ``perf_counter`` deltas.

Thread-safety: instruments share their registry's lock.  ``ApplyQueue``
observes from its worker thread while producers read gauges from the
caller thread, so updates must not interleave mid read-modify-write.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): spans micro-benchmarks through
#: multi-second shard rounds.  Upper bounds are inclusive; +Inf is
#: implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelValues = Tuple[str, ...]


def _coerce_labels(labelnames: Sequence[str], labels: Sequence[str]) -> LabelValues:
    values = tuple(str(value) for value in labels)
    if len(values) != len(labelnames):
        raise ValueError(
            "expected %d label value(s) %r, got %r"
            % (len(labelnames), tuple(labelnames), values)
        )
    return values


class _Instrument:
    """Common bookkeeping for one named metric family."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = lock

    def _key(self, labels: Sequence[str]) -> LabelValues:
        return _coerce_labels(self.labelnames, labels)


class Counter(_Instrument):
    """Monotonically increasing count, one cell per label-value tuple."""

    kind = "counter"

    def __init__(self, name, help_text, labelnames, lock) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, labels: Sequence[str] = ()) -> None:
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Sequence[str] = ()) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Instrument):
    """Point-in-time value; also tracks the high-water mark per cell."""

    kind = "gauge"

    def __init__(self, name, help_text, labelnames, lock) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._values: Dict[LabelValues, float] = {}
        self._max: Dict[LabelValues, float] = {}

    def set(self, value: float, labels: Sequence[str] = ()) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)
            if value > self._max.get(key, float("-inf")):
                self._max[key] = float(value)

    def add(self, amount: float, labels: Sequence[str] = ()) -> None:
        key = self._key(labels)
        with self._lock:
            value = self._values.get(key, 0.0) + amount
            self._values[key] = value
            if value > self._max.get(key, float("-inf")):
                self._max[key] = value

    def value(self, labels: Sequence[str] = ()) -> float:
        return self._values.get(self._key(labels), 0.0)

    def max_value(self, labels: Sequence[str] = ()) -> float:
        return self._max.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._values.items())


class Histogram(_Instrument):
    """Fixed-bucket histogram with quantile estimation.

    Buckets are declared at registration time (never derived from the
    data) so two runs observing the same values produce identical
    exposition output.  :meth:`quantile` interpolates linearly inside
    the bucket that crosses the requested rank, which is the standard
    Prometheus-side estimate for ``histogram_quantile``.
    """

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram %s needs at least one bucket" % name)
        self.buckets: Tuple[float, ...] = bounds
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: float, labels: Sequence[str] = ()) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, labels: Sequence[str] = ()) -> int:
        return self._totals.get(self._key(labels), 0)

    def sum(self, labels: Sequence[str] = ()) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def quantile(self, q: float, labels: Sequence[str] = ()) -> float:
        """Estimated q-quantile (0 <= q <= 1) from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            total = self._totals.get(key, 0)
            if not counts or total == 0:
                return 0.0
            rank = q * total
            seen = 0
            for i, bucket_count in enumerate(counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= rank:
                    upper = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                    lower = self.buckets[i - 1] if 0 < i <= len(self.buckets) else 0.0
                    fraction = (rank - seen) / bucket_count
                    return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
                seen += bucket_count
            return self.buckets[-1]

    def samples(self) -> List[Tuple[LabelValues, List[int], float, int]]:
        with self._lock:
            return sorted(
                (key, list(counts), self._sums.get(key, 0.0), self._totals.get(key, 0))
                for key, counts in self._counts.items()
            )


class MetricsRegistry:
    """Owns every instrument; registration is idempotent by name."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    def _register(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        "metric %r already registered as %s%r"
                        % (name, existing.kind, existing.labelnames)
                    )
                return existing
            instrument = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help_text, labelnames, buckets=tuple(buckets))

    def get(self, name: str) -> Optional[_Instrument]:
        return self._metrics.get(name)

    def collect(self) -> List[_Instrument]:
        """Instruments sorted by name -- the deterministic export order."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0, labels: Sequence[str] = ()) -> None:
        return None


class _NullGauge(Gauge):
    def set(self, value: float, labels: Sequence[str] = ()) -> None:
        return None

    def add(self, amount: float, labels: Sequence[str] = ()) -> None:
        return None


class _NullHistogram(Histogram):
    def observe(self, value: float, labels: Sequence[str] = ()) -> None:
        return None


class NullRegistry(MetricsRegistry):
    """No-op registry: shared inert instruments, nothing recorded."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        lock = self._lock
        self._null_counter = _NullCounter("null", "", (), lock)
        self._null_gauge = _NullGauge("null", "", (), lock)
        self._null_histogram = _NullHistogram("null", "", (), lock)

    def counter(self, name, help_text="", labelnames=()):
        return self._null_counter

    def gauge(self, name, help_text="", labelnames=()):
        return self._null_gauge

    def histogram(self, name, help_text="", labelnames=(), buckets=DEFAULT_BUCKETS):
        return self._null_histogram

    def collect(self):
        return []


#: Process-wide inert registry; the default for every engine.
NULL_REGISTRY = NullRegistry()
