"""Exporters: JSON-lines traces, Prometheus text format, summaries.

This module is the **only** place in the source tree allowed to read
the wall clock (machine-checked by the ``obs-clock`` lint rule): spans
and metrics are captured on monotonic clocks, and a human-meaningful
timestamp is stamped once, here, at export time.
"""

from __future__ import annotations

import datetime
import io
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Union

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "span_records",
    "metric_records",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "propagation_from_records",
    "summarize",
    "render_summary",
]

#: Span names that add up to ``BatchReport.propagation_seconds()`` --
#: the engine records exactly these kinds, nothing else is summed.
PROPAGATION_SPAN_NAMES = ("phase", "net_effects", "shard_round")


def _captured_at() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")


def span_records(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Flatten span trees to dict rows with preorder ids + parent ids."""
    records: List[Dict[str, Any]] = []
    next_id = 0
    for root in spans:
        stack: List[tuple] = [(root, None)]
        while stack:
            span, parent_id = stack.pop()
            span_id = next_id
            next_id += 1
            records.append(
                {
                    "type": "span",
                    "id": span_id,
                    "parent": parent_id,
                    "name": span.name,
                    "start": span.start,
                    "seconds": span.seconds,
                    "attrs": dict(span.attrs),
                }
            )
            for child in reversed(span.children):
                stack.append((child, span_id))
    return records


def metric_records(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Flatten registry samples to dict rows (deterministic order)."""
    records: List[Dict[str, Any]] = []
    for instrument in registry.collect():
        base = {
            "type": "metric",
            "kind": instrument.kind,
            "name": instrument.name,
            "labelnames": list(instrument.labelnames),
        }
        if isinstance(instrument, Histogram):
            for labels, counts, total_sum, count in instrument.samples():
                records.append(
                    dict(
                        base,
                        labels=list(labels),
                        buckets=list(instrument.buckets),
                        counts=counts,
                        sum=total_sum,
                        count=count,
                    )
                )
        elif isinstance(instrument, (Counter, Gauge)):
            for labels, value in instrument.samples():
                record = dict(base, labels=list(labels), value=value)
                if isinstance(instrument, Gauge):
                    record["max"] = instrument.max_value(labels)
                records.append(record)
    return records


def write_jsonl(
    target: Union[str, TextIO],
    spans: Sequence[Span] = (),
    registry: Optional[MetricsRegistry] = None,
    append: bool = False,
) -> int:
    """Write a meta line, span rows and metric rows; returns row count."""
    rows: List[Dict[str, Any]] = [
        {"type": "meta", "captured_at": _captured_at(), "clock": "perf_counter"}
    ]
    rows.extend(span_records(spans))
    if registry is not None:
        rows.extend(metric_records(registry))
    if isinstance(target, str):
        with open(target, "a" if append else "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    else:
        for row in rows:
            target.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labelnames: Sequence[str], labels: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        '%s="%s"' % (name, _escape_label(str(value)))
        for name, value in zip(labelnames, labels)
    )
    return "{%s}" % pairs


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4."""
    out = io.StringIO()
    for instrument in registry.collect():
        if instrument.help_text:
            out.write("# HELP %s %s\n" % (instrument.name, instrument.help_text))
        out.write("# TYPE %s %s\n" % (instrument.name, instrument.kind))
        if isinstance(instrument, Histogram):
            names = tuple(instrument.labelnames)
            for labels, counts, total_sum, count in instrument.samples():
                cumulative = 0
                for bound, bucket_count in zip(instrument.buckets, counts):
                    cumulative += bucket_count
                    bucket_labels = _label_text(names + ("le",), tuple(labels) + (repr(bound),))
                    out.write("%s_bucket%s %d\n" % (instrument.name, bucket_labels, cumulative))
                cumulative += counts[-1]
                inf_labels = _label_text(names + ("le",), tuple(labels) + ("+Inf",))
                out.write("%s_bucket%s %d\n" % (instrument.name, inf_labels, cumulative))
                plain = _label_text(names, labels)
                out.write("%s_sum%s %s\n" % (instrument.name, plain, repr(total_sum)))
                out.write("%s_count%s %d\n" % (instrument.name, plain, count))
        else:
            for labels, value in instrument.samples():
                plain = _label_text(instrument.labelnames, labels)
                out.write("%s%s %s\n" % (instrument.name, plain, _format_value(value)))
    return out.getvalue()


def _span_rows(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [record for record in records if record.get("type") == "span"]


def propagation_from_records(records: Iterable[Dict[str, Any]]) -> float:
    """Propagation seconds as the engine's reports define them, derived
    purely from the trace: phase spans (minus ``find_target_nodes``,
    which batch reports exclude) + net-effects + shard-round walls.
    """
    total = 0.0
    for row in _span_rows(records):
        name = row["name"]
        if name not in PROPAGATION_SPAN_NAMES:
            continue
        if name == "phase" and row["attrs"].get("phase") == "find_target_nodes":
            continue
        total += row["seconds"]
    return total


def summarize(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate trace rows per view/phase, per phase, and per worker."""
    rows = _span_rows(records)
    views: Dict[str, Dict[str, Any]] = {}
    phases: Dict[str, Dict[str, Any]] = {}
    workers: Dict[str, Dict[str, Any]] = {}
    roots = 0
    for row in rows:
        if row.get("parent") is None:
            roots += 1
        attrs = row.get("attrs", {})
        seconds = row.get("seconds", 0.0)
        if row["name"] == "phase":
            phase = str(attrs.get("phase", "?"))
            view = str(attrs.get("view", "?"))
            view_bucket = views.setdefault(view, {})
            cell = view_bucket.setdefault(phase, {"seconds": 0.0, "spans": 0})
            cell["seconds"] += seconds
            cell["spans"] += 1
            total = phases.setdefault(phase, {"seconds": 0.0, "spans": 0})
            total["seconds"] += seconds
            total["spans"] += 1
        if "worker" in attrs:
            worker = str(attrs["worker"])
            cell = workers.setdefault(worker, {"seconds": 0.0, "spans": 0})
            if row["name"] in ("replica_apply", "unit"):
                cell["seconds"] += seconds
            cell["spans"] += 1
    return {
        "spans": len(rows),
        "roots": roots,
        "propagation_seconds": propagation_from_records(rows),
        "views": views,
        "phases": phases,
        "workers": workers,
    }


def _table(header: Sequence[str], body: Sequence[Sequence[str]]) -> List[str]:
    widths = [len(column) for column in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(header)).rstrip()]
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return lines


def render_summary(records: Iterable[Dict[str, Any]]) -> str:
    """Human-readable per-view/per-phase/per-worker summary table."""
    summary = summarize(records)
    lines: List[str] = [
        "spans: %d (%d roots)  propagation: %.3f ms"
        % (summary["spans"], summary["roots"], summary["propagation_seconds"] * 1e3)
    ]
    body = []
    for view in sorted(summary["views"]):
        for phase in sorted(summary["views"][view]):
            cell = summary["views"][view][phase]
            body.append([view, phase, "%.3f" % (cell["seconds"] * 1e3), str(cell["spans"])])
    if body:
        lines.append("")
        lines.extend(_table(["view", "phase", "ms", "spans"], body))
    body = [
        [phase, "%.3f" % (cell["seconds"] * 1e3), str(cell["spans"])]
        for phase, cell in sorted(summary["phases"].items())
    ]
    if body:
        lines.append("")
        lines.extend(_table(["phase", "ms", "spans"], body))
    body = [
        [worker, "%.3f" % (cell["seconds"] * 1e3), str(cell["spans"])]
        for worker, cell in sorted(summary["workers"].items())
    ]
    if body:
        lines.append("")
        lines.extend(_table(["worker", "ms", "spans"], body))
    return "\n".join(lines)
