"""``python -m repro.obs`` -- summarize a captured JSON-lines trace.

Examples::

    python -m repro.obs benchmarks/out/trace.jsonl
    python -m repro.obs benchmarks/out/trace.jsonl --format=json
    python -m repro.obs benchmarks/out/trace.jsonl --format=markdown
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.export import read_jsonl, render_summary, summarize

__all__ = ["main", "render_markdown"]


def render_markdown(records) -> str:
    """GitHub-flavoured markdown summary (used for step summaries)."""
    summary = summarize(records)
    lines: List[str] = [
        "**Trace**: %d spans, %d roots, %.3f ms propagation"
        % (summary["spans"], summary["roots"], summary["propagation_seconds"] * 1e3),
        "",
        "| view | phase | ms | spans |",
        "| --- | --- | ---: | ---: |",
    ]
    for view in sorted(summary["views"]):
        for phase in sorted(summary["views"][view]):
            cell = summary["views"][view][phase]
            lines.append(
                "| %s | %s | %.3f | %d |"
                % (view, phase, cell["seconds"] * 1e3, cell["spans"])
            )
    if summary["workers"]:
        lines.extend(["", "| worker | ms | spans |", "| --- | ---: | ---: |"])
        for worker, cell in sorted(summary["workers"].items()):
            lines.append(
                "| %s | %.3f | %d |" % (worker, cell["seconds"] * 1e3, cell["spans"])
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("trace", help="JSON-lines trace file written by repro.obs.export")
    parser.add_argument(
        "--format",
        choices=("table", "json", "markdown"),
        default="table",
        help="output format (default: table)",
    )
    args = parser.parse_args(argv)
    try:
        records = read_jsonl(args.trace)
    except OSError as error:
        print("cannot read %s: %s" % (args.trace, error), file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(summarize(records), indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(render_markdown(records))
    else:
        print(render_summary(records))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
