"""IVMA: node-at-a-time view maintenance [Sawires et al. 2005].

The closest competitor in the paper (Section 6.6) maintains XPath views
one node at a time: every inserted (or deleted) node triggers a
separate propagation call.  A statement inserting a five-node tree thus
costs five IVMA calls, versus one bulk PINT call -- the source of the
order-of-magnitude gap in Figure 28.

As in the paper, the re-implementation lives inside our own framework
(the original used a relational back-end): per-node propagation reuses
the same structural-join primitives, so the comparison isolates the
node-at-a-time vs. set-at-a-time difference rather than engine
constants.

Correctness contract: processing nodes in document order (insertions)
or reverse document order (deletions), each call counts exactly the
embeddings whose *newest* node is the one in hand, so each new/doomed
embedding is counted once overall.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Set

from repro.maintenance.delta import DeltaTables
from repro.maintenance.terms import Term, evaluate_term
from repro.pattern.evaluate import Sources, filter_by_predicate, project_bindings
from repro.pattern.tree_pattern import Pattern
from repro.views.view import MaterializedView
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Document, Node


class IVMAMaintainer:
    """Node-at-a-time maintenance of one materialized view."""

    def __init__(self, view: MaterializedView, document: Document):
        self.view = view
        self.document = document
        self.calls = 0

    # -- single-node propagation -----------------------------------------

    def _sources_visible(self, pattern: Pattern, hidden_ids: Set[DeweyID]) -> Sources:
        sources: Sources = {}
        for node in pattern.nodes():
            if node.label == "*":
                candidates: List[Node] = sorted(
                    self.document.all_elements(), key=lambda n: n.id
                )
            else:
                candidates = self.document.nodes_with_label(node.label)
            rows = filter_by_predicate(candidates, node)
            if hidden_ids:
                rows = [n for n in rows if n.id not in hidden_ids]
            sources[node.name] = rows
        return sources

    def _bindings_through(
        self, pattern: Pattern, node: Node, sources: Sources
    ) -> Dict[tuple, tuple]:
        """Embeddings using ``node`` at ≥ 1 pattern position (deduped)."""
        bindings: Dict[tuple, tuple] = {}
        for pnode in pattern.nodes():
            if not filter_by_predicate([node], pnode):
                continue
            deltas = DeltaTables(pattern, {pnode.name: [node]}, "+")
            term = Term(frozenset((pnode.name,)))
            relation = evaluate_term(pattern, term, sources, deltas, lattice=None)
            for row in relation.rows:
                key = tuple(cell.id for cell in row)
                bindings.setdefault(key, row)
        return bindings

    # -- statement-level drivers --------------------------------------------

    def propagate_insert_nodes(self, inserted_roots: Sequence[Node]) -> float:
        """One IVMA call per inserted node, in document order.

        ``inserted_roots`` are already applied to the document (with
        IDs); not-yet-processed nodes are hidden from the sources so
        each call sees exactly the prefix state.
        """
        pattern = self.view.pattern
        new_nodes: List[Node] = []
        for root in inserted_roots:
            new_nodes.extend(root.self_and_descendants())
        new_nodes.sort(key=lambda n: n.id)
        pending: Set[DeweyID] = {n.id for n in new_nodes}
        started = time.perf_counter()
        for node in new_nodes:
            pending.discard(node.id)
            self.calls += 1
            sources = self._sources_visible(pattern, hidden_ids=pending)
            bindings = self._bindings_through(pattern, node, sources)
            if not bindings:
                continue
            from repro.algebra.relation import Relation

            relation = Relation([n.name for n in pattern.nodes()], bindings.values())
            projected = project_bindings(pattern, relation)
            for row in projected.rows:
                self.view.add(row, 1)
        return time.perf_counter() - started

    def propagate_delete_nodes(self, doomed: Sequence[Node]) -> float:
        """One IVMA call per doomed node, in reverse document order.

        Runs *before* the document delete (sources still see the old
        state); already-processed nodes are hidden so each embedding is
        removed exactly once.
        """
        pattern = self.view.pattern
        nodes = sorted(doomed, key=lambda n: n.id, reverse=True)
        hidden: Set[DeweyID] = set()
        started = time.perf_counter()
        for node in nodes:
            self.calls += 1
            sources = self._sources_visible(pattern, hidden_ids=hidden)
            bindings = self._bindings_through(pattern, node, sources)
            hidden.add(node.id)
            if not bindings:
                continue
            from repro.algebra.relation import Relation

            relation = Relation([n.name for n in pattern.nodes()], bindings.values())
            projected = project_bindings(pattern, relation)
            for row in projected.rows:
                self.view.decrement(row, 1)
        return time.perf_counter() - started
