"""Comparison baselines for the experiments.

* :mod:`repro.baselines.recompute` -- evaluate the view from scratch on
  the updated document (Section 6.5's "Full" bars).
* :mod:`repro.baselines.ivma` -- a re-implementation of the IVMA
  node-at-a-time maintenance algorithm of [Sawires et al. 2005], which
  propagates one added/removed node per call (Section 6.6).
"""

from repro.baselines.recompute import full_recompute, recompute_after_update
from repro.baselines.ivma import IVMAMaintainer

__all__ = ["IVMAMaintainer", "full_recompute", "recompute_after_update"]
