"""Full view recomputation (the Section 6.5 baseline).

Incremental maintenance competes against simply re-evaluating the view
pattern over the updated document and rebuilding the extent and the
snowcap materializations from scratch.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.pattern.tree_pattern import Pattern
from repro.updates.language import UpdateStatement
from repro.updates.pul import apply_pul, compute_pul
from repro.views.lattice import SnowcapLattice
from repro.views.view import MaterializedView
from repro.xmldom.model import Document


def full_recompute(
    pattern: Pattern,
    document: Document,
    lattice: Optional[SnowcapLattice] = None,
    name: str = "view",
) -> Tuple[MaterializedView, float]:
    """Rebuild a view (and optionally its lattice); returns (view, secs)."""
    started = time.perf_counter()
    view = MaterializedView.materialize(pattern, document, name=name)
    if lattice is not None:
        lattice.materialize(document)
    return view, time.perf_counter() - started


def recompute_after_update(
    pattern: Pattern,
    document: Document,
    statement: UpdateStatement,
    rebuild_lattice: bool = False,
) -> Tuple[MaterializedView, float]:
    """Apply the update, then recompute; returns (view, recompute secs).

    The document update itself is excluded from the reported time, as
    in the paper (both approaches pay it identically).
    """
    pul = compute_pul(document, statement)
    apply_pul(document, pul)
    lattice = SnowcapLattice(pattern) if rebuild_lattice else None
    return full_recompute(pattern, document, lattice)
