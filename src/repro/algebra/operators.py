"""Logical operators: σ, π, ×, δ, sort (Section 2.2).

Predicates are small AST objects compiled against a relation schema, so
a predicate can be written once and applied to differently-shaped
intermediate results.  The three comparison operators of the paper's
algebra are supported: ``=`` (value equality against a constant or
between columns), ``≺`` (parent) and ``≺≺`` (ancestor), the latter two
on Dewey IDs.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.algebra.relation import Relation
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Node

RowTest = Callable[[tuple], bool]


def _cell_id(value: object) -> DeweyID:
    if isinstance(value, Node):
        return value.id
    if isinstance(value, DeweyID):
        return value
    raise TypeError("structural comparison needs a node or ID, got %r" % (value,))


def _cell_val(value: object) -> str:
    if isinstance(value, Node):
        return value.val
    return str(value)


class Predicate:
    """Base class of the predicate AST."""

    def compile(self, schema: Sequence[str]) -> RowTest:
        raise NotImplementedError


class ValueEquals(Predicate):
    """``σ_{col = c}``: the string value of a column equals a constant."""

    def __init__(self, column: str, constant: str):
        self.column = column
        self.constant = constant

    def compile(self, schema: Sequence[str]) -> RowTest:
        index = list(schema).index(self.column)
        constant = self.constant
        return lambda row: _cell_val(row[index]) == constant

    def __repr__(self) -> str:
        return "ValueEquals(%r, %r)" % (self.column, self.constant)


class ColumnComparison(Predicate):
    """``σ_{a θ b}`` with θ ∈ {=, ≺, ≺≺} between two columns."""

    OPS = ("=", "parent", "ancestor")

    def __init__(self, left: str, op: str, right: str):
        if op not in self.OPS:
            raise ValueError("unknown operator %r (want one of %r)" % (op, self.OPS))
        self.left = left
        self.op = op
        self.right = right

    def compile(self, schema: Sequence[str]) -> RowTest:
        columns = list(schema)
        li = columns.index(self.left)
        ri = columns.index(self.right)
        if self.op == "=":
            return lambda row: _cell_val(row[li]) == _cell_val(row[ri])
        if self.op == "parent":
            return lambda row: _cell_id(row[li]).is_parent_of(_cell_id(row[ri]))
        return lambda row: _cell_id(row[li]).is_ancestor_of(_cell_id(row[ri]))

    def __repr__(self) -> str:
        return "ColumnComparison(%r, %r, %r)" % (self.left, self.op, self.right)


class And(Predicate):
    """Conjunction of predicates (the only connective in the algebra)."""

    def __init__(self, parts: Iterable[Predicate]):
        self.parts = tuple(parts)

    def compile(self, schema: Sequence[str]) -> RowTest:
        tests = [part.compile(schema) for part in self.parts]
        return lambda row: all(test(row) for test in tests)

    def __repr__(self) -> str:
        return "And(%r)" % (self.parts,)


def select(relation: Relation, predicate: Predicate) -> Relation:
    """σ: keep the rows satisfying ``predicate``."""
    test = predicate.compile(relation.schema)
    return Relation(relation.schema, (row for row in relation.rows if test(row)))


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π: keep (and reorder to) ``columns``; duplicates are preserved."""
    indices = [relation.column_index(name) for name in columns]
    return Relation(columns, (tuple(row[i] for i in indices) for row in relation.rows))


def cartesian_product(*relations: Relation) -> Relation:
    """×: n-ary cartesian product; schemas must be disjoint."""
    if not relations:
        raise ValueError("cartesian_product needs at least one operand")
    schema: List[str] = []
    for relation in relations:
        for name in relation.schema:
            if name in schema:
                raise ValueError("duplicate column %r in product" % name)
            schema.append(name)
    rows: List[tuple] = [()]
    for relation in relations:
        rows = [prefix + row for prefix in rows for row in relation.rows]
    return Relation(schema, rows)


def duplicate_eliminate(relation: Relation) -> List[Tuple[tuple, int]]:
    """δ: distinct rows with their *derivation counts*.

    The count of a row is the number of input tuples that collapse onto
    it -- exactly the paper's notion (Section 2.2, "Derivation count").
    First-appearance order is preserved.
    """
    counts: Counter = Counter()
    order: List[tuple] = []
    for row in relation.rows:
        if row not in counts:
            order.append(row)
        counts[row] += 1
    return [(row, counts[row]) for row in order]


def _sort_key_cell(value: object):
    if isinstance(value, Node):
        return value.id
    return value


def sort_rows(relation: Relation, columns: Sequence[str] | None = None) -> Relation:
    """s: sort by the given columns (defaults to all, left to right).

    ID-valued (or node-valued) cells sort in document order; everything
    else sorts by its natural order.
    """
    names = relation.schema if columns is None else tuple(columns)
    indices = [relation.column_index(name) for name in names]
    ordered = sorted(
        relation.rows, key=lambda row: tuple(_sort_key_cell(row[i]) for i in indices)
    )
    return Relation(relation.schema, ordered)
