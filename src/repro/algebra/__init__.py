"""The logical algebra *A* of Section 2.2 and its physical operators.

The paper defines view semantics through an algebra over *virtual
canonical relations* ``R_a`` with operators:

* n-ary cartesian product ``×``
* selection ``σ_pred`` where predicates compare columns with constants
  (``=``) or with each other structurally (``≺`` parent, ``≺≺``
  ancestor)
* projection ``π``
* duplicate elimination ``δ`` (which yields *derivation counts*)
* sort ``s``
* joins, defined as selections over products, with dedicated physical
  *structural join* implementations [Al-Khalifa et al. 2002]

:mod:`repro.algebra.relation` provides the tuple container,
:mod:`repro.algebra.operators` the logical operators and
:mod:`repro.algebra.structural` the ID-based physical operators
(stack-based structural join, PathFilter, PathNavigate).
"""

from repro.algebra.relation import Relation
from repro.algebra.operators import (
    And,
    ColumnComparison,
    Predicate,
    ValueEquals,
    cartesian_product,
    duplicate_eliminate,
    project,
    select,
    sort_rows,
)
from repro.algebra.structural import (
    path_filter,
    path_navigate,
    structural_join,
    structural_semijoin,
)

__all__ = [
    "And",
    "ColumnComparison",
    "Predicate",
    "Relation",
    "ValueEquals",
    "cartesian_product",
    "duplicate_eliminate",
    "path_filter",
    "path_navigate",
    "project",
    "select",
    "sort_rows",
    "structural_join",
    "structural_semijoin",
]
