"""Named-column tuple relations.

A :class:`Relation` is an ordered list of equal-width tuples plus a
schema (tuple of column names).  The maintenance machinery uses two row
flavours:

* *binding relations*, whose cells are document nodes (one column per
  tree-pattern node, named after it);
* *value relations*, whose cells are plain values (IDs, strings),
  produced by projection with stored-attribute extraction.

Relations are deliberately dumb containers; all smarts live in the
operators (:mod:`repro.algebra.operators`,
:mod:`repro.algebra.structural`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple


class Relation:
    """An ordered bag of tuples with named columns."""

    __slots__ = ("schema", "rows", "_indexes")

    def __init__(self, schema: Sequence[str], rows: Iterable[tuple] = ()):
        self.schema: Tuple[str, ...] = tuple(schema)
        self.rows: List[tuple] = [tuple(row) for row in rows]
        self._indexes: dict = {}
        width = len(self.schema)
        for row in self.rows:
            if len(row) != width:
                raise ValueError(
                    "row width %d does not match schema %r" % (len(row), self.schema)
                )

    # -- schema helpers ------------------------------------------------

    def column_index(self, name: str) -> int:
        try:
            return self.schema.index(name)
        except ValueError:
            raise KeyError("no column %r in schema %r" % (name, self.schema)) from None

    def column(self, name: str) -> List[object]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def has_column(self, name: str) -> bool:
        return name in self.schema

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and self.schema == other.schema
            and self.rows == other.rows
        )

    def __repr__(self) -> str:
        return "Relation(schema=%r, rows=%d)" % (self.schema, len(self.rows))

    # -- convenience -----------------------------------------------------

    @classmethod
    def single_column(cls, name: str, values: Iterable[object]) -> "Relation":
        return cls((name,), [(value,) for value in values])

    def extend(self, other: "Relation") -> None:
        """Append the rows of a union-compatible relation."""
        if other.schema != self.schema:
            raise ValueError(
                "union-incompatible schemas: %r vs %r" % (self.schema, other.schema)
            )
        self.rows.extend(other.rows)
        self._indexes.clear()

    def replace_rows(self, rows: List[tuple]) -> None:
        """Swap the row list in place, invalidating cached indexes."""
        self.rows = rows
        self._indexes.clear()

    def index_by(self, column: str) -> dict:
        """A cached hash index ``node ID -> rows`` on one column.

        Materialized relations (snowcaps) are probed repeatedly by the
        structural join; the index plays the role of the B-tree a
        disk-resident store would keep.  Invalidated by :meth:`extend`
        and :meth:`replace_rows`; reordering rows does not invalidate
        it (the mapping targets row tuples, not positions).
        """
        index = self._indexes.get(column)
        if index is None:
            from repro.xmldom.dewey import DeweyID
            from repro.xmldom.model import Node

            position = self.column_index(column)
            index = {}
            for row in self.rows:
                cell = row[position]
                key = cell.id if isinstance(cell, Node) else cell
                index.setdefault(key, []).append(row)
            self._indexes[column] = index
        return index

    def reordered(self, schema: Sequence[str]) -> "Relation":
        """The same bag with columns rearranged to ``schema``."""
        schema = tuple(schema)
        if schema == self.schema:
            return self  # column order already matches; skip the row copy
        indices = [self.column_index(name) for name in schema]
        return Relation(schema, [tuple(row[i] for i in indices) for row in self.rows])
