"""Physical ID-based operators: structural joins, PathFilter, PathNavigate.

The paper's Section 3.4 assumes three physical primitives from the
underlying XML engine, all of which exploit Compact Dynamic Dewey IDs:

* **structural join** [Al-Khalifa et al. 2002]: join two inputs on a
  parent (``≺``) or ancestor (``≺≺``) condition between ID columns;
* **PathFilter**: check whether a node (by ID alone) lies on a path
  satisfying a label condition;
* **PathNavigate**: obtain from node IDs the IDs of their parents.

Two structural-join implementations are provided:

:func:`structural_join`
    the workhorse, used by pattern evaluation and term evaluation.  It
    exploits Dewey property (2): the ancestors of a node are readable
    off its own ID, so the join is a hash lookup per candidate ancestor
    prefix -- no sorting or stack needed.

:func:`stack_tree_pairs`
    the classic sort-merge Stack-Tree-Desc algorithm, kept as an
    independently-tested reference implementation (it is also the
    natural choice for stores whose IDs are start/end intervals rather
    than Dewey paths).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.algebra.relation import Relation
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Node


def _row_id(row: tuple, index: int) -> DeweyID:
    cell = row[index]
    if isinstance(cell, Node):
        return cell.id
    if isinstance(cell, DeweyID):
        return cell
    raise TypeError("structural join column holds %r, need node or ID" % (cell,))


def structural_join(
    left: Relation,
    right: Relation,
    left_column: str,
    right_column: str,
    axis: str = "ancestor",
) -> Relation:
    """Join rows where ``left_column`` ≺ / ≺≺ ``right_column``.

    ``axis`` is ``"parent"`` (≺) or ``"ancestor"`` (≺≺).  The output
    schema is the concatenation of both schemas; output order follows
    the right input (then the left input within one right row).
    """
    if axis not in ("parent", "ancestor"):
        raise ValueError("axis must be 'parent' or 'ancestor', got %r" % (axis,))
    right_index = right.column_index(right_column)
    by_id = left.index_by(left_column)
    schema = left.schema + right.schema
    out: List[tuple] = []
    for row in right.rows:
        node_id = _row_id(row, right_index)
        if axis == "parent":
            parent = node_id.parent()
            candidates = [parent] if parent is not None else []
        else:
            candidates = list(node_id.ancestor_ids())
        for ancestor_id in candidates:
            for left_row in by_id.get(ancestor_id, ()):
                out.append(left_row + row)
    return Relation(schema, out)


def structural_semijoin(
    left: Relation,
    right: Relation,
    left_column: str,
    right_column: str,
    axis: str = "ancestor",
) -> Relation:
    """Right rows having at least one structural match on the left."""
    left_index = left.column_index(left_column)
    right_index = right.column_index(right_column)
    ids = {_row_id(row, left_index) for row in left.rows}
    out: List[tuple] = []
    for row in right.rows:
        node_id = _row_id(row, right_index)
        if axis == "parent":
            parent = node_id.parent()
            if parent is not None and parent in ids:
                out.append(row)
        else:
            if any(ancestor in ids for ancestor in node_id.ancestor_ids()):
                out.append(row)
    return Relation(right.schema, out)


def stack_tree_pairs(
    ancestors: Sequence[Node],
    descendants: Sequence[Node],
    axis: str = "ancestor",
) -> List[Tuple[Node, Node]]:
    """Classic Stack-Tree-Desc merge join over document-ordered inputs.

    Both inputs must be sorted in document order (canonical relations
    are).  Returns (ancestor, descendant) pairs sorted by descendant.
    """
    if axis not in ("parent", "ancestor"):
        raise ValueError("axis must be 'parent' or 'ancestor', got %r" % (axis,))
    out: List[Tuple[Node, Node]] = []
    stack: List[Node] = []
    a_iter = iter(ancestors)
    a = next(a_iter, None)
    for d in descendants:
        d_id = d.id
        # Bring every ancestor-stream node preceding d onto the stack.
        # Popped entries can never match later descendants: once the
        # stream has moved past a node's subtree, it never re-enters it.
        while a is not None and a.id < d_id:
            while stack and not stack[-1].id.is_ancestor_of(a.id):
                stack.pop()
            stack.append(a)
            a = next(a_iter, None)
        # Now the stack's ancestor chain is pruned to d's ancestors.
        while stack and not stack[-1].id.is_ancestor_of(d_id):
            stack.pop()
        for entry in stack:
            if axis == "ancestor" or entry.id.is_parent_of(d_id):
                out.append((entry, d))
    return out


def path_navigate(ids: Iterable[DeweyID]) -> List[DeweyID]:
    """PathNavigate: the parent ID of each input ID (root yields nothing)."""
    out: List[DeweyID] = []
    for node_id in ids:
        parent = node_id.parent()
        if parent is not None:
            out.append(parent)
    return out


def path_filter(
    ids: Iterable[DeweyID],
    required_ancestor_label: str,
    include_self: bool = False,
) -> List[DeweyID]:
    """PathFilter: keep IDs lying under an ancestor with the given label.

    This is the primitive behind the ID-driven prunings (Props. 3.8 and
    4.7): whether a node has an ancestor labeled ``l`` is decided from
    its ID alone.  ``include_self`` additionally accepts nodes that
    themselves carry the label.  A ``"*"`` label accepts everything.
    """
    out: List[DeweyID] = []
    for node_id in ids:
        if required_ancestor_label == "*":
            out.append(node_id)
        elif include_self and node_id.label == required_ancestor_label:
            out.append(node_id)
        elif node_id.has_ancestor_labeled(required_ancestor_label):
            out.append(node_id)
    return out
