"""Embedding-based tree-pattern semantics (the correctness oracle).

The customary semantics of tree patterns [Amer-Yahia et al. 2002]
defines the result through *embeddings*: mappings from pattern nodes to
document nodes preserving labels, value predicates and edge axes.  The
derivation count of a view tuple is the number of distinct embeddings
projecting onto it.

This evaluator is implemented independently of the algebraic one
(:mod:`repro.pattern.evaluate`) -- top-down recursive matching with
memoization instead of structural joins -- so the two can cross-check
each other in tests and so maintenance results have a ground truth:
``maintain(v, u) == embeddings(v, apply(u, d))`` must always hold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.relation import Relation
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.xmldom.model import Document, ElementNode, Node


def _matches(pnode: PatternNode, node: Node) -> bool:
    if pnode.label == "*":
        if not isinstance(node, ElementNode):
            return False
    elif node.label != pnode.label:
        return False
    if pnode.value_pred is not None and node.val != pnode.value_pred:
        return False
    return True


def _candidates(pnode: PatternNode, context: ElementNode) -> List[Node]:
    if pnode.axis == "child":
        return [child for child in context.children if _matches(pnode, child)]
    return [node for node in context.descendants() if _matches(pnode, node)]


def _match_subtree(
    pnode: PatternNode,
    node: Node,
    memo: Dict[Tuple[int, Node], List[tuple]],
) -> List[tuple]:
    """All embeddings of the pattern subtree rooted at ``pnode`` mapping
    ``pnode`` to ``node``; rows follow the subtree's preorder columns."""
    key = (id(pnode), node)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if not pnode.children:
        result = [(node,)]
        memo[key] = result
        return result
    per_child: List[List[tuple]] = []
    for child in pnode.children:
        rows: List[tuple] = []
        if isinstance(node, ElementNode):
            for candidate in _candidates(child, node):
                rows.extend(_match_subtree(child, candidate, memo))
        if not rows:
            memo[key] = []
            return []
        per_child.append(rows)
    combined: List[tuple] = [(node,)]
    for rows in per_child:
        combined = [prefix + row for prefix in combined for row in rows]
    memo[key] = combined
    return combined


def evaluate_embeddings(pattern: Pattern, document: Document) -> Relation:
    """The binding relation computed by embedding enumeration."""
    root = pattern.root
    memo: Dict[Tuple[int, Node], List[tuple]] = {}
    if root.axis == "child":
        roots: List[Node] = [document.root] if _matches(root, document.root) else []
    else:
        roots = [
            node
            for node in document.root.self_and_descendants()
            if _matches(root, node)
        ]
        roots.sort(key=lambda n: n.id)
    rows: List[tuple] = []
    for start in roots:
        rows.extend(_match_subtree(root, start, memo))
    schema = [node.name for node in pattern.nodes()]
    relation = Relation(schema, rows)
    relation.rows.sort(key=lambda row: tuple(cell.id for cell in row))
    return relation
