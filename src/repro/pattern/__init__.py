"""Tree patterns (the paper's dialect *P*) and the view/update languages.

* :mod:`repro.pattern.tree_pattern` -- pattern nodes with ``/`` and
  ``//`` edges, ``*`` wildcards, ``[val = c]`` predicates and the
  ``ID`` / ``val`` / ``cont`` stored-attribute annotations of Section 2.2.
* :mod:`repro.pattern.xpath_parser` -- XPath``{/,//,*,[]}`` with
  ``and`` / ``or`` filters; used for update targets (Section 2.3) and,
  in its conjunctive fragment, convertible to tree patterns.
* :mod:`repro.pattern.xquery` -- the conjunctive XQuery view dialect of
  Figure 3, translated to annotated tree patterns (after
  [Arion et al. 2006]).
* :mod:`repro.pattern.evaluate` -- algebraic evaluation via structural
  joins over per-node source relations (the form reused verbatim for
  maintenance term evaluation).
* :mod:`repro.pattern.embedding` -- the classical embedding-based
  semantics, used as a correctness oracle.
"""

from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.pattern.xpath_parser import (
    PathExpr,
    XPathSyntaxError,
    evaluate_path,
    parse_xpath,
    path_to_pattern,
)
from repro.pattern.xquery import XQuerySyntaxError, parse_view
from repro.pattern.evaluate import (
    evaluate_bindings,
    evaluate_view,
    sources_from_document,
    view_columns,
)
from repro.pattern.embedding import evaluate_embeddings

__all__ = [
    "Pattern",
    "PatternNode",
    "PathExpr",
    "XPathSyntaxError",
    "XQuerySyntaxError",
    "evaluate_bindings",
    "evaluate_embeddings",
    "evaluate_path",
    "evaluate_view",
    "parse_view",
    "parse_xpath",
    "path_to_pattern",
    "sources_from_document",
    "view_columns",
]
