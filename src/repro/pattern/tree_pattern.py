"""The tree-pattern dialect *P* (Section 2.2).

A pattern is a rooted tree whose nodes carry:

* a *label* (an element/attribute name, or ``*``);
* an *axis* connecting the node to its parent: ``child`` (``/``) or
  ``desc`` (``//``); the root's axis relates it to the document root;
* an optional value predicate ``[val = c]``;
* stored-attribute annotations: any subset of ``ID``, ``val``, ``cont``.

The *algebraic semantics* of a pattern (Figure 4) is::

    s(δ(π(σ(R_a1 × ... × R_ak))))

where the σ carries value predicates and the ≺/≺≺ constraints of the
edges, π keeps the annotated attributes, δ eliminates duplicates while
producing derivation counts and s sorts by binding IDs.  Evaluators live
in :mod:`repro.pattern.evaluate` / :mod:`repro.pattern.embedding`.

Pattern nodes have stable unique *names* (``label#k`` by declaration
order) used as relation column names throughout the system.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

ANNOTATIONS = ("ID", "val", "cont")


class PatternNode:
    """One node of a tree pattern."""

    __slots__ = (
        "label",
        "axis",
        "value_pred",
        "store_id",
        "store_val",
        "store_cont",
        "children",
        "parent",
        "name",
    )

    def __init__(
        self,
        label: str,
        axis: str = "child",
        value_pred: Optional[str] = None,
        store_id: bool = False,
        store_val: bool = False,
        store_cont: bool = False,
    ):
        if axis not in ("child", "desc"):
            raise ValueError("axis must be 'child' or 'desc', got %r" % (axis,))
        self.label = label
        self.axis = axis
        self.value_pred = value_pred
        self.store_id = store_id
        self.store_val = store_val
        self.store_cont = store_cont
        self.children: List["PatternNode"] = []
        self.parent: Optional["PatternNode"] = None
        self.name: str = ""  # assigned by Pattern

    def add_child(self, child: "PatternNode") -> "PatternNode":
        child.parent = self
        self.children.append(child)
        return child

    @property
    def annotations(self) -> Tuple[str, ...]:
        out = []
        if self.store_id:
            out.append("ID")
        if self.store_val:
            out.append("val")
        if self.store_cont:
            out.append("cont")
        return tuple(out)

    @property
    def stores_value_or_content(self) -> bool:
        """Is this a *cvn* node in the sense of Algorithms 4 / 6?"""
        return self.store_val or self.store_cont

    def matches_label(self, label: str) -> bool:
        return self.label == "*" or self.label == label

    def __repr__(self) -> str:
        return "PatternNode(%s)" % (self.name or self.label,)


class Pattern:
    """A rooted tree pattern with named nodes."""

    def __init__(self, root: PatternNode):
        self.root = root
        self._assign_names()

    def _assign_names(self) -> None:
        counts: Dict[str, int] = {}
        self._by_name: Dict[str, PatternNode] = {}
        for node in self.nodes():
            counts[node.label] = counts.get(node.label, 0) + 1
            node.name = "%s#%d" % (node.label, counts[node.label])
            self._by_name[node.name] = node

    # -- traversal --------------------------------------------------------

    def nodes(self) -> List[PatternNode]:
        """All nodes in preorder (document order of declaration)."""
        out: List[PatternNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def node(self, name: str) -> PatternNode:
        return self._by_name[name]

    def node_names(self) -> List[str]:
        return [node.name for node in self.nodes()]

    def __len__(self) -> int:
        return len(self.nodes())

    def edges(self) -> List[Tuple[PatternNode, PatternNode]]:
        """(parent, child) pairs in preorder of the child."""
        return [(node.parent, node) for node in self.nodes() if node.parent is not None]

    def parent_of(self, name: str) -> Optional[str]:
        parent = self.node(name).parent
        return parent.name if parent is not None else None

    def labels(self) -> List[str]:
        return [node.label for node in self.nodes()]

    # -- stored attributes --------------------------------------------------

    def return_columns(self) -> List[Tuple[str, str]]:
        """``(node name, annotation)`` pairs, preorder, ID < val < cont."""
        out: List[Tuple[str, str]] = []
        for node in self.nodes():
            for annotation in node.annotations:
                out.append((node.name, annotation))
        return out

    def content_nodes(self) -> List[PatternNode]:
        """The *cvn* set: nodes annotated with val or cont."""
        return [node for node in self.nodes() if node.stores_value_or_content]

    def validate_for_maintenance(self) -> None:
        """PIMT/PDMT require every val/cont node to also store its ID."""
        for node in self.content_nodes():
            if not node.store_id:
                raise ValueError(
                    "node %s stores val/cont but not ID; "
                    "tuple modification algorithms need the ID" % node.name
                )

    # -- sub-patterns (for the lattice, Section 3.5) -------------------------

    def subpattern(self, names: FrozenSet[str]) -> "Pattern":
        """The induced sub-pattern on an ancestor-closed node subset.

        ``names`` must contain, with every node, its pattern parent
        (this holds for all snowcaps, the only sub-patterns the
        maintenance algorithms materialize, so original edges and axes
        are preserved exactly).
        """
        if self.root.name not in names:
            raise ValueError("a sub-pattern must contain the root")
        for name in names:
            parent = self.parent_of(name)
            if parent is not None and parent not in names:
                raise ValueError(
                    "subset %r is not ancestor-closed (%s lacks its parent %s)"
                    % (sorted(names), name, parent)
                )

        def clone(node: PatternNode) -> PatternNode:
            copy = PatternNode(
                node.label,
                axis=node.axis,
                value_pred=node.value_pred,
                store_id=node.store_id,
                store_val=node.store_val,
                store_cont=node.store_cont,
            )
            for child in node.children:
                if child.name in names:
                    copy.add_child(clone(child))
            return copy

        sub = Pattern(clone(self.root))
        # Preserve the original node names so relations line up; both
        # trees enumerate the kept nodes in the same preorder.
        for node, original_name in zip(sub.nodes(), self._names_in_preorder(names)):
            node.name = original_name
        sub._by_name = {node.name: node for node in sub.nodes()}
        return sub

    def _names_in_preorder(self, names: FrozenSet[str]) -> List[str]:
        return [node.name for node in self.nodes() if node.name in names]

    # -- variants -------------------------------------------------------------

    def with_annotations(
        self, annotations: Dict[str, Sequence[str]], keep_existing: bool = False
    ) -> "Pattern":
        """A copy with stored attributes replaced per node name.

        Used by the Figure 24 experiment, which compares otherwise
        identical views differing only in where val/cont is stored.
        """
        copy = self.subpattern(frozenset(self.node_names()))
        for node in copy.nodes():
            wanted = annotations.get(node.name)
            if wanted is None:
                if not keep_existing:
                    node.store_id = node.store_val = node.store_cont = False
                continue
            node.store_id = "ID" in wanted
            node.store_val = "val" in wanted
            node.store_cont = "cont" in wanted
        return copy

    # -- display ---------------------------------------------------------------

    def to_string(self) -> str:
        """A compact XPath-like rendering with annotation subscripts."""

        def render(node: PatternNode) -> str:
            step = "/" if node.axis == "child" else "//"
            text = step + node.label
            if node.annotations:
                text += "{%s}" % ",".join(node.annotations)
            if node.value_pred is not None:
                text += "[val=%s]" % node.value_pred
            if node.children:
                inner = "".join("[%s]" % render(child) for child in node.children[:-1])
                text += inner + render(node.children[-1])
            return text

        return render(self.root)

    def __repr__(self) -> str:
        return "Pattern(%s)" % self.to_string()


def pattern_from_spec(spec: Sequence) -> Pattern:
    """Build a pattern from a nested-tuple spec (testing convenience).

    Spec: ``(label, axis, options_dict, [child_spec, ...])`` where the
    dict may carry ``pred``, ``id``, ``val``, ``cont``.
    """

    def build(item: Sequence) -> PatternNode:
        label, axis, options, children = item
        node = PatternNode(
            label,
            axis=axis,
            value_pred=options.get("pred"),
            store_id=bool(options.get("id")),
            store_val=bool(options.get("val")),
            store_cont=bool(options.get("cont")),
        )
        for child in children:
            node.add_child(build(child))
        return node

    return Pattern(build(spec))
