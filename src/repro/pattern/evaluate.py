"""Algebraic evaluation of tree patterns over per-node source relations.

This module realizes the pattern semantics of Figure 4::

    s(δ(π(σ(R_a1 × R_a2 × ... × R_ak))))

as a chain of *structural joins* (never a raw product), exactly the
evaluation strategy the maintenance algorithms reuse: term evaluation in
ET-INS / ET-DEL calls :func:`evaluate_bindings` with some sources bound
to canonical relations ``R`` and others to Δ tables.

Sources are plain document-ordered node lists per pattern-node name.
Value predicates (σ) are applied when sources are drawn
(:func:`sources_from_document`), mirroring the paper's
``σ_a(R_a ∪ Δ+_a)`` selection push-down; σ-constant selections over
named labels resolve through the document's value index
(:meth:`~repro.xmldom.model.Document.nodes_with_value`) rather than
scanning and re-deriving ``val`` for the whole canonical relation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.operators import duplicate_eliminate, project, sort_rows
from repro.algebra.relation import Relation
from repro.algebra.structural import structural_join
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.xmldom.model import Document, ElementNode, Node

Sources = Dict[str, List[Node]]


def _node_source(document: Document, node: PatternNode) -> List[Node]:
    if node.label == "*":
        if node.value_pred is not None:
            # Wildcard σ-constant selection: the all-labels value index,
            # not an all_elements() scan.
            return document.nodes_with_value("*", node.value_pred)
        return sorted(document.all_elements(), key=lambda n: n.id)
    if node.value_pred is not None:
        # σ-constant selection: an index lookup, not a relation scan.
        return document.nodes_with_value(node.label, node.value_pred)
    return list(document.nodes_with_label(node.label))


def filter_by_predicate(nodes: Sequence[Node], node: PatternNode) -> List[Node]:
    """σ: keep nodes matching the pattern node's label and value predicate."""
    out = []
    for candidate in nodes:
        if not node.matches_label(candidate.label):
            continue
        if node.label == "*" and not isinstance(candidate, ElementNode):
            continue
        if node.value_pred is not None and candidate.val != node.value_pred:
            continue
        out.append(candidate)
    return out


def sources_from_document(pattern: Pattern, document: Document) -> Sources:
    """Canonical-relation sources (σ applied) for every pattern node."""
    return {node.name: _node_source(document, node) for node in pattern.nodes()}


def evaluate_bindings(
    pattern: Pattern,
    document: Optional[Document] = None,
    sources: Optional[Sources] = None,
    require_root_at_document_root: bool = True,
) -> Relation:
    """The binding relation: one column per pattern node, one row per
    embedding of the pattern into the (virtual) source relations.

    Either a document or explicit per-node ``sources`` must be given.
    A ``child``-axis pattern root anchors at the document root
    (matching absolute paths like ``/site/...``); pass
    ``require_root_at_document_root=False`` for patterns evaluated
    against free forests (e.g. extraction from inserted subtrees).
    """
    if sources is None:
        if document is None:
            raise ValueError("need a document or explicit sources")
        sources = sources_from_document(pattern, document)
    nodes = pattern.nodes()
    root = nodes[0]
    root_nodes = sources[root.name]
    if root.axis == "child" and require_root_at_document_root:
        root_nodes = [n for n in root_nodes if n.id.depth == 1]
    relation = Relation.single_column(root.name, root_nodes)
    for parent, child in pattern.edges():
        axis = "parent" if child.axis == "child" else "ancestor"
        right = Relation.single_column(child.name, sources[child.name])
        relation = structural_join(relation, right, parent.name, child.name, axis)
    # Restore preorder column order and sort by all binding IDs.
    relation = relation.reordered([node.name for node in nodes])
    return sort_rows(relation)


ViewTuple = tuple
ViewContent = List[Tuple[ViewTuple, int]]


def view_columns(pattern: Pattern) -> List[str]:
    """Column names of the view output, e.g. ``person#1.ID``."""
    return ["%s.%s" % (name, attr) for name, attr in pattern.return_columns()]


def _extract(node: Node, attr: str):
    if attr == "ID":
        return node.id
    if attr == "val":
        return node.val
    if attr == "cont":
        return node.cont
    raise ValueError("unknown stored attribute %r" % attr)


def project_bindings(pattern: Pattern, bindings: Relation) -> Relation:
    """π: stored-attribute extraction over a binding relation."""
    columns = pattern.return_columns()
    schema = view_columns(pattern)
    indices = [bindings.column_index(name) for name, _ in columns]
    rows = [
        tuple(_extract(row[i], attr) for i, (_, attr) in zip(indices, columns))
        for row in bindings.rows
    ]
    return Relation(schema, rows)


def evaluate_view(
    pattern: Pattern,
    document: Optional[Document] = None,
    sources: Optional[Sources] = None,
) -> ViewContent:
    """Full view semantics ``s(δ(π(σ(...))))``.

    Returns distinct view tuples with their derivation counts, sorted
    by the binding IDs (the paper's output order).
    """
    bindings = evaluate_bindings(pattern, document=document, sources=sources)
    projected = project_bindings(pattern, bindings)
    return duplicate_eliminate(projected)
