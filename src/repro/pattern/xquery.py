"""The conjunctive XQuery view dialect of Figure 3.

Views are written in the paper's ``let/for/where/return`` fragment::

    let $c := doc("auction.xml") return
    for $b in $c/site/people/person, $n in $b/name
    where string($n) = "Martin"
    return <res><who>{id($b)}</who><name>{string($n)}</name></res>

and are translated into annotated tree patterns (dialect *P*), following
[Arion et al. 2006]:

* every ``for`` variable contributes the steps of its binding path as
  pattern nodes; the variable denotes the path's final node;
* ``where string($x) = "c"`` becomes the value predicate ``[val=c]`` on
  ``$x``'s node;
* return items map to stored attributes: ``id($x)`` → ``ID``,
  ``string($x)`` → ``val``, ``$x`` (or ``$x/p``) → ``cont``; paths in
  return items add fresh pattern branches;
* per the requirement of Algorithms 4/6 (PIMT/PDMT), nodes storing
  ``val`` or ``cont`` also store their ``ID``.

Besides the element-constructor ``return``, a bare comma-separated
return list (``return $i/name/text(), $i/description``, as the XMark
queries are written in Appendix A.6) is accepted.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.pattern.xpath_parser import (
    FilterExpr,
    PathExpr,
    XPathSyntaxError,
    _filter_to_branches,
    _graft_path,
    parse_xpath,
)


class XQuerySyntaxError(ValueError):
    pass


class ReturnItem:
    """One returned information item: node + which attribute + wrapper."""

    __slots__ = ("node_name", "kind", "wrapper")

    def __init__(self, node_name: str, kind: str, wrapper: Optional[str] = None):
        if kind not in ("ID", "val", "cont"):
            raise ValueError("return item kind must be ID/val/cont, got %r" % kind)
        self.node_name = node_name
        self.kind = kind
        self.wrapper = wrapper

    def __repr__(self) -> str:
        return "ReturnItem(%s.%s as <%s>)" % (self.node_name, self.kind, self.wrapper)


class ViewDefinition:
    """A parsed view: its tree pattern plus the return-clause shape."""

    def __init__(
        self,
        pattern: Pattern,
        items: List[ReturnItem],
        uri: str,
        result_label: Optional[str],
        source: str,
    ):
        self.pattern = pattern
        self.items = items
        self.uri = uri
        self.result_label = result_label
        self.source = source

    def __repr__(self) -> str:
        return "ViewDefinition(%s)" % self.pattern.to_string()


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<var>\$[A-Za-z_][\w]*)
  | (?P<assign>:=)
  | (?P<markup><[^>]*>)
  | (?P<punct>[(){},=])
  | (?P<path>[/@*]+[\w./@*\[\]='"\s-]*?(?=\s+(?:where|return|and)\b|,|\{|\}|$))
  | (?P<word>[\w.-]+(?:\(\))?)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise XQuerySyntaxError("cannot tokenize at %r" % text[pos:pos + 30])
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


class _Parser:
    """Recursive-descent parser over a lightweight token scan.

    Rather than a full token grammar, the parser carves the query into
    its clause skeleton with regular expressions (the dialect is
    line-oriented and conjunctive), then reuses the XPath parser for
    every embedded path.
    """

    def __init__(self, text: str):
        self.text = text.strip()

    def parse(self) -> ViewDefinition:
        text = self.text
        uri = "doc.xml"
        # --- optional let clause -------------------------------------
        let_match = re.match(
            r"let\s+(\$[\w]+)\s*:=\s*doc\(\s*[\"']([^\"']*)[\"']\s*\)\s*return\s+",
            text,
        )
        doc_vars: List[str] = []
        if let_match:
            doc_vars.append(let_match.group(1))
            uri = let_match.group(2)
            text = text[let_match.end():]
        # --- for clause -----------------------------------------------
        if not text.startswith("for"):
            raise XQuerySyntaxError("expected a for clause in %r" % self.text)
        where_pos = self._clause_position(text, "where")
        return_pos = self._clause_position(text, "return")
        if return_pos is None:
            raise XQuerySyntaxError("missing return clause in %r" % self.text)
        for_text = text[3:where_pos if where_pos is not None else return_pos]
        where_text = (
            text[where_pos + 5:return_pos] if where_pos is not None else None
        )
        return_text = text[return_pos + 6:].strip()

        variables: Dict[str, PatternNode] = {}
        root_holder: List[Pattern] = []
        root_node: Optional[PatternNode] = None

        for binding in self._split_top_level(for_text, ","):
            binding = binding.strip()
            match = re.match(r"(\$[\w]+)\s+in\s+(.*)$", binding, re.DOTALL)
            if match is None:
                raise XQuerySyntaxError("bad for binding %r" % binding)
            var, source = match.group(1), match.group(2).strip()
            doc_match = re.match(r"doc\(\s*[\"']([^\"']*)[\"']\s*\)(.*)$", source, re.DOTALL)
            if doc_match:
                uri = doc_match.group(1)
                path = parse_xpath(doc_match.group(2).strip())
                root_node = self._anchor_absolute(path, root_node, variables, var)
                continue
            var_match = re.match(r"(\$[\w]+)\s*(.*)$", source, re.DOTALL)
            if var_match:
                base_var, rest = var_match.group(1), var_match.group(2).strip()
                if base_var in doc_vars:
                    path = parse_xpath(rest)
                    root_node = self._anchor_absolute(path, root_node, variables, var)
                    continue
                if base_var not in variables:
                    raise XQuerySyntaxError(
                        "variable %s used before declaration" % base_var
                    )
                path = parse_xpath(rest)
                end = _graft_path(path, variables[base_var], value_pred=None)
                variables[var] = end
                continue
            raise XQuerySyntaxError("bad for source %r" % source)

        if root_node is None:
            raise XQuerySyntaxError("no absolute variable declared")

        # --- where clause -----------------------------------------------
        if where_text is not None:
            for condition in self._split_top_level(where_text, " and "):
                self._apply_where(condition.strip(), variables)

        # --- return clause -----------------------------------------------
        items, result_label = self._parse_return(return_text, variables)

        pattern = Pattern(root_node)
        for node in pattern.nodes():
            if node.stores_value_or_content:
                node.store_id = True
        return ViewDefinition(pattern, items, uri, result_label, self.text)

    # -- clause helpers --------------------------------------------------

    @staticmethod
    def _clause_position(text: str, keyword: str) -> Optional[int]:
        """Offset of a top-level clause keyword (not inside quotes/braces)."""
        depth = 0
        in_quote: Optional[str] = None
        for index in range(len(text)):
            char = text[index]
            if in_quote is not None:
                if char == in_quote:
                    in_quote = None
                continue
            if char in "'\"":
                in_quote = char
            elif char in "{<":
                depth += 1
            elif char in "}>":
                depth = max(0, depth - 1)
            elif depth == 0 and text.startswith(keyword, index):
                before_ok = index == 0 or not text[index - 1].isalnum()
                after = index + len(keyword)
                after_ok = after >= len(text) or not text[after].isalnum()
                if before_ok and after_ok:
                    return index
        return None

    @staticmethod
    def _split_top_level(text: str, separator: str) -> List[str]:
        parts: List[str] = []
        depth = 0
        in_quote: Optional[str] = None
        start = 0
        index = 0
        while index < len(text):
            char = text[index]
            if in_quote is not None:
                if char == in_quote:
                    in_quote = None
                index += 1
                continue
            if char in "'\"":
                in_quote = char
            elif char in "([{":
                depth += 1
            elif char in ")]}":
                depth -= 1
            elif depth == 0 and text.startswith(separator, index):
                parts.append(text[start:index])
                index += len(separator)
                start = index
                continue
            index += 1
        parts.append(text[start:])
        return [part for part in parts if part.strip()]

    def _anchor_absolute(
        self,
        path: PathExpr,
        root_node: Optional[PatternNode],
        variables: Dict[str, PatternNode],
        var: str,
    ) -> PatternNode:
        """Install an absolute variable's path, merging on the root step."""
        first = path.steps[0]
        if root_node is None:
            root_node = PatternNode(first.test, axis=first.axis)
            for predicate in first.predicates:
                _filter_to_branches(predicate, root_node)
        else:
            if root_node.label != first.test or root_node.axis != first.axis:
                raise XQuerySyntaxError(
                    "absolute variables must share their first step "
                    "(%r vs %r)" % (root_node.label, first.test)
                )
            for predicate in first.predicates:
                _filter_to_branches(predicate, root_node)
        node = root_node
        for step in path.steps[1:]:
            child = PatternNode(step.test, axis=step.axis)
            node.add_child(child)
            node = child
            for predicate in step.predicates:
                _filter_to_branches(predicate, node)
        variables[var] = node
        return root_node

    def _apply_where(self, condition: str, variables: Dict[str, PatternNode]) -> None:
        # string($x) = "c"
        match = re.match(
            r"string\(\s*(\$[\w]+)\s*\)\s*=\s*[\"']([^\"']*)[\"']\s*$", condition
        )
        if match:
            var, constant = match.group(1), match.group(2)
            self._require(var, variables).value_pred = constant
            return
        # $x/path/text() = "c"  or  $x/path = "c"  or  $x = "c"
        match = re.match(
            r"(\$[\w]+)\s*(/.*?)?\s*=\s*[\"']([^\"']*)[\"']\s*$", condition, re.DOTALL
        )
        if match:
            var, raw_path, constant = match.groups()
            node = self._require(var, variables)
            if raw_path is None or raw_path.strip() in ("", "/text()"):
                node.value_pred = constant
                return
            raw_path = raw_path.strip()
            if raw_path.endswith("/text()"):
                raw_path = raw_path[: -len("/text()")]
            end = _graft_path(parse_xpath(raw_path), node, value_pred=constant)
            assert end is not None
            return
        # bare existence: $x/path  (e.g. "where $b/homepage")
        match = re.match(r"(\$[\w]+)\s*(/.*)$", condition, re.DOTALL)
        if match:
            var, raw_path = match.group(1), match.group(2).strip()
            _graft_path(parse_xpath(raw_path), self._require(var, variables), None)
            return
        raise XQuerySyntaxError("unsupported where condition %r" % condition)

    @staticmethod
    def _require(var: str, variables: Dict[str, PatternNode]) -> PatternNode:
        if var not in variables:
            raise XQuerySyntaxError("unknown variable %s" % var)
        return variables[var]

    # -- return clause ------------------------------------------------------

    def _parse_return(
        self, text: str, variables: Dict[str, PatternNode]
    ) -> Tuple[List[ReturnItem], Optional[str]]:
        text = text.strip()
        if text.startswith("<"):
            return self._parse_constructor(text, variables)
        items: List[ReturnItem] = []
        for chunk in self._split_top_level(text, ","):
            items.append(self._parse_item(chunk.strip(), variables, wrapper=None))
        return items, None

    def _parse_constructor(
        self, text: str, variables: Dict[str, PatternNode]
    ) -> Tuple[List[ReturnItem], Optional[str]]:
        root_match = re.match(r"<\s*([\w.-]+)\s*>", text)
        if root_match is None:
            raise XQuerySyntaxError("bad element constructor %r" % text)
        result_label = root_match.group(1)
        items: List[ReturnItem] = []
        # Find each <li>{ expr }</li> child (or a bare { expr }).
        for match in re.finditer(
            r"<\s*([\w.-]+)\s*>\s*\{([^{}]*)\}\s*</\s*\1\s*>|\{([^{}]*)\}", text
        ):
            wrapper = match.group(1)
            expr = match.group(2) if match.group(2) is not None else match.group(3)
            if wrapper == result_label:
                wrapper = None
            items.append(self._parse_item(expr.strip(), variables, wrapper=wrapper))
        if not items:
            raise XQuerySyntaxError("return constructor holds no items: %r" % text)
        return items, result_label

    def _parse_item(
        self, expr: str, variables: Dict[str, PatternNode], wrapper: Optional[str]
    ) -> ReturnItem:
        match = re.match(r"id\(\s*(\$[\w]+)\s*\)$", expr)
        if match:
            node = self._require(match.group(1), variables)
            node.store_id = True
            return ReturnItem(self._name_later(node), "ID", wrapper)
        match = re.match(r"string\(\s*(\$[\w]+)\s*\)$", expr)
        if match:
            node = self._require(match.group(1), variables)
            node.store_val = True
            return ReturnItem(self._name_later(node), "val", wrapper)
        match = re.match(r"(\$[\w]+)\s*(/.*)?$", expr, re.DOTALL)
        if match:
            var, raw_path = match.group(1), match.group(2)
            node = self._require(var, variables)
            if raw_path is not None and raw_path.strip():
                raw_path = raw_path.strip()
                kind = "cont"
                if raw_path.endswith("/text()"):
                    raw_path = raw_path[: -len("/text()")]
                    kind = "val"
                if raw_path:
                    node = _graft_path(parse_xpath(raw_path), node, value_pred=None)
                if kind == "val":
                    node.store_val = True
                else:
                    node.store_cont = True
                return ReturnItem(self._name_later(node), kind, wrapper)
            node.store_cont = True
            return ReturnItem(self._name_later(node), "cont", wrapper)
        raise XQuerySyntaxError("unsupported return item %r" % expr)

    @staticmethod
    def _name_later(node: PatternNode) -> str:
        # Names are assigned when the Pattern is built; stash the node
        # object and resolve by identity afterwards.
        return node  # type: ignore[return-value]


def parse_view(text: str) -> ViewDefinition:
    """Parse a view definition in the Figure 3 dialect."""
    parser = _Parser(text)
    definition = parser.parse()
    # Resolve deferred node references in return items to final names.
    for item in definition.items:
        if isinstance(item.node_name, PatternNode):
            item.node_name = item.node_name.name
    return definition
