"""XPath``{/,//,*,[]}`` parser and evaluator.

This is the path language *XP* of Section 2 used (a) inside view
definitions and (b) as the target language of updates, where the
XPathMark-derived test set (Appendix A) additionally exercises ``and`` /
``or`` / parenthesised filter combinations -- all supported here.

Grammar (no reverse axes, no functions except ``text()``):

    path      := ('/' | '//') step (('/' | '//') step)*
                 | step (('/' | '//') step)*            (relative)
    step      := nametest predicate*
    nametest  := NAME | '*' | '@' NAME | 'text()'
    predicate := '[' orexpr ']'
    orexpr    := andexpr ('or' andexpr)*
    andexpr   := atom ('and' atom)*
    atom      := '(' orexpr ')' | relpath ('=' literal)?
                 | literal '=' relpath

A predicate path without comparison is an existence test.  Comparisons
follow the paper's ``string(x) = c`` semantics: *some* node reached by
the path has string value equal to the literal.

The conjunctive, or-free fragment converts to a tree pattern via
:func:`path_to_pattern` (used when updates/views are fed to the
algebraic machinery); arbitrary filters are evaluated directly against
a document via :func:`evaluate_path` (the paper delegates this job to
Saxon -- finding target nodes -- which we replace here).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.xmldom.model import AttributeNode, Document, ElementNode, Node, TextNode


class XPathSyntaxError(ValueError):
    pass


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Step:
    """One location step: an axis, a name test and predicates."""

    __slots__ = ("axis", "test", "predicates")

    def __init__(self, axis: str, test: str, predicates: Sequence["FilterExpr"] = ()):
        self.axis = axis  # 'child' | 'desc'
        self.test = test  # label, '*', '@name' or 'text()'
        self.predicates = list(predicates)

    def __repr__(self) -> str:
        sep = "/" if self.axis == "child" else "//"
        preds = "".join("[%r]" % p for p in self.predicates)
        return "%s%s%s" % (sep, self.test, preds)


class FilterExpr:
    """Base class of predicate expressions."""

    def evaluate(self, node: Node) -> bool:
        raise NotImplementedError

    def is_conjunctive(self) -> bool:
        raise NotImplementedError


class ExistsFilter(FilterExpr):
    """``[p]``: the relative path has at least one match."""

    def __init__(self, path: "PathExpr"):
        self.path = path

    def evaluate(self, node: Node) -> bool:
        return any(True for _ in self.path.match_from(node))

    def is_conjunctive(self) -> bool:
        return all(
            pred.is_conjunctive() for step in self.path.steps for pred in step.predicates
        )

    def __repr__(self) -> str:
        return "Exists(%r)" % (self.path,)


class ValueFilter(FilterExpr):
    """``[p = 'c']``: some node reached by ``p`` has string value c.

    An empty relative path (``[. = 'c']`` is not in the grammar, but
    ``string($x) = c`` from the view language maps here) compares the
    context node itself.
    """

    def __init__(self, path: Optional["PathExpr"], constant: str):
        self.path = path
        self.constant = constant

    def evaluate(self, node: Node) -> bool:
        if self.path is None:
            return node.val == self.constant
        return any(match.val == self.constant for match in self.path.match_from(node))

    def is_conjunctive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "Value(%r = %r)" % (self.path, self.constant)


class AndFilter(FilterExpr):
    def __init__(self, parts: Sequence[FilterExpr]):
        self.parts = list(parts)

    def evaluate(self, node: Node) -> bool:
        return all(part.evaluate(node) for part in self.parts)

    def is_conjunctive(self) -> bool:
        return all(part.is_conjunctive() for part in self.parts)

    def __repr__(self) -> str:
        return "And(%r)" % (self.parts,)


class OrFilter(FilterExpr):
    def __init__(self, parts: Sequence[FilterExpr]):
        self.parts = list(parts)

    def evaluate(self, node: Node) -> bool:
        return any(part.evaluate(node) for part in self.parts)

    def is_conjunctive(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "Or(%r)" % (self.parts,)


class PathExpr:
    """A parsed path: absolute (anchored at the document root) or relative."""

    def __init__(self, steps: Sequence[Step], absolute: bool):
        if not steps:
            raise XPathSyntaxError("empty path")
        self.steps = list(steps)
        self.absolute = absolute

    # -- evaluation ---------------------------------------------------------

    def _step_matches(self, step: Step, context: Node) -> Iterator[Node]:
        """Nodes reachable from ``context`` through one step."""
        if not isinstance(context, ElementNode):
            return
        if step.axis == "child":
            candidates: Iterator[Node] = iter(context.children)
        else:
            candidates = context.descendants()
        for node in candidates:
            if _test_matches(step.test, node) and all(
                pred.evaluate(node) for pred in step.predicates
            ):
                yield node

    def match_from(self, context: Node) -> Iterator[Node]:
        """All nodes reached from ``context`` (relative semantics)."""
        frontier: List[Node] = [context]
        for step in self.steps:
            seen = set()
            next_frontier: List[Node] = []
            for node in frontier:
                for match in self._step_matches(step, node):
                    if match.id not in seen:
                        seen.add(match.id)
                        next_frontier.append(match)
            next_frontier.sort(key=lambda n: n.id)
            frontier = next_frontier
            if not frontier:
                break
        return iter(frontier)

    def evaluate(self, document: Document) -> List[Node]:
        """Absolute evaluation: target nodes in document order."""
        first, rest = self.steps[0], self.steps[1:]
        roots: List[Node] = []
        root = document.root
        if first.axis == "child":
            if _test_matches(first.test, root) and all(
                pred.evaluate(root) for pred in first.predicates
            ):
                roots.append(root)
        else:
            for node in [root, *root.descendants()]:
                if _test_matches(first.test, node) and all(
                    pred.evaluate(node) for pred in first.predicates
                ):
                    roots.append(node)
        if not rest:
            return roots
        tail = PathExpr(rest, absolute=False)
        out: List[Node] = []
        seen = set()
        for start in roots:
            for match in tail.match_from(start):
                if match.id not in seen:
                    seen.add(match.id)
                    out.append(match)
        out.sort(key=lambda n: n.id)
        return out

    # -- properties ------------------------------------------------------------

    def is_conjunctive(self) -> bool:
        return all(pred.is_conjunctive() for step in self.steps for pred in step.predicates)

    def __repr__(self) -> str:
        return "".join(repr(step) for step in self.steps)


def _test_matches(test: str, node: Node) -> bool:
    if test == "*":
        return isinstance(node, ElementNode)
    if test == "text()":
        return isinstance(node, TextNode)
    if test.startswith("@"):
        return isinstance(node, AttributeNode) and node.label == test
    return isinstance(node, ElementNode) and node.label == test


# ---------------------------------------------------------------------------
# Tokenizer / parser
# ---------------------------------------------------------------------------

_PUNCT = ("//", "/", "[", "]", "(", ")", "=", "@")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char in " \t\r\n":
            index += 1
            continue
        if text.startswith("//", index):
            tokens.append("//")
            index += 2
            continue
        if char in "/[]()=@":
            tokens.append(char)
            index += 1
            continue
        if char in "'\"":
            end = text.find(char, index + 1)
            if end == -1:
                raise XPathSyntaxError("unterminated literal in %r" % text)
            tokens.append("'" + text[index + 1:end])
            index = end + 1
            continue
        if char == "*":
            tokens.append("*")
            index += 1
            continue
        start = index
        while index < length and (text[index].isalnum() or text[index] in "._-"):
            index += 1
        if index == start:
            raise XPathSyntaxError("unexpected character %r in %r" % (char, text))
        name = text[start:index]
        if text.startswith("()", index) and name == "text":
            tokens.append("text()")
            index += 2
        else:
            tokens.append(name)
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[str], source: str):
        self.tokens = tokens
        self.source = source
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise XPathSyntaxError("unexpected end of %r" % self.source)
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise XPathSyntaxError("expected %r, got %r in %r" % (token, got, self.source))


def _parse_nametest(stream: _TokenStream) -> str:
    token = stream.next()
    if token == "@":
        return "@" + stream.next()
    if token in ("*", "text()"):
        return token
    if token in _PUNCT or token.startswith("'"):
        raise XPathSyntaxError("expected a name test, got %r in %r" % (token, stream.source))
    return token


def _parse_steps(stream: _TokenStream, first_axis: str) -> List[Step]:
    steps: List[Step] = []
    axis = first_axis
    while True:
        test = _parse_nametest(stream)
        predicates: List[FilterExpr] = []
        while stream.peek() == "[":
            stream.next()
            predicates.append(_parse_or(stream))
            stream.expect("]")
        steps.append(Step(axis, test, predicates))
        token = stream.peek()
        if token == "/":
            stream.next()
            axis = "child"
        elif token == "//":
            stream.next()
            axis = "desc"
        else:
            return steps


def _parse_relative_path(stream: _TokenStream) -> "PathExpr":
    token = stream.peek()
    if token == "/":
        stream.next()
        return PathExpr(_parse_steps(stream, "child"), absolute=False)
    if token == "//":
        stream.next()
        return PathExpr(_parse_steps(stream, "desc"), absolute=False)
    return PathExpr(_parse_steps(stream, "child"), absolute=False)


def _parse_atom(stream: _TokenStream) -> FilterExpr:
    token = stream.peek()
    if token == "(":
        stream.next()
        inner = _parse_or(stream)
        stream.expect(")")
        return inner
    if token is not None and token.startswith("'"):
        literal = stream.next()[1:]
        stream.expect("=")
        path = _parse_relative_path(stream)
        return ValueFilter(path, literal)
    path = _parse_relative_path(stream)
    if stream.peek() == "=":
        stream.next()
        literal_token = stream.next()
        if not literal_token.startswith("'"):
            raise XPathSyntaxError(
                "comparison against non-literal %r in %r" % (literal_token, stream.source)
            )
        return ValueFilter(path, literal_token[1:])
    return ExistsFilter(path)


def _parse_and(stream: _TokenStream) -> FilterExpr:
    parts = [_parse_atom(stream)]
    while stream.peek() == "and":
        stream.next()
        parts.append(_parse_atom(stream))
    return parts[0] if len(parts) == 1 else AndFilter(parts)


def _parse_or(stream: _TokenStream) -> FilterExpr:
    parts = [_parse_and(stream)]
    while stream.peek() == "or":
        stream.next()
        parts.append(_parse_and(stream))
    return parts[0] if len(parts) == 1 else OrFilter(parts)


def parse_xpath(text: str) -> PathExpr:
    """Parse an absolute or relative XPath``{/,//,*,[]}`` expression."""
    stream = _TokenStream(_tokenize(text), text)
    token = stream.peek()
    if token == "/":
        stream.next()
        path = PathExpr(_parse_steps(stream, "child"), absolute=True)
    elif token == "//":
        stream.next()
        path = PathExpr(_parse_steps(stream, "desc"), absolute=True)
    else:
        path = PathExpr(_parse_steps(stream, "child"), absolute=False)
    if stream.peek() is not None:
        raise XPathSyntaxError("trailing tokens in %r" % text)
    return path


def evaluate_path(path: Union[str, PathExpr], document: Document) -> List[Node]:
    """Find the target nodes of a path in document order."""
    if isinstance(path, str):
        path = parse_xpath(path)
    return path.evaluate(document)


# ---------------------------------------------------------------------------
# Conversion to tree patterns (conjunctive fragment)
# ---------------------------------------------------------------------------


def _filter_to_branches(expr: FilterExpr, parent: PatternNode) -> None:
    if isinstance(expr, AndFilter):
        for part in expr.parts:
            _filter_to_branches(part, parent)
        return
    if isinstance(expr, ExistsFilter):
        _graft_path(expr.path, parent, value_pred=None)
        return
    if isinstance(expr, ValueFilter):
        if expr.path is None:
            parent.value_pred = expr.constant
        else:
            _graft_path(expr.path, parent, value_pred=expr.constant)
        return
    raise XPathSyntaxError(
        "disjunctive predicate %r cannot become a conjunctive tree pattern" % (expr,)
    )


def _graft_path(
    path: PathExpr, parent: PatternNode, value_pred: Optional[str]
) -> PatternNode:
    node = parent
    for position, step in enumerate(path.steps):
        test = step.test
        if test == "text()":
            # string comparison against the parent's value
            if value_pred is not None and position == len(path.steps) - 1:
                node.value_pred = value_pred
                return node
            raise XPathSyntaxError("text() steps only make sense in comparisons")
        child = PatternNode(test, axis=step.axis)
        node.add_child(child)
        node = child
        for predicate in step.predicates:
            _filter_to_branches(predicate, node)
    if value_pred is not None:
        node.value_pred = value_pred
    return node


def path_to_pattern(path: Union[str, PathExpr], annotate_last: Sequence[str] = ("ID",)) -> Pattern:
    """Convert a conjunctive path to a tree pattern.

    The final step's node receives the ``annotate_last`` stored
    attributes (default: ``ID``); predicate sub-paths become unannotated
    branches.  Raises on disjunctive filters.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    if not path.is_conjunctive():
        raise XPathSyntaxError("path %r is not conjunctive" % (path,))
    first = path.steps[0]
    root = PatternNode(first.test, axis=first.axis)
    for predicate in first.predicates:
        _filter_to_branches(predicate, root)
    node = root
    for step in path.steps[1:]:
        child = PatternNode(step.test, axis=step.axis)
        node.add_child(child)
        node = child
        for predicate in step.predicates:
            _filter_to_branches(predicate, node)
    node.store_id = "ID" in annotate_last
    node.store_val = "val" in annotate_last
    node.store_cont = "cont" in annotate_last
    return Pattern(root)
