"""Materialized view contents with derivation counts.

A view tuple is the projection of one or more pattern embeddings onto
the stored attributes; its *derivation count* (Section 2.2, after
[Gupta et al. 1993]) is the number of embeddings producing it.
Counts are what make deletions incremental: a tuple leaves the view
only when its count reaches zero (Example 4.8).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.pattern.evaluate import evaluate_view, view_columns
from repro.pattern.tree_pattern import Pattern
from repro.views.store import DELETED, OrderedTupleStore
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Document

ViewTuple = tuple


def row_sort_key(row: ViewTuple) -> tuple:
    """C-comparable key ordering view tuples exactly like plain tuple
    comparison (DeweyID cells order by their precomputed sort_key)."""
    return tuple(
        cell.sort_key if isinstance(cell, DeweyID) else cell for cell in row
    )


class MaterializedView:
    """The stored extent of a tree-pattern view."""

    def __init__(self, pattern: Pattern, name: str = "view", store_factory=None):
        pattern.validate_for_maintenance()
        self.pattern = pattern
        self.name = name
        self.columns: List[str] = view_columns(pattern)
        # C-comparable ordering keys keep the hot store bisects off
        # DeweyID's Python-level rich comparisons.  ``store_factory``
        # swaps in another implementation of the same contract (the
        # durable sqlite-backed store orders by key blobs instead).
        if store_factory is None:
            self._store = OrderedTupleStore(order_key=row_sort_key)
        else:
            self._store = store_factory(order_key=row_sort_key)

    # -- construction ------------------------------------------------------

    @classmethod
    def materialize(
        cls,
        pattern: Pattern,
        document: Document,
        name: str = "view",
        store_factory=None,
    ) -> "MaterializedView":
        """Evaluate the pattern on the document and store the result."""
        view = cls(pattern, name=name, store_factory=store_factory)
        content = evaluate_view(pattern, document)
        # Distinct rows sorted by key: bulk-load in one pass instead of
        # O(n²) per-row sorted inserts.
        view._store.load_sorted(
            sorted(content, key=lambda item: row_sort_key(item[0]))
        )
        return view

    @classmethod
    def from_pairs(
        cls,
        pattern: Pattern,
        pairs: Iterable[Tuple[ViewTuple, int]],
        name: str = "view",
        store_factory=None,
    ) -> "MaterializedView":
        """Load an extent from precomputed ``(row, count)`` pairs.

        The sharded-recompute path evaluates the view inside a worker
        and ships the pairs back as a fragment; this rebuilds the owner
        extent without re-evaluating the pattern."""
        view = cls(pattern, name=name, store_factory=store_factory)
        view._store.load_sorted(sorted(pairs, key=lambda item: row_sort_key(item[0])))
        return view

    def reload_content(self, pairs: Iterable[Tuple[ViewTuple, int]]) -> None:
        """Replace the whole extent content *in the existing store*.

        Recompute fallbacks and shard resyncs historically swapped the
        ``_store`` object wholesale; a content-level reload keeps the
        store's identity (and, for durable stores, its binding to the
        backing table) intact."""
        self._store.load_sorted(sorted(pairs, key=lambda item: row_sort_key(item[0])))

    # -- reads ----------------------------------------------------------------

    def count(self, row: ViewTuple) -> int:
        return self._store.get(row, 0)

    def __contains__(self, row: ViewTuple) -> bool:
        return row in self._store

    def __len__(self) -> int:
        """Number of distinct tuples."""
        return len(self._store)

    def total_derivations(self) -> int:
        return sum(count for _, count in self._store.items())

    def content(self) -> List[Tuple[ViewTuple, int]]:
        """Distinct tuples with counts, in key (document) order.

        A snapshot: safe to iterate while mutating the view (PIMT/PDMT
        rewrite tuples mid-scan).
        """
        return self._store.snapshot()

    def rows(self) -> List[ViewTuple]:
        return self._store.keys()

    # -- writes (used by the maintenance algorithms) -----------------------------

    def add(self, row: ViewTuple, count: int = 1) -> None:
        """Add ``count`` derivations of ``row`` (insert if absent)."""
        if count <= 0:
            raise ValueError("add needs a positive count, got %d" % count)
        self._store.put(row, self._store.get(row, 0) + count)

    def decrement(self, row: ViewTuple, count: int = 1) -> bool:
        """Remove ``count`` derivations; drop the tuple at zero.

        Returns True when the tuple left the view.  Decrementing a
        missing tuple is an error: maintenance must never remove what
        was never derived.
        """
        current = self._store.get(row)
        if current is None:
            raise KeyError("tuple %r is not in view %s" % (row, self.name))
        remaining = current - count
        if remaining < 0:
            raise ValueError(
                "tuple %r has %d derivations, cannot remove %d" % (row, current, count)
            )
        if remaining == 0:
            self._store.delete(row)
            return True
        self._store.put(row, remaining)
        return False

    def remove(self, row: ViewTuple) -> None:
        """Drop a tuple outright regardless of its count."""
        if not self._store.delete(row):
            raise KeyError("tuple %r is not in view %s" % (row, self.name))

    def apply_batch_delta(
        self,
        additions: Dict[ViewTuple, int],
        removals: Dict[ViewTuple, int],
    ) -> Tuple[int, int, int]:
        """Apply a batch's merged Δ+ / Δ− in one store pass.

        ``additions`` maps tuples to fresh derivations, ``removals`` to
        doomed ones; tuples in both are adjusted by the net, so a
        derivation removed and re-derived within one batch never
        transits through an absent state.  Returns ``(derivations
        added, tuples removed, derivations removed)``.  Like
        :meth:`decrement`, removing underivable tuples is an error.
        """
        delta: Dict[ViewTuple, int] = dict(additions)
        for row, count in removals.items():
            delta[row] = delta.get(row, 0) - count
        changes = []
        tuples_removed = 0
        for row in sorted(delta, key=row_sort_key):
            shift = delta[row]
            if shift == 0:
                continue
            current = self._store.get(row)
            if current is None:
                if shift < 0:
                    raise KeyError("tuple %r is not in view %s" % (row, self.name))
                changes.append((row, shift))
                continue
            remaining = current + shift
            if remaining < 0:
                raise ValueError(
                    "tuple %r has %d derivations, cannot remove %d"
                    % (row, current, -shift)
                )
            if remaining == 0:
                changes.append((row, DELETED))
                tuples_removed += 1
            else:
                changes.append((row, remaining))
        self._store.bulk_apply(changes)
        return (
            sum(additions.values()),
            tuples_removed,
            sum(removals.values()),
        )

    def replace(self, old_row: ViewTuple, new_row: ViewTuple) -> None:
        """Rewrite a tuple in place (PIMT/PDMT val-cont refresh)."""
        count = self._store.get(old_row)
        if count is None:
            raise KeyError("tuple %r is not in view %s" % (old_row, self.name))
        self._store.delete(old_row)
        self._store.put(new_row, self._store.get(new_row, 0) + count)

    # -- verification ----------------------------------------------------------

    def equals_fresh_evaluation(self, document: Document) -> bool:
        """Does the stored extent match re-evaluation from scratch?"""
        fresh = sorted(evaluate_view(self.pattern, document), key=lambda item: item[0])
        return fresh == self.content()

    def diff_against_fresh(self, document: Document) -> Dict[str, List]:
        """Difference against recomputation, for debugging/tests."""
        fresh = dict(evaluate_view(self.pattern, document))
        stored = dict(self.content())
        missing = [(row, count) for row, count in fresh.items() if stored.get(row) != count]
        spurious = [(row, count) for row, count in stored.items() if row not in fresh]
        return {"wrong_or_missing": missing, "spurious": spurious}

    def __repr__(self) -> str:
        return "MaterializedView(%s, %d tuples)" % (self.name, len(self))
