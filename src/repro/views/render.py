"""Render materialized view contents back to XML.

The view language's ``return`` clause (Figure 3) wraps each tuple of
bindings in a constructed element; a materialized view plus its parsed
:class:`~repro.pattern.xquery.ViewDefinition` therefore determines an
XML serialization of the view extent -- the form a client consuming the
view would actually receive.

IDs render through their compact string form; ``cont`` items are
spliced in as markup (they are serialized subtrees); ``val`` items are
escaped text.
"""

from __future__ import annotations

from typing import List, Optional

from repro.pattern.evaluate import view_columns
from repro.pattern.xquery import ViewDefinition
from repro.views.view import MaterializedView
from repro.xmldom.serializer import escape_text


def render_tuple(definition: ViewDefinition, row: tuple) -> str:
    """One result element for one view tuple."""
    pattern = definition.pattern
    columns = view_columns(pattern)
    index_of = {column: position for position, column in enumerate(columns)}
    parts: List[str] = []
    for item in definition.items:
        column = "%s.%s" % (item.node_name, item.kind)
        cell = row[index_of[column]]
        if item.kind == "ID":
            body = escape_text(str(cell))
        elif item.kind == "val":
            body = escape_text(str(cell))
        else:  # cont: already-serialized markup
            body = str(cell)
        if item.wrapper is not None:
            parts.append("<%s>%s</%s>" % (item.wrapper, body, item.wrapper))
        else:
            parts.append(body)
    label = definition.result_label
    if label is None:
        return "".join(parts)
    return "<%s>%s</%s>" % (label, "".join(parts), label)


def render_view(
    definition: ViewDefinition,
    view: MaterializedView,
    root_label: Optional[str] = "results",
    expand_duplicates: bool = True,
) -> str:
    """The whole extent as one XML document string.

    ``expand_duplicates`` repeats a tuple once per derivation (bag
    semantics, matching what re-running the defining query would
    print); with ``False`` each distinct tuple appears once.
    """
    body: List[str] = []
    for row, count in view.content():
        repetitions = count if expand_duplicates else 1
        rendered = render_tuple(definition, row)
        body.extend([rendered] * repetitions)
    inner = "".join(body)
    if root_label is None:
        return inner
    return "<%s>%s</%s>" % (root_label, inner, root_label)
