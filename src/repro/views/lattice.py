"""The sub-pattern lattice and its snowcaps (Section 3.5).

The lattice of a view ``v`` is an AND-OR DAG over the sub-tree patterns
of ``v``: a pattern-labeled node per connected sub-pattern, an or-node
above each sub-pattern reachable in several ways, and a join node per
way of assembling a sub-pattern from two smaller ones (Figure 6).

A **snowcap** (Definition 3.11) is a sub-pattern containing, with every
node, its parent -- i.e., a prefix-closed subtree hanging from the view
root ("snow covers mountains from the top downward").  Prop. 3.12 shows
snowcaps are exactly the R-parts of insertion terms that survive
update-semantics pruning, hence the only sub-patterns worth
materializing.

Two materialization strategies are implemented, matching Section 6.7:

* ``"snowcaps"`` -- materialize one snowcap per size (a nested chain,
  "picking the first at each level" like the paper), plus the leaves
  which the document's canonical relations already provide;
* ``"leaves"`` -- materialize nothing; R-parts are recomputed on the
  fly from canonical relations at maintenance time.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algebra.relation import Relation
from repro.pattern.evaluate import Sources, evaluate_bindings
from repro.pattern.tree_pattern import Pattern
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Document, Node

NodeSet = FrozenSet[str]


def _parent_map(pattern: Pattern) -> Dict[str, Optional[str]]:
    return {node.name: pattern.parent_of(node.name) for node in pattern.nodes()}


def enumerate_snowcaps(pattern: Pattern, include_full: bool = False) -> List[NodeSet]:
    """All snowcaps of the pattern, smallest first.

    Excludes the full pattern by default (it is the view itself, not an
    auxiliary structure).
    """
    parents = _parent_map(pattern)
    names = pattern.node_names()
    out: List[NodeSet] = []
    for size in range(1, len(names) + (1 if include_full else 0)):
        for subset in combinations(names, size):
            chosen = frozenset(subset)
            if all(parents[name] is None or parents[name] in chosen for name in chosen):
                out.append(chosen)
    return out


def enumerate_subpatterns(pattern: Pattern) -> List[NodeSet]:
    """All lattice pattern-nodes: subsets inducing a single sub-tree.

    A subset induces a tree iff exactly one of its members has no
    proper pattern-ancestor inside the subset (e.g. in Figure 6,
    ``{b, c}`` is a lattice node but ``{c, d}`` is not).
    """
    nodes = pattern.nodes()
    ancestors: Dict[str, Set[str]] = {}
    for node in nodes:
        chain: Set[str] = set()
        walk = node.parent
        while walk is not None:
            chain.add(walk.name)
            walk = walk.parent
        ancestors[node.name] = chain
    names = [node.name for node in nodes]
    out: List[NodeSet] = []
    for size in range(1, len(names) + 1):
        for subset in combinations(names, size):
            chosen = frozenset(subset)
            minimal = [name for name in subset if not (ancestors[name] & chosen)]
            if len(minimal) != 1:
                continue
            out.append(chosen)
    return out


def join_decompositions(pattern: Pattern, subset: NodeSet) -> List[Tuple[NodeSet, NodeSet]]:
    """Ways of computing a lattice node as a join of two smaller ones.

    Returns pairs ``(upper, lower)`` partitioning ``subset`` such that
    both parts are lattice nodes and the lower part's root attaches
    (by the v-ancestor relation) below some node of the upper part --
    the join edges drawn in Figures 6 and 7.
    """
    valid = set(enumerate_subpatterns(pattern))
    ancestors: Dict[str, Set[str]] = {}
    for node in pattern.nodes():
        chain: Set[str] = set()
        walk = node.parent
        while walk is not None:
            chain.add(walk.name)
            walk = walk.parent
        ancestors[node.name] = chain
    out: List[Tuple[NodeSet, NodeSet]] = []
    members = sorted(subset)
    for size in range(1, len(members)):
        for lower_tuple in combinations(members, size):
            lower = frozenset(lower_tuple)
            upper = subset - lower
            if lower not in valid or upper not in valid:
                continue
            lower_roots = [name for name in lower_tuple if not (ancestors[name] & lower)]
            root = lower_roots[0]
            if ancestors[root] & upper:
                out.append((upper, lower))
    return out


def snowcap_chain(
    pattern: Pattern, update_profile: Optional[Sequence[str]] = None
) -> List[NodeSet]:
    """A nested chain of snowcaps, one per size ``1..k-1``.

    Without a profile the chain is the preorder-prefix chain (the
    paper's "pick the first snowcap at each level").  With an *update
    profile* -- labels the workload is expected to insert/delete, the
    cost-based selection knob discussed at the end of Section 3.5 --
    the chain is built by peeling current leaves whose label is in the
    profile first: the resulting chain then contains the complements of
    the likely Δ-sets, i.e., exactly the R-parts of the union terms the
    expected updates will evaluate.
    """
    names = pattern.node_names()  # preorder: parents precede children
    if not update_profile:
        return [frozenset(names[:size]) for size in range(1, len(names))]
    profile = set(update_profile)
    children: Dict[str, List[str]] = {name: [] for name in names}
    for parent, child in pattern.edges():
        children[parent.name].append(child.name)
    remaining = set(names)

    def current_leaves() -> List[str]:
        return [
            name
            for name in names
            if name in remaining
            and not any(child in remaining for child in children[name])
        ]

    removal_order: List[str] = []
    while len(remaining) > 1:
        leaves = current_leaves()
        labeled = [
            name
            for name in leaves
            if pattern.node(name).label in profile or "*" in profile
        ]
        # Peel profile-labeled leaves first (their subtrees are the
        # likely Δ-sets), later-preorder leaves first within a class.
        pick = (labeled or leaves)[-1]
        removal_order.append(pick)
        remaining.discard(pick)
    chain: List[NodeSet] = []
    kept = set(names)
    for name in removal_order:
        kept.discard(name)
        chain.append(frozenset(kept))
    chain.sort(key=len)
    return chain


class SnowcapLattice:
    """Materialized auxiliary structures for one view."""

    def __init__(
        self,
        pattern: Pattern,
        strategy: str = "snowcaps",
        update_profile: Optional[Sequence[str]] = None,
    ):
        if strategy not in ("snowcaps", "leaves"):
            raise ValueError("strategy must be 'snowcaps' or 'leaves', got %r" % strategy)
        self.pattern = pattern
        self.strategy = strategy
        self.update_profile = list(update_profile) if update_profile else None
        self.selected: List[NodeSet] = (
            snowcap_chain(pattern, self.update_profile) if strategy == "snowcaps" else []
        )
        self._materialized: Dict[NodeSet, Relation] = {}

    # -- materialization ------------------------------------------------------

    def materialize(self, document: Document) -> None:
        """Evaluate and store every selected snowcap's binding relation."""
        self._materialized.clear()
        for subset in self.selected:
            sub = self.pattern.subpattern(subset)
            self._materialized[subset] = evaluate_bindings(sub, document)

    def relation_for(self, subset: NodeSet) -> Optional[Relation]:
        """The stored binding relation of a snowcap, if materialized."""
        return self._materialized.get(subset)

    def load_materialized(self, subset: NodeSet, relation: Relation) -> None:
        """Install a precomputed binding relation for one snowcap.

        The sharded-recompute path evaluates snowcaps inside workers and
        ships the rows back; this replaces the stored relation without
        re-evaluating the sub-pattern.  The subset must be one of the
        selected snowcaps (loading arbitrary sets would desynchronize
        the maintenance terms that consult :meth:`relation_for`)."""
        if subset not in self.selected:
            raise ValueError("subset %r is not a selected snowcap" % (sorted(subset),))
        self._materialized[subset] = relation.reordered(
            sorted(subset, key=self.pattern.node_names().index)
        )

    def materialized_sets(self) -> List[NodeSet]:
        return list(self._materialized)

    def stored_tuples(self) -> int:
        return sum(len(relation) for relation in self._materialized.values())

    # -- incremental upkeep -----------------------------------------------------

    def apply_batch(
        self,
        deleted_ids: Set[DeweyID],
        additions: Dict[NodeSet, Relation],
    ) -> int:
        """Merged upkeep: drop doomed rows and append fresh ones.

        One filter + extend pass per touched relation, however many
        statements contributed to ``deleted_ids``/``additions``;
        returns the number of rows removed.  Untouched relations are
        left as-is (no copy).

        Stored relations are *bags*: materialization produces them in
        document order, but incremental upkeep appends fresh rows at
        the end instead of re-sorting ``O(n)`` rows per batch -- every
        consumer is order-free (hash-indexed structural joins, ID-keyed
        deletion filters, multiset comparisons), so only the multiset
        of rows is part of the contract.
        """
        removed = 0
        for subset, relation in self._materialized.items():
            extra = additions.get(subset)
            has_extra = extra is not None and bool(extra.rows)
            kept = relation.rows
            if deleted_ids:
                kept = [
                    row
                    for row in relation.rows
                    if not any(cell.id in deleted_ids for cell in row)
                ]
                removed += len(relation.rows) - len(kept)
                if not has_extra and len(kept) == len(relation.rows):
                    continue  # nothing actually dropped
            elif not has_extra:
                continue
            if kept is relation.rows:
                kept = list(kept)
            if has_extra:
                kept.extend(extra.reordered(relation.schema).rows)
            # Appending/filtering changes positions only; cached indexes
            # map IDs to row tuples and are invalidated by replace_rows.
            relation.replace_rows(kept)
        return removed

    def apply_flip_repair(
        self,
        drops_by_name: Dict[str, Set[DeweyID]],
        additions: Dict[NodeSet, Relation],
    ) -> int:
        """Column-aware σ-flip upkeep: drop per-column, then append.

        ``drops_by_name`` maps a σ pattern-node name to the IDs whose
        value predicate flipped false: a stored row dies only when the
        flipped node is bound *at that name's column* (unlike
        :meth:`apply_batch`, whose deletion filter is column-blind --
        a node removed from the document can bind nowhere, but a
        flipped node may still bind other, non-σ columns).
        ``additions`` carries the flipped-true rows per snowcap, as in
        :meth:`apply_batch`.  Returns the number of rows dropped.
        """
        removed = 0
        for subset, relation in self._materialized.items():
            columns = [
                (index, drops_by_name[name])
                for index, name in enumerate(relation.schema)
                if name in drops_by_name and drops_by_name[name]
            ]
            extra = additions.get(subset)
            has_extra = extra is not None and bool(extra.rows)
            kept = relation.rows
            if columns:
                kept = [
                    row
                    for row in relation.rows
                    if not any(row[index].id in doomed for index, doomed in columns)
                ]
                removed += len(relation.rows) - len(kept)
                if not has_extra and len(kept) == len(relation.rows):
                    continue
            elif not has_extra:
                continue
            if kept is relation.rows:
                kept = list(kept)
            if has_extra:
                kept.extend(extra.reordered(relation.schema).rows)
            relation.replace_rows(kept)
        return removed

    def apply_insert_additions(self, additions: Dict[NodeSet, Relation]) -> None:
        """Append freshly derived rows to materialized snowcaps.

        ``additions`` maps snowcap sets to binding relations computed by
        the term evaluator (Prop. 3.13: each snowcap is maintainable
        from smaller snowcaps, the leaves and the Δ+ tables).
        """
        self.apply_batch(set(), additions)

    def apply_delete(self, deleted_ids: Set[DeweyID]) -> int:
        """Drop rows binding any deleted node; returns rows removed.

        This is the "searching the lattice for the tuples to be
        removed" step that makes Update-Lattice costlier for deletions
        than for insertions (Section 6.2).
        """
        return self.apply_batch(deleted_ids, {})
