"""An ordered tuple store (the BerkeleyDB stand-in).

The paper's prototype keeps view data in BerkeleyDB: an ordered
key/value store scanned in key order and updated in place.  This module
provides the same contract in pure Python: sorted keys, point get/put/
delete, range scans and optional file persistence.

View tuples are the keys (they sort by their leading ID columns, i.e.,
document order), derivation counts are the values.

An optional ``order_key`` callable maps stored keys to the comparison
keys the B-tree actually orders by.  It must induce exactly the same
total order as comparing the keys directly -- the point is speed, not
semantics: view tuples contain :class:`~repro.xmldom.dewey.DeweyID`
cells whose rich comparisons are Python calls, while their precomputed
``sort_key`` tuples compare entirely in C, so the store keeps a
parallel list of mapped keys and runs every bisect against it.
"""

from __future__ import annotations

import bisect
import pickle
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

#: sentinel value marking a deletion in :meth:`OrderedTupleStore.bulk_apply`.
DELETED = object()


class OrderedTupleStore:
    """Sorted key/value mapping with range scans.

    Keys must be mutually comparable (view tuples over a fixed schema
    are).  Complexity: point lookups O(log n), inserts/deletes
    O(n) worst case (list shift) -- adequate at the scales of the
    experiments and faithful to a B-tree's interface.
    """

    def __init__(self, order_key: Optional[Callable[[Any], Any]] = None) -> None:
        self._keys: List[Any] = []
        self._values: List[Any] = []
        self._order_key = order_key
        #: parallel comparison keys; aliases _keys when no mapper is set.
        self._order: List[Any] = [] if order_key is not None else self._keys

    def _mapped(self, key: Any) -> Any:
        return key if self._order_key is None else self._order_key(key)

    # -- point operations ------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        index = bisect.bisect_left(self._order, self._mapped(key))
        if index < len(self._keys) and self._keys[index] == key:
            return self._values[index]
        return default

    def put(self, key: Any, value: Any) -> None:
        mapped = self._mapped(key)
        index = bisect.bisect_left(self._order, mapped)
        if index < len(self._keys) and self._keys[index] == key:
            self._values[index] = value
        else:
            self._keys.insert(index, key)
            self._values.insert(index, value)
            if self._order_key is not None:
                self._order.insert(index, mapped)

    def delete(self, key: Any) -> bool:
        index = bisect.bisect_left(self._order, self._mapped(key))
        if index < len(self._keys) and self._keys[index] == key:
            self._keys.pop(index)
            self._values.pop(index)
            if self._order_key is not None:
                self._order.pop(index)
            return True
        return False

    def __contains__(self, key: Any) -> bool:
        index = bisect.bisect_left(self._order, self._mapped(key))
        return index < len(self._keys) and self._keys[index] == key

    def __len__(self) -> int:
        return len(self._keys)

    # -- scans ---------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Lazy in-order scan over the live store (no copy).

        Callers that mutate the store while consuming the iterator must
        use :meth:`snapshot` instead.
        """
        return zip(self._keys, self._values)

    def snapshot(self) -> List[Tuple[Any, Any]]:
        """Materialized copy of :meth:`items`, immune to later updates."""
        return list(zip(self._keys, self._values))

    def keys(self) -> List[Any]:
        return list(self._keys)

    def range(self, low: Optional[Any] = None, high: Optional[Any] = None) -> Iterator[Tuple[Any, Any]]:
        """Items with ``low <= key < high`` (None = unbounded)."""
        start = 0 if low is None else bisect.bisect_left(self._order, self._mapped(low))
        stop = (
            len(self._keys)
            if high is None
            else bisect.bisect_left(self._order, self._mapped(high))
        )
        for index in range(start, stop):
            yield self._keys[index], self._values[index]

    def clear(self) -> None:
        self._keys.clear()
        self._values.clear()
        if self._order_key is not None:
            self._order.clear()

    # -- bulk / persistence -----------------------------------------------------

    def bulk_apply(self, changes: Iterable[Tuple[Any, Any]]) -> None:
        """One-pass merge of key-sorted changes into the store.

        ``changes`` is an iterable of ``(key, value)`` pairs with
        strictly increasing keys; a value of :data:`DELETED` drops the
        key (absent keys are ignored).  The merge rebuilds the parallel
        lists in a single O(n + k) pass -- the batch pipeline's
        replacement for k individual O(n) shifting inserts.
        """
        separate_order = self._order_key is not None
        new_keys: List[Any] = []
        new_values: List[Any] = []
        new_order: List[Any] = new_keys if not separate_order else []
        index = 0
        keys = self._keys
        values = self._values
        order = self._order
        previous = None
        for key, value in changes:
            mapped = self._mapped(key)
            if previous is not None and not previous < mapped:
                raise ValueError("bulk_apply changes are not strictly increasing")
            previous = mapped
            position = bisect.bisect_left(order, mapped, index)
            new_keys.extend(keys[index:position])
            new_values.extend(values[index:position])
            if separate_order:
                new_order.extend(order[index:position])
            index = position
            if index < len(keys) and keys[index] == key:
                index += 1  # replaced or deleted below
            if value is not DELETED:
                new_keys.append(key)
                new_values.append(value)
                if separate_order:
                    new_order.append(mapped)
        new_keys.extend(keys[index:])
        new_values.extend(values[index:])
        self._keys = new_keys
        self._values = new_values
        if separate_order:
            new_order.extend(order[index:])
            self._order = new_order
        else:
            self._order = new_keys

    def load_sorted(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Bulk-load pre-sorted items (replaces current content)."""
        self.clear()
        previous = None
        for key, value in items:
            mapped = self._mapped(key)
            if previous is not None and not previous < mapped:
                raise ValueError("load_sorted input is not strictly increasing")
            self._keys.append(key)
            self._values.append(value)
            if self._order_key is not None:
                self._order.append(mapped)
            previous = mapped

    def dump(self, path: str) -> None:
        with open(path, "wb") as handle:
            pickle.dump(list(zip(self._keys, self._values)), handle)

    @classmethod
    def load(cls, path: str) -> "OrderedTupleStore":
        store = cls()
        with open(path, "rb") as handle:
            items = pickle.load(handle)
        store.load_sorted(items)
        return store
