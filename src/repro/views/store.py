"""An ordered tuple store (the BerkeleyDB stand-in).

The paper's prototype keeps view data in BerkeleyDB: an ordered
key/value store scanned in key order and updated in place.  This module
provides the same contract in pure Python: sorted keys, point get/put/
delete, range scans and optional file persistence.

View tuples are the keys (they sort by their leading ID columns, i.e.,
document order), derivation counts are the values.
"""

from __future__ import annotations

import bisect
import pickle
from typing import Any, Iterable, Iterator, List, Optional, Tuple

#: sentinel value marking a deletion in :meth:`OrderedTupleStore.bulk_apply`.
DELETED = object()


class OrderedTupleStore:
    """Sorted key/value mapping with range scans.

    Keys must be mutually comparable (view tuples over a fixed schema
    are).  Complexity: point lookups O(log n), inserts/deletes
    O(n) worst case (list shift) -- adequate at the scales of the
    experiments and faithful to a B-tree's interface.
    """

    def __init__(self) -> None:
        self._keys: List[Any] = []
        self._values: List[Any] = []

    # -- point operations ------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._values[index]
        return default

    def put(self, key: Any, value: Any) -> None:
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            self._values[index] = value
        else:
            self._keys.insert(index, key)
            self._values.insert(index, value)

    def delete(self, key: Any) -> bool:
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            self._keys.pop(index)
            self._values.pop(index)
            return True
        return False

    def __contains__(self, key: Any) -> bool:
        index = bisect.bisect_left(self._keys, key)
        return index < len(self._keys) and self._keys[index] == key

    def __len__(self) -> int:
        return len(self._keys)

    # -- scans ---------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Lazy in-order scan over the live store (no copy).

        Callers that mutate the store while consuming the iterator must
        use :meth:`snapshot` instead.
        """
        return zip(self._keys, self._values)

    def snapshot(self) -> List[Tuple[Any, Any]]:
        """Materialized copy of :meth:`items`, immune to later updates."""
        return list(zip(self._keys, self._values))

    def keys(self) -> List[Any]:
        return list(self._keys)

    def range(self, low: Optional[Any] = None, high: Optional[Any] = None) -> Iterator[Tuple[Any, Any]]:
        """Items with ``low <= key < high`` (None = unbounded)."""
        start = 0 if low is None else bisect.bisect_left(self._keys, low)
        stop = len(self._keys) if high is None else bisect.bisect_left(self._keys, high)
        for index in range(start, stop):
            yield self._keys[index], self._values[index]

    def clear(self) -> None:
        self._keys.clear()
        self._values.clear()

    # -- bulk / persistence -----------------------------------------------------

    def bulk_apply(self, changes: Iterable[Tuple[Any, Any]]) -> None:
        """One-pass merge of key-sorted changes into the store.

        ``changes`` is an iterable of ``(key, value)`` pairs with
        strictly increasing keys; a value of :data:`DELETED` drops the
        key (absent keys are ignored).  The merge rebuilds the parallel
        lists in a single O(n + k) pass -- the batch pipeline's
        replacement for k individual O(n) shifting inserts.
        """
        new_keys: List[Any] = []
        new_values: List[Any] = []
        index = 0
        keys = self._keys
        values = self._values
        previous = None
        for key, value in changes:
            if previous is not None and not previous < key:
                raise ValueError("bulk_apply changes are not strictly increasing")
            previous = key
            position = bisect.bisect_left(keys, key, index)
            new_keys.extend(keys[index:position])
            new_values.extend(values[index:position])
            index = position
            if index < len(keys) and keys[index] == key:
                index += 1  # replaced or deleted below
            if value is not DELETED:
                new_keys.append(key)
                new_values.append(value)
        new_keys.extend(keys[index:])
        new_values.extend(values[index:])
        self._keys = new_keys
        self._values = new_values

    def load_sorted(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Bulk-load pre-sorted items (replaces current content)."""
        self.clear()
        previous = None
        for key, value in items:
            if previous is not None and not previous < key:
                raise ValueError("load_sorted input is not strictly increasing")
            self._keys.append(key)
            self._values.append(value)
            previous = key

    def dump(self, path: str) -> None:
        with open(path, "wb") as handle:
            pickle.dump(list(zip(self._keys, self._values)), handle)

    @classmethod
    def load(cls, path: str) -> "OrderedTupleStore":
        store = cls()
        with open(path, "rb") as handle:
            items = pickle.load(handle)
        store.load_sorted(items)
        return store
