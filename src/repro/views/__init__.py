"""Materialized views, their storage, and the sub-pattern lattice.

* :mod:`repro.views.view` -- view contents as distinct tuples with
  derivation counts (Section 2.2).
* :mod:`repro.views.store` -- an ordered tuple store standing in for
  the BerkeleyDB back-end of the paper's ViP2P platform.
* :mod:`repro.views.lattice` -- the AND-OR sub-pattern lattice of
  Section 3.5, snowcap enumeration (Definition 3.11) and the two
  materialization strategies compared in Section 6.7 (*Snowcaps* vs
  *Leaves*).
"""

from repro.views.view import MaterializedView
from repro.views.store import OrderedTupleStore
from repro.views.lattice import SnowcapLattice, enumerate_snowcaps, enumerate_subpatterns

__all__ = [
    "MaterializedView",
    "OrderedTupleStore",
    "SnowcapLattice",
    "enumerate_snowcaps",
    "enumerate_subpatterns",
]
