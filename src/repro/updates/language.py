"""Statement-level update language (Section 2.3).

Statements carry a *target path* (where the update applies) and, for
insertions, an XML forest to copy under each target.  The textual forms
accepted by :func:`parse_update` cover the paper's grammar plus the
``let $c := doc("uri") for $x in $c/path insert <xml/>`` phrasing used
throughout Appendix A.
"""

from __future__ import annotations

import re
from typing import List, Optional, Union

from repro.pattern.xpath_parser import PathExpr, parse_xpath
from repro.xmldom.model import Node
from repro.xmldom.parser import parse_fragment
from repro.xmldom.serializer import serialize_fragment


class UpdateStatement:
    """Base class: a named, targeted statement-level update."""

    kind = "update"

    def __init__(self, target: Union[str, PathExpr], name: Optional[str] = None):
        self.target: PathExpr = parse_xpath(target) if isinstance(target, str) else target
        self.name = name or self.kind

    def __repr__(self) -> str:
        return "%s(%s, target=%r)" % (type(self).__name__, self.name, self.target)


class DeleteUpdate(UpdateStatement):
    """``delete q``: remove every node matched by ``q`` (and subtrees)."""

    kind = "delete"


class InsertUpdate(UpdateStatement):
    """``for $x in q insert xml into $x``: copy a forest under targets."""

    kind = "insert"

    def __init__(
        self,
        target: Union[str, PathExpr],
        fragment: Union[str, List[Node]],
        name: Optional[str] = None,
    ):
        super().__init__(target, name=name)
        if isinstance(fragment, str):
            self.forest: List[Node] = parse_fragment(fragment)
        else:
            self.forest = list(fragment)
        if not self.forest:
            raise ValueError("insert statement with an empty forest")

    def fragment_xml(self) -> str:
        return "".join(serialize_fragment(tree) for tree in self.forest)


class ResolvedDeleteUpdate(DeleteUpdate):
    """A deletion whose target nodes are already known by ID.

    Produced by the PUL optimizer (reduced atomic operations carry
    explicit Dewey IDs) and by experiment drivers that pick target sets
    directly; ``compute_pul`` resolves the IDs instead of evaluating a
    path.
    """

    def __init__(self, target_ids, name: Optional[str] = None):
        self.target_ids = list(target_ids) if isinstance(target_ids, (list, tuple)) else [target_ids]
        self.name = name or self.kind
        self.target = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return "ResolvedDeleteUpdate(%d targets)" % len(self.target_ids)


class ResolvedInsertUpdate(InsertUpdate):
    """An insertion whose target nodes are already known by ID."""

    def __init__(self, target_ids, forest: List[Node], name: Optional[str] = None):
        self.target_ids = list(target_ids) if isinstance(target_ids, (list, tuple)) else [target_ids]
        self.name = name or self.kind
        self.target = None  # type: ignore[assignment]
        self.forest = list(forest)
        if not self.forest:
            raise ValueError("insert statement with an empty forest")

    def __repr__(self) -> str:
        return "ResolvedInsertUpdate(%d targets, %d trees)" % (
            len(self.target_ids),
            len(self.forest),
        )


# -- batches ----------------------------------------------------------------


def _filter_labels(pred) -> set:
    """Every label a predicate expression can test (for merge safety)."""
    from repro.pattern.xpath_parser import (
        AndFilter,
        ExistsFilter,
        OrFilter,
        ValueFilter,
    )

    if isinstance(pred, (AndFilter, OrFilter)):
        out: set = set()
        for part in pred.parts:
            out |= _filter_labels(part)
        return out
    if isinstance(pred, ExistsFilter):
        return _path_labels(pred.path)
    if isinstance(pred, ValueFilter):
        if pred.path is None:
            # Self-value test ``[. = c]``: inserting text under any
            # matched node can flip it, so nothing is safely mergeable.
            return {"*"}
        return _path_labels(pred.path)
    return {"*"}  # unknown predicate kind: assume it can match anything


def _path_labels(path: Optional[PathExpr]) -> set:
    """Every label a path (steps and predicates) can match."""
    if path is None:
        return set()
    labels: set = set()
    for step in path.steps:
        labels.add("#text" if step.test == "text()" else step.test)
        for pred in step.predicates:
            labels |= _filter_labels(pred)
    return labels


def _forest_labels(forest: List[Node]) -> set:
    labels: set = set()
    for tree in forest:
        for node in tree.self_and_descendants():
            labels.add(node.label)
    return labels


def _mergeable_inserts(first: InsertUpdate, second: InsertUpdate) -> bool:
    """Can two adjacent inserts share one target resolution?

    Resolved inserts merge iff they name the same target IDs.  Path
    inserts merge iff the paths are textually identical *and* neither
    forest contains a label the path (steps or predicates) can match --
    otherwise the first insert could create or enable targets for the
    second, and merging would change which nodes receive copies.
    """
    first_ids = getattr(first, "target_ids", None)
    second_ids = getattr(second, "target_ids", None)
    if (first_ids is None) != (second_ids is None):
        return False
    if first_ids is not None:
        return list(first_ids) == list(second_ids)
    if repr(first.target) != repr(second.target):
        return False
    path_labels = _path_labels(first.target)
    if "*" in path_labels:
        return False
    return not (path_labels & (_forest_labels(first.forest) | _forest_labels(second.forest)))


def _merge_inserts(first: InsertUpdate, second: InsertUpdate) -> InsertUpdate:
    name = "%s+%s" % (first.name, second.name)
    forest = list(first.forest) + list(second.forest)
    first_ids = getattr(first, "target_ids", None)
    if first_ids is not None:
        return ResolvedInsertUpdate(first_ids, forest, name=name)
    return InsertUpdate(first.target, forest, name=name)


def _covered_by_deletes(target_id, delete_ids: set) -> bool:
    """Is ``target_id`` one of (O1) or a descendant of (O3) the deleted
    IDs?  Purely ID-based: the Dewey ID encodes the ancestor chain."""
    if target_id in delete_ids:
        return True
    return any(ancestor in delete_ids for ancestor in target_id.ancestor_ids())


class UpdateBatch:
    """An ordered group of statements propagated as one unit.

    A batch is the engine's unit of maintenance: one merged pending
    update list, one Δ extraction, one lattice pass.  ``coalesced``
    first shrinks the stream with the Section 5 reduction rules over
    resolved statements (``reduced``: O1/O3 void earlier operations a
    later deletion subsumes), then merges adjacent inserts that
    provably share a target set (the statement-level I5), so the batch
    pays one target resolution per surviving run; insert-then-delete
    cancellation of whole subtrees happens later, at the net-delta
    level (nodes inserted and removed within one batch appear in
    neither Δ+ nor Δ−).
    """

    def __init__(self, statements: Sequence[UpdateStatement] = (), name: Optional[str] = None):
        self.statements: List[UpdateStatement] = list(statements)
        self.name = name or "batch"

    def append(self, statement: UpdateStatement) -> "UpdateBatch":
        self.statements.append(statement)
        return self

    def extend(self, statements: Sequence[UpdateStatement]) -> "UpdateBatch":
        self.statements.extend(statements)
        return self

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def reduced(self) -> "UpdateBatch":
        """Apply the Figure 14 reduction rules O1/O3 at batch level.

        A :class:`ResolvedDeleteUpdate` voids every *earlier* resolved
        **insertion** targeting a deleted node (O1's ``ins↘(n); del(n)``)
        or a node inside a deleted subtree (O3): the deletion removes
        the whole subtree anyway, so the insert never needs to run.
        Both tests read only Dewey IDs, so queued streams shrink
        *before* target resolution touches the document.

        Earlier *deletions* are deliberately left alone even when a
        later deletion subsumes them: removing a node early frees its
        sibling slot, so an intervening insert into the surviving
        parent would be assigned a different ordinal than in the
        sequential run.  (The document-level optimizer,
        ``apply_sequence(optimize=True)``, still applies the full O1
        in the paper's setting of pre-compiled operation lists.)

        Reduction never reaches across an unresolved (path-targeted)
        statement either: a path resolves against the document state
        its predecessors produced, and a voided insert could have
        created or enabled matches for it.  Under these two
        restrictions a voided insert only ever added children inside
        subtrees the later deletion takes out whole, so the reduced
        batch's final extents -- and Dewey assignment -- stay
        byte-identical to the unreduced run.
        """
        out: List[UpdateStatement] = []
        #: entries of ``out`` below this index predate an unresolved
        #: statement and may not be voided.
        barrier = 0
        for statement in self.statements:
            target_ids = getattr(statement, "target_ids", None)
            if target_ids is None:
                out.append(statement)
                barrier = len(out)
                continue
            if isinstance(statement, DeleteUpdate) and target_ids:
                delete_ids = set(target_ids)
                reduced_tail: List[UpdateStatement] = []
                for earlier in out[barrier:]:
                    earlier_ids = getattr(earlier, "target_ids", None)
                    if earlier_ids is None or not isinstance(earlier, InsertUpdate):
                        reduced_tail.append(earlier)
                        continue
                    survivors = [
                        target
                        for target in earlier_ids
                        if not _covered_by_deletes(target, delete_ids)
                    ]
                    if len(survivors) == len(earlier_ids):
                        reduced_tail.append(earlier)
                    elif survivors:
                        reduced_tail.append(
                            ResolvedInsertUpdate(
                                survivors, earlier.forest, name=earlier.name
                            )
                        )
                    # else: fully voided (O1/O3) -- drop the statement.
                out = out[:barrier] + reduced_tail
            out.append(statement)
        return UpdateBatch(out, name=self.name)

    def coalesced(self) -> "UpdateBatch":
        """A semantically equivalent batch, reduced (O1/O3) with
        adjacent same-target inserts merged (statement-level I5)."""
        out: List[UpdateStatement] = []
        for statement in self.reduced().statements:
            if (
                out
                and isinstance(statement, InsertUpdate)
                and isinstance(out[-1], InsertUpdate)
                and _mergeable_inserts(out[-1], statement)
            ):
                out[-1] = _merge_inserts(out[-1], statement)
            else:
                out.append(statement)
        return UpdateBatch(out, name=self.name)

    def __repr__(self) -> str:
        return "UpdateBatch(%s, %d statements)" % (self.name, len(self.statements))


_LET_RE = re.compile(
    r"^\s*let\s+(\$[\w]+)\s*:?=\s*doc\s*\(\s*[\"']([^\"']*)[\"']\s*\)\s*", re.DOTALL
)
_FOR_RE = re.compile(r"^\s*for\s+(\$[\w]+)\s+in\s+(.+?)\s*(?=insert\b|delete\b)", re.DOTALL)
_INSERT_RE = re.compile(r"^\s*insert\s+(.*?)(?:\s+into\s+(.+?))?\s*$", re.DOTALL)
_DELETE_RE = re.compile(r"^\s*delete\s+(.+?)\s*$", re.DOTALL)


def _strip_doc_var(path_text: str, doc_var: Optional[str]) -> str:
    path_text = path_text.strip()
    if doc_var and path_text.startswith(doc_var):
        path_text = path_text[len(doc_var):].strip()
    doc_call = re.match(r"doc\s*\(\s*[\"'][^\"']*[\"']\s*\)\s*(.*)$", path_text, re.DOTALL)
    if doc_call:
        path_text = doc_call.group(1).strip()
    return path_text


def parse_update(text: str, name: Optional[str] = None) -> UpdateStatement:
    """Parse a textual update statement.

    Accepted shapes (whitespace-insensitive)::

        delete //a/b
        insert <x/> into /site/people
        for $p in /site/people/person insert <name>n</name>
        let $c := doc("auction.xml")
        for $p in $c/site/people/person
        insert <name>n</name>
        for $p in //person delete $p/name     (sugar: delete //person/name)
    """
    remaining = text.strip()
    doc_var: Optional[str] = None
    let_match = _LET_RE.match(remaining)
    if let_match:
        doc_var = let_match.group(1)
        remaining = remaining[let_match.end():]

    for_var: Optional[str] = None
    for_path: Optional[str] = None
    for_match = _FOR_RE.match(remaining)
    if for_match:
        for_var = for_match.group(1)
        for_path = _strip_doc_var(for_match.group(2), doc_var)
        remaining = remaining[for_match.end():]

    delete_match = _DELETE_RE.match(remaining)
    if delete_match:
        raw_target = delete_match.group(1)
        target_text = _strip_doc_var(raw_target, doc_var)
        if for_var is not None and target_text.startswith(for_var):
            suffix = target_text[len(for_var):].strip()
            target_text = (for_path or "") + suffix
        return DeleteUpdate(target_text, name=name)

    insert_match = _INSERT_RE.match(remaining)
    if insert_match:
        fragment_text = insert_match.group(1).strip()
        into_text = insert_match.group(2)
        if into_text is not None:
            target_text = _strip_doc_var(into_text, doc_var)
            if for_var is not None and target_text.startswith(for_var):
                suffix = target_text[len(for_var):].strip()
                target_text = (for_path or "") + suffix
        elif for_path is not None:
            target_text = for_path
        else:
            raise ValueError("insert statement without a target: %r" % text)
        return InsertUpdate(target_text, fragment_text, name=name)

    raise ValueError("unrecognized update statement: %r" % text)
