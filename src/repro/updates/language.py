"""Statement-level update language (Section 2.3).

Statements carry a *target path* (where the update applies) and, for
insertions, an XML forest to copy under each target.  The textual forms
accepted by :func:`parse_update` cover the paper's grammar plus the
``let $c := doc("uri") for $x in $c/path insert <xml/>`` phrasing used
throughout Appendix A.
"""

from __future__ import annotations

import re
from typing import List, Optional, Union

from repro.pattern.xpath_parser import PathExpr, parse_xpath
from repro.xmldom.model import Node
from repro.xmldom.parser import parse_fragment
from repro.xmldom.serializer import serialize_fragment


class UpdateStatement:
    """Base class: a named, targeted statement-level update."""

    kind = "update"

    def __init__(self, target: Union[str, PathExpr], name: Optional[str] = None):
        self.target: PathExpr = parse_xpath(target) if isinstance(target, str) else target
        self.name = name or self.kind

    def __repr__(self) -> str:
        return "%s(%s, target=%r)" % (type(self).__name__, self.name, self.target)


class DeleteUpdate(UpdateStatement):
    """``delete q``: remove every node matched by ``q`` (and subtrees)."""

    kind = "delete"


class InsertUpdate(UpdateStatement):
    """``for $x in q insert xml into $x``: copy a forest under targets."""

    kind = "insert"

    def __init__(
        self,
        target: Union[str, PathExpr],
        fragment: Union[str, List[Node]],
        name: Optional[str] = None,
    ):
        super().__init__(target, name=name)
        if isinstance(fragment, str):
            self.forest: List[Node] = parse_fragment(fragment)
        else:
            self.forest = list(fragment)
        if not self.forest:
            raise ValueError("insert statement with an empty forest")

    def fragment_xml(self) -> str:
        return "".join(serialize_fragment(tree) for tree in self.forest)


class ResolvedDeleteUpdate(DeleteUpdate):
    """A deletion whose target nodes are already known by ID.

    Produced by the PUL optimizer (reduced atomic operations carry
    explicit Dewey IDs) and by experiment drivers that pick target sets
    directly; ``compute_pul`` resolves the IDs instead of evaluating a
    path.
    """

    def __init__(self, target_ids, name: Optional[str] = None):
        self.target_ids = list(target_ids) if isinstance(target_ids, (list, tuple)) else [target_ids]
        self.name = name or self.kind
        self.target = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return "ResolvedDeleteUpdate(%d targets)" % len(self.target_ids)


class ResolvedInsertUpdate(InsertUpdate):
    """An insertion whose target nodes are already known by ID."""

    def __init__(self, target_ids, forest: List[Node], name: Optional[str] = None):
        self.target_ids = list(target_ids) if isinstance(target_ids, (list, tuple)) else [target_ids]
        self.name = name or self.kind
        self.target = None  # type: ignore[assignment]
        self.forest = list(forest)
        if not self.forest:
            raise ValueError("insert statement with an empty forest")

    def __repr__(self) -> str:
        return "ResolvedInsertUpdate(%d targets, %d trees)" % (
            len(self.target_ids),
            len(self.forest),
        )


_LET_RE = re.compile(
    r"^\s*let\s+(\$[\w]+)\s*:?=\s*doc\s*\(\s*[\"']([^\"']*)[\"']\s*\)\s*", re.DOTALL
)
_FOR_RE = re.compile(r"^\s*for\s+(\$[\w]+)\s+in\s+(.+?)\s*(?=insert\b|delete\b)", re.DOTALL)
_INSERT_RE = re.compile(r"^\s*insert\s+(.*?)(?:\s+into\s+(.+?))?\s*$", re.DOTALL)
_DELETE_RE = re.compile(r"^\s*delete\s+(.+?)\s*$", re.DOTALL)


def _strip_doc_var(path_text: str, doc_var: Optional[str]) -> str:
    path_text = path_text.strip()
    if doc_var and path_text.startswith(doc_var):
        path_text = path_text[len(doc_var):].strip()
    doc_call = re.match(r"doc\s*\(\s*[\"'][^\"']*[\"']\s*\)\s*(.*)$", path_text, re.DOTALL)
    if doc_call:
        path_text = doc_call.group(1).strip()
    return path_text


def parse_update(text: str, name: Optional[str] = None) -> UpdateStatement:
    """Parse a textual update statement.

    Accepted shapes (whitespace-insensitive)::

        delete //a/b
        insert <x/> into /site/people
        for $p in /site/people/person insert <name>n</name>
        let $c := doc("auction.xml")
        for $p in $c/site/people/person
        insert <name>n</name>
        for $p in //person delete $p/name     (sugar: delete //person/name)
    """
    remaining = text.strip()
    doc_var: Optional[str] = None
    let_match = _LET_RE.match(remaining)
    if let_match:
        doc_var = let_match.group(1)
        remaining = remaining[let_match.end():]

    for_var: Optional[str] = None
    for_path: Optional[str] = None
    for_match = _FOR_RE.match(remaining)
    if for_match:
        for_var = for_match.group(1)
        for_path = _strip_doc_var(for_match.group(2), doc_var)
        remaining = remaining[for_match.end():]

    delete_match = _DELETE_RE.match(remaining)
    if delete_match:
        raw_target = delete_match.group(1)
        target_text = _strip_doc_var(raw_target, doc_var)
        if for_var is not None and target_text.startswith(for_var):
            suffix = target_text[len(for_var):].strip()
            target_text = (for_path or "") + suffix
        return DeleteUpdate(target_text, name=name)

    insert_match = _INSERT_RE.match(remaining)
    if insert_match:
        fragment_text = insert_match.group(1).strip()
        into_text = insert_match.group(2)
        if into_text is not None:
            target_text = _strip_doc_var(into_text, doc_var)
            if for_var is not None and target_text.startswith(for_var):
                suffix = target_text[len(for_var):].strip()
                target_text = (for_path or "") + suffix
        elif for_path is not None:
            target_text = for_path
        else:
            raise ValueError("insert statement without a target: %r" % text)
        return InsertUpdate(target_text, fragment_text, name=name)

    raise ValueError("unrecognized update statement: %r" % text)
