"""The update language of Section 2.3 and pending update lists.

Supported statement forms:

* ``delete q`` with ``q`` in XPath``{/,//,*,[]}``;
* ``insert xml into q``;
* ``for $x in q insert xml into $x`` (with the appendix's
  ``let $c := doc("uri")`` preamble accepted);
* programmatic construction of both.

Statement evaluation produces a *pending update list* (PUL, after the
XQuery Update Facility): target/tree pairs for insertions, doomed nodes
for deletions.  Applying a PUL to the document assigns Dewey IDs to
inserted subtrees -- the IDs the Δ+ tables need -- and collects the
removed node sets that feed the Δ− tables.
"""

from repro.updates.language import (
    DeleteUpdate,
    InsertUpdate,
    UpdateStatement,
    parse_update,
)
from repro.updates.pul import (
    AtomicDelete,
    AtomicInsert,
    PendingUpdateList,
    apply_pul,
    compute_pul,
)

__all__ = [
    "AtomicDelete",
    "AtomicInsert",
    "DeleteUpdate",
    "InsertUpdate",
    "PendingUpdateList",
    "UpdateStatement",
    "apply_pul",
    "compute_pul",
    "parse_update",
]
