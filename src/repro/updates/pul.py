"""Pending update lists: compute-pul and apply (Section 3.4).

``compute-pul(u)`` evaluates the statement's target path -- the *Find
Target Nodes* phase of the experiments -- and produces atomic
operations:

* :class:`AtomicInsert` ``(target node, forest)``: each tree of the
  forest will be copied as new children of the target;
* :class:`AtomicDelete` ``(node)``: the node (with its subtree) will be
  removed.

``apply_pul`` performs the document update, returning the *materialized
effects*: inserted subtree roots carrying their freshly assigned Dewey
IDs (the paper's ``apply-insert`` helper) or the complete removed node
sets -- precisely the inputs of CD+ / CD−.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.updates.language import DeleteUpdate, InsertUpdate, UpdateStatement
from repro.xmldom.dewey import has_strict_descendant
from repro.xmldom.model import Document, ElementNode, Node


class AtomicInsert:
    """Insert a forest (copied) after the last child of a target node."""

    __slots__ = ("target", "forest")

    kind = "insert"

    def __init__(self, target: ElementNode, forest: Sequence[Node]):
        self.target = target
        self.forest = list(forest)

    def __repr__(self) -> str:
        return "AtomicInsert(into=%s, %d trees)" % (self.target.id, len(self.forest))


class AtomicDelete:
    """Remove one node and its subtree."""

    __slots__ = ("target",)

    kind = "delete"

    def __init__(self, target: Node):
        self.target = target

    def __repr__(self) -> str:
        return "AtomicDelete(%s)" % (self.target.id,)

AtomicOp = Union[AtomicInsert, AtomicDelete]


class PendingUpdateList:
    """An ordered list of atomic operations from one (or more) statements."""

    def __init__(self, operations: Sequence[AtomicOp] = ()):
        self.operations: List[AtomicOp] = list(operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def extend(self, operations: Sequence[AtomicOp]) -> None:
        self.operations.extend(operations)

    @classmethod
    def merged(cls, puls: Sequence["PendingUpdateList"]) -> "PendingUpdateList":
        """One PUL concatenating the atomic operations of many."""
        out = cls()
        for pul in puls:
            out.extend(pul.operations)
        return out

    def inserts(self) -> List[AtomicInsert]:
        return [op for op in self.operations if isinstance(op, AtomicInsert)]

    def deletes(self) -> List[AtomicDelete]:
        return [op for op in self.operations if isinstance(op, AtomicDelete)]

    def target_ids(self):
        return [op.target.id for op in self.operations]

    def __repr__(self) -> str:
        return "PendingUpdateList(%r)" % (self.operations,)


def compute_pul(document: Document, update: UpdateStatement) -> PendingUpdateList:
    """Evaluate the statement target and build its PUL.

    For insertions this yields one :class:`AtomicInsert` per target node
    (all carrying the statement's forest); for deletions, one
    :class:`AtomicDelete` per matched node, skipping nodes whose
    ancestor is also matched (deleting the ancestor subsumes them).
    """
    resolved_ids = getattr(update, "target_ids", None)
    if resolved_ids is not None:
        targets = [
            node
            for node in (document.node_by_id(t) for t in resolved_ids)
            if node is not None
        ]
    else:
        targets = update.target.evaluate(document)
    if isinstance(update, InsertUpdate):
        operations: List[AtomicOp] = []
        for node in targets:
            if not isinstance(node, ElementNode):
                raise ValueError("insert target %s is not an element" % node.id)
            operations.append(AtomicInsert(node, update.forest))
        return PendingUpdateList(operations)
    if isinstance(update, DeleteUpdate):
        # Deleting the document root is interpreted as emptying it (the
        # Fig. 22/23 depth sweep deletes "/site"); the root element must
        # survive for the document to stay well-formed.
        expanded: List[Node] = []
        seen_ids = set()
        for node in targets:
            replacements = node.children if node is document.root else [node]
            for replacement in replacements:
                if replacement.id not in seen_ids:
                    seen_ids.add(replacement.id)
                    expanded.append(replacement)
        chosen: List[Node] = []
        matched_ids = {node.id for node in expanded}
        for node in expanded:
            if any(ancestor in matched_ids for ancestor in node.id.ancestor_ids()):
                continue
            chosen.append(node)
        return PendingUpdateList([AtomicDelete(node) for node in chosen])
    raise TypeError("unknown update statement %r" % (update,))


class AppliedUpdate:
    """The outcome of applying a PUL to a document."""

    def __init__(
        self,
        inserted_roots: List[Node],
        removed_nodes: List[Node],
        apply_seconds: float,
    ):
        #: Roots of inserted subtrees, with their new IDs (document order).
        self.inserted_roots = inserted_roots
        #: Every removed node, descendants included (document order).
        self.removed_nodes = removed_nodes
        self.apply_seconds = apply_seconds

    def __repr__(self) -> str:
        return "AppliedUpdate(+%d trees, -%d nodes)" % (
            len(self.inserted_roots),
            len(self.removed_nodes),
        )


class BatchApplication:
    """Materialized effects of applying a statement batch in order.

    Target resolution and document application stay strictly
    sequential -- statement *k* resolves against the document as left
    by statements ``1..k-1``, so the updated document is byte-identical
    to per-statement application.  What the batch changes is the view
    side: the *net* insert/delete effects are exposed so maintenance
    runs one Δ extraction and one propagation round for the whole
    stream.

    Net semantics implement the batch-level cancellation rule: a node
    inserted and deleted within the same batch appears in neither
    ``net_inserted_nodes`` nor ``net_removed_nodes`` (its whole
    round-trip is invisible to the views), and a deleted node counts as
    Δ− only if it predates the batch.
    """

    def __init__(self, document: Document, statements: Sequence) -> None:
        self.document = document
        self.statements = list(statements)
        self.puls: List[PendingUpdateList] = []
        self.applied: List[AppliedUpdate] = []
        self.find_targets_seconds = 0.0
        self.apply_seconds = 0.0
        #: every node inserted at any point, with the statement index;
        #: IDs are captured at insert time (they survive later removal).
        self.inserted_records: List[Tuple[Node, int]] = []
        self.inserted_ids: set = set()
        #: every node removed at any point, with the statement index.
        self.removed_records: List[Tuple[Node, int]] = []

    # -- execution --------------------------------------------------------

    def apply(self, before_apply=None) -> "BatchApplication":
        """Resolve and apply every statement, in order.

        ``before_apply(index, statement, pul)`` runs after target
        resolution and before the document changes -- the hook the
        engine uses to snapshot σ-predicate watchlists against the
        pre-statement state.
        """
        for index, statement in enumerate(self.statements):
            started = time.perf_counter()
            pul = compute_pul(self.document, statement)
            self.find_targets_seconds += time.perf_counter() - started
            if before_apply is not None:
                before_apply(index, statement, pul)
            applied = apply_pul(self.document, pul)
            self.apply_seconds += applied.apply_seconds
            for root in applied.inserted_roots:
                for node in root.self_and_descendants():
                    self.inserted_records.append((node, index))
                    self.inserted_ids.add(node.id)
            for node in applied.removed_nodes:
                self.removed_records.append((node, index))
            self.puls.append(pul)
            self.applied.append(applied)
        return self

    # -- merged PUL -------------------------------------------------------

    def merged_pul(self) -> PendingUpdateList:
        return PendingUpdateList.merged(self.puls)

    @property
    def pul_size(self) -> int:
        return sum(len(pul) for pul in self.puls)

    @property
    def insert_target_ids(self) -> List:
        return [op.target.id for pul in self.puls for op in pul.inserts()]

    @property
    def delete_target_ids(self) -> List:
        return [op.target.id for pul in self.puls for op in pul.deletes()]

    # -- net effects ------------------------------------------------------

    def net_inserted_roots(self) -> List[Node]:
        """Inserted subtree roots that survive the batch, outermost only.

        A root is dropped when it was itself deleted later, or when it
        sits inside another inserted subtree (its nodes are reachable
        from the outer root's traversal)."""
        roots: List[Node] = []
        for applied in self.applied:
            for root in applied.inserted_roots:
                if self.document.node_by_id(root.id) is not root:
                    continue  # cancelled: inserted then deleted
                # Nested inside another inserted subtree?  Walk parent
                # pointers (live chain) rather than rebuilding ancestor
                # DeweyIDs.
                walk = root.parent
                nested = False
                while walk is not None:
                    if walk.dewey in self.inserted_ids:
                        nested = True
                        break
                    walk = walk.parent
                if not nested:
                    roots.append(root)
        return roots

    def net_inserted_nodes(self) -> List[Node]:
        """Every batch-inserted node still in the document (Δ+)."""
        out: List[Node] = []
        for root in self.net_inserted_roots():
            out.extend(root.self_and_descendants())
        return out

    def net_removed_records(self) -> List[Tuple[Node, int]]:
        """Pre-batch nodes removed by the batch (Δ−), with event index."""
        return [
            (node, index)
            for node, index in self.removed_records
            if node.id not in self.inserted_ids
        ]

    def net_removed_nodes(self) -> List[Node]:
        return [node for node, _index in self.net_removed_records()]

    def cancelled_count(self) -> int:
        """Nodes inserted and deleted within the batch (net no-ops)."""
        return sum(
            1 for node, _index in self.removed_records if node.id in self.inserted_ids
        )

    def dirty_removed_nodes(self) -> List[Node]:
        """Net-removed nodes whose detached val/cont may differ from
        their pre-batch state.

        A removed node's stored attributes drifted iff its subtree was
        touched *before* its own removal: a batch-inserted node ever
        lived below it, or a strictly-descendant node was removed by an
        earlier statement (same-statement removals take whole subtrees
        atomically and never nest, so they cannot drift).  Such nodes
        invalidate Δ−-side exactness and force the engine's recompute
        fallback.

        Descendant probes bisect sorted ID lists: a Dewey subtree is a
        contiguous key range, so each probe is O(log n) instead of a
        scan over every inserted/removed record.
        """
        inserted_sorted = sorted(self.inserted_ids)
        removed_by_statement: dict = {}
        for node, index in self.removed_records:
            removed_by_statement.setdefault(index, []).append(node.id)
        for ids in removed_by_statement.values():
            ids.sort()
        earlier_statements = sorted(removed_by_statement)
        dirty: List[Node] = []
        for node, index in self.net_removed_records():
            node_id = node.id
            if has_strict_descendant(inserted_sorted, node_id) or any(
                has_strict_descendant(removed_by_statement[earlier], node_id)
                for earlier in earlier_statements
                if earlier < index
            ):
                dirty.append(node)
        return dirty

    def has_dirty_removals(self) -> bool:
        return bool(self.dirty_removed_nodes())

    def __repr__(self) -> str:
        return "BatchApplication(%d statements, +%d ids, -%d records)" % (
            len(self.statements),
            len(self.inserted_ids),
            len(self.removed_records),
        )


def apply_pul(document: Document, pul: PendingUpdateList) -> AppliedUpdate:
    """Apply every atomic operation, in order, to the document."""
    started = time.perf_counter()
    inserted_roots: List[Node] = []
    removed_nodes: List[Node] = []
    for op in pul.operations:
        if isinstance(op, AtomicInsert):
            for tree in op.forest:
                inserted_roots.append(document.insert_subtree(op.target, tree))
        else:
            if op.target.parent is None and op.target is not document.root:
                continue  # already detached by an earlier delete
            removed_nodes.extend(document.delete_subtree(op.target))
    elapsed = time.perf_counter() - started
    return AppliedUpdate(inserted_roots, removed_nodes, elapsed)
