"""Pending update lists: compute-pul and apply (Section 3.4).

``compute-pul(u)`` evaluates the statement's target path -- the *Find
Target Nodes* phase of the experiments -- and produces atomic
operations:

* :class:`AtomicInsert` ``(target node, forest)``: each tree of the
  forest will be copied as new children of the target;
* :class:`AtomicDelete` ``(node)``: the node (with its subtree) will be
  removed.

``apply_pul`` performs the document update, returning the *materialized
effects*: inserted subtree roots carrying their freshly assigned Dewey
IDs (the paper's ``apply-insert`` helper) or the complete removed node
sets -- precisely the inputs of CD+ / CD−.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.updates.language import DeleteUpdate, InsertUpdate, UpdateStatement
from repro.xmldom.model import Document, ElementNode, Node


class AtomicInsert:
    """Insert a forest (copied) after the last child of a target node."""

    __slots__ = ("target", "forest")

    kind = "insert"

    def __init__(self, target: ElementNode, forest: Sequence[Node]):
        self.target = target
        self.forest = list(forest)

    def __repr__(self) -> str:
        return "AtomicInsert(into=%s, %d trees)" % (self.target.id, len(self.forest))


class AtomicDelete:
    """Remove one node and its subtree."""

    __slots__ = ("target",)

    kind = "delete"

    def __init__(self, target: Node):
        self.target = target

    def __repr__(self) -> str:
        return "AtomicDelete(%s)" % (self.target.id,)

AtomicOp = Union[AtomicInsert, AtomicDelete]


class PendingUpdateList:
    """An ordered list of atomic operations from one (or more) statements."""

    def __init__(self, operations: Sequence[AtomicOp] = ()):
        self.operations: List[AtomicOp] = list(operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def inserts(self) -> List[AtomicInsert]:
        return [op for op in self.operations if isinstance(op, AtomicInsert)]

    def deletes(self) -> List[AtomicDelete]:
        return [op for op in self.operations if isinstance(op, AtomicDelete)]

    def target_ids(self):
        return [op.target.id for op in self.operations]

    def __repr__(self) -> str:
        return "PendingUpdateList(%r)" % (self.operations,)


def compute_pul(document: Document, update: UpdateStatement) -> PendingUpdateList:
    """Evaluate the statement target and build its PUL.

    For insertions this yields one :class:`AtomicInsert` per target node
    (all carrying the statement's forest); for deletions, one
    :class:`AtomicDelete` per matched node, skipping nodes whose
    ancestor is also matched (deleting the ancestor subsumes them).
    """
    resolved_ids = getattr(update, "target_ids", None)
    if resolved_ids is not None:
        targets = [
            node
            for node in (document.node_by_id(t) for t in resolved_ids)
            if node is not None
        ]
    else:
        targets = update.target.evaluate(document)
    if isinstance(update, InsertUpdate):
        operations: List[AtomicOp] = []
        for node in targets:
            if not isinstance(node, ElementNode):
                raise ValueError("insert target %s is not an element" % node.id)
            operations.append(AtomicInsert(node, update.forest))
        return PendingUpdateList(operations)
    if isinstance(update, DeleteUpdate):
        # Deleting the document root is interpreted as emptying it (the
        # Fig. 22/23 depth sweep deletes "/site"); the root element must
        # survive for the document to stay well-formed.
        expanded: List[Node] = []
        seen_ids = set()
        for node in targets:
            replacements = node.children if node is document.root else [node]
            for replacement in replacements:
                if replacement.id not in seen_ids:
                    seen_ids.add(replacement.id)
                    expanded.append(replacement)
        chosen: List[Node] = []
        matched_ids = {node.id for node in expanded}
        for node in expanded:
            if any(ancestor in matched_ids for ancestor in node.id.ancestor_ids()):
                continue
            chosen.append(node)
        return PendingUpdateList([AtomicDelete(node) for node in chosen])
    raise TypeError("unknown update statement %r" % (update,))


class AppliedUpdate:
    """The outcome of applying a PUL to a document."""

    def __init__(
        self,
        inserted_roots: List[Node],
        removed_nodes: List[Node],
        apply_seconds: float,
    ):
        #: Roots of inserted subtrees, with their new IDs (document order).
        self.inserted_roots = inserted_roots
        #: Every removed node, descendants included (document order).
        self.removed_nodes = removed_nodes
        self.apply_seconds = apply_seconds

    def __repr__(self) -> str:
        return "AppliedUpdate(+%d trees, -%d nodes)" % (
            len(self.inserted_roots),
            len(self.removed_nodes),
        )


def apply_pul(document: Document, pul: PendingUpdateList) -> AppliedUpdate:
    """Apply every atomic operation, in order, to the document."""
    started = time.perf_counter()
    inserted_roots: List[Node] = []
    removed_nodes: List[Node] = []
    for op in pul.operations:
        if isinstance(op, AtomicInsert):
            for tree in op.forest:
                inserted_roots.append(document.insert_subtree(op.target, tree))
        else:
            if op.target.parent is None and op.target is not document.root:
                continue  # already detached by an earlier delete
            removed_nodes.extend(document.delete_subtree(op.target))
    elapsed = time.perf_counter() - started
    return AppliedUpdate(inserted_roots, removed_nodes, elapsed)
