"""Per-figure experiment drivers (Section 6).

Scales are sized for a pure-Python engine: the paper's 100 KB / 10 MB /
50 MB documents map to generator scales keeping the same *ratios*
(DESIGN.md, substitution table).  Every driver returns plain-dict rows
ready for printing or assertion; shapes expected from the paper are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.baselines.ivma import IVMAMaintainer
from repro.baselines.recompute import full_recompute
from repro.bench.harness import BreakdownRow, run_maintenance_pair, statement_for
from repro.maintenance.delta import doomed_nodes
from repro.maintenance.engine import MaintenanceEngine
from repro.updates.language import (
    DeleteUpdate,
    InsertUpdate,
    ResolvedDeleteUpdate,
    ResolvedInsertUpdate,
    UpdateStatement,
)
from repro.updates.pul import apply_pul, compute_pul
from repro.views.lattice import SnowcapLattice
from repro.views.view import MaterializedView
from repro.workloads.queries import view_pattern
from repro.workloads.updates import VIEW_UPDATE_GROUPS, delete_variant, insert_update
from repro.workloads.xmark import generate_document, size_of


# ---------------------------------------------------------------------------
# Figures 18-21: phase breakdowns / totals across the view-update matrix
# ---------------------------------------------------------------------------


def run_breakdown_matrix(
    scale: int,
    kind: str,
    views: Sequence[str] = ("Q1", "Q3", "Q6"),
    verify: bool = True,
) -> List[BreakdownRow]:
    """Figures 18 (insert) / 19 (delete), and 20/21 with all views."""
    rows: List[BreakdownRow] = []
    for view_name in views:
        for update_name in VIEW_UPDATE_GROUPS[view_name]:
            rows.append(
                run_maintenance_pair(
                    scale, view_name, update_name, kind, verify=verify
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 22/23: deletion path depth sweep (view Q1)
# ---------------------------------------------------------------------------

PATH_DEPTH_TARGETS = (
    "/site",
    "/site/people",
    "/site/people/person",
    "/site/people/person/@id",
    "/site/people/person/name",
)


def run_path_depth(scale: int, verify: bool = True) -> List[Dict[str, object]]:
    """Deletion X1_L variants of growing depth against fixed view Q1.

    Expected shape: maintenance time *decreases* as the path lengthens
    (shorter paths doom more nodes).
    """
    rows: List[Dict[str, object]] = []
    for path in PATH_DEPTH_TARGETS:
        statement = DeleteUpdate(path, name="X1_L@%s" % path)
        row = run_maintenance_pair(
            scale, "Q1", statement.name, "delete", statement=statement, verify=verify
        )
        entry = row.as_dict()
        entry["path"] = path
        entry["depth"] = path.count("/")
        rows.append(entry)
    return rows


# ---------------------------------------------------------------------------
# Figure 24: annotation placement (view Q1 variants, fixed delete X1_L)
# ---------------------------------------------------------------------------


def _q1_variant(variant: str):
    """Q1 as /site/people/person[@id]/name with movable val/cont."""
    pattern = view_pattern("Q1")
    names = pattern.node_names()  # site, people, person, @id, name (preorder)
    annotations: Dict[str, Sequence[str]] = {name: ("ID",) for name in names}
    leaf = names[-1]
    root = names[0]
    if variant == "IDs":
        pass
    elif variant == "VC Leaf":
        annotations[leaf] = ("ID", "val", "cont")
    elif variant == "VC Root":
        annotations[root] = ("ID", "val", "cont")
    elif variant == "VC All Nodes but Root":
        for name in names[1:]:
            annotations[name] = ("ID", "val", "cont")
    elif variant == "VC All Nodes":
        for name in names:
            annotations[name] = ("ID", "val", "cont")
    else:
        raise ValueError("unknown Q1 variant %r" % variant)
    return pattern.with_annotations(annotations)


ANNOTATION_VARIANTS = (
    "IDs",
    "VC Leaf",
    "VC Root",
    "VC All Nodes but Root",
    "VC All Nodes",
)


def run_annotation_variants(scale: int, verify: bool = True) -> List[Dict[str, object]]:
    """Fixed update X1_L (delete person0) against annotation variants.

    Expected shape: the closer val/cont sit to the root, the more
    expensive PDDT/PDMT becomes (bigger values to search and rewrite).
    """
    statement = DeleteUpdate(
        "/site/people/person[@id = 'person0']", name="X1_L_pred"
    )
    rows: List[Dict[str, object]] = []
    for variant in ANNOTATION_VARIANTS:
        pattern = _q1_variant(variant)
        row = run_maintenance_pair(
            scale,
            "Q1",
            statement.name,
            "delete",
            pattern=pattern,
            statement=DeleteUpdate(
                "/site/people/person[@id = 'person0']", name="X1_L_pred"
            ),
            verify=verify,
        )
        entry = row.as_dict()
        entry["variant"] = variant
        rows.append(entry)
    return rows


# ---------------------------------------------------------------------------
# Figure 25: scalability in document size (view Q1, update A6_A)
# ---------------------------------------------------------------------------


def run_scalability(
    scales: Sequence[int] = (1, 2, 20, 100),
    view: str = "Q1",
    update: str = "A6_A",
    kinds: Sequence[str] = ("insert", "delete"),
    verify: bool = True,
) -> List[Dict[str, object]]:
    """Phase breakdown across document sizes (paper: 500 KB → 50 MB).

    The scale ratios 1:2:20:100 mirror the paper's size ratios.
    """
    rows: List[Dict[str, object]] = []
    for kind in kinds:
        for scale in scales:
            row = run_maintenance_pair(scale, view, update, kind, verify=verify)
            entry = row.as_dict()
            entry["scale"] = scale
            rows.append(entry)
    return rows


# ---------------------------------------------------------------------------
# Figures 26/27: incremental vs full recomputation
# ---------------------------------------------------------------------------


def _selective_statement(scale: int, update_name: str, kind: str, fraction: float):
    """A statement hitting only the first ``fraction`` of its targets.

    Mirrors the paper's selective-deletion settings (Section 6.3 adds
    predicates like ``[@id="person0"]`` to the test-set paths): the
    update's target path is evaluated once, and the statement is pinned
    to the leading share of the matched nodes.
    """
    document = generate_document(scale=scale)
    base = statement_for(update_name, kind)
    targets = base.target.evaluate(document)
    chosen = [node.id for node in targets[: max(1, int(len(targets) * fraction))]]
    if kind == "delete":
        return ResolvedDeleteUpdate(chosen, name="%s_sel" % update_name)
    return ResolvedInsertUpdate(chosen, base.forest, name="%s_sel" % update_name)


def run_vs_full(
    scale: int,
    kind: str,
    views: Sequence[str] = ("Q1", "Q2", "Q4"),
    verify: bool = True,
    selectivity: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Incremental maintenance vs recompute-from-scratch, per pair.

    ``selectivity`` restricts each update to the leading fraction of
    its targets (the regime incremental maintenance is designed for;
    ``None`` runs the raw test-set statements, which for deletions wipe
    entire label populations -- the honest worst case, reported too).
    """
    rows: List[Dict[str, object]] = []
    for view_name in views:
        for update_name in VIEW_UPDATE_GROUPS[view_name]:
            statement = (
                _selective_statement(scale, update_name, kind, selectivity)
                if selectivity is not None
                else None
            )
            row = run_maintenance_pair(
                scale, view_name, update_name, kind,
                statement=statement, verify=verify,
            )
            # Full recomputation on an identically updated twin document.
            document = generate_document(scale=scale)
            pattern = view_pattern(view_name)
            twin = (
                _selective_statement(scale, update_name, kind, selectivity)
                if selectivity is not None
                else statement_for(update_name, kind)
            )
            pul = compute_pul(document, twin)
            apply_pul(document, pul)
            lattice = SnowcapLattice(pattern)
            _view, full_seconds = full_recompute(pattern, document, lattice)
            rows.append(
                {
                    "view": view_name,
                    "update": update_name,
                    "kind": kind,
                    "incremental_s": round(row.total_seconds, 6),
                    "full_s": round(full_seconds, 6),
                    "speedup": round(full_seconds / max(row.total_seconds, 1e-9), 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 28: bulk PINT/PIMT vs node-at-a-time IVMA
# ---------------------------------------------------------------------------


def run_vs_ivma(
    scale: int,
    view: str = "Q1",
    updates: Optional[Sequence[str]] = None,
    verify: bool = True,
) -> List[Dict[str, object]]:
    """Execution time of one bulk insertion vs per-node IVMA calls.

    Each test-set insertion adds a five-node tree per target, handled in
    one shot by PINT and by five consecutive calls in IVMA.
    """
    updates = list(updates) if updates is not None else VIEW_UPDATE_GROUPS[view]
    rows: List[Dict[str, object]] = []
    for update_name in updates:
        # Bulk algebraic propagation.
        row = run_maintenance_pair(scale, view, update_name, "insert", verify=verify)
        bulk_exec = row.phase_seconds["execute_update"] + row.phase_seconds["update_lattice"]

        # IVMA on an identical twin.
        document = generate_document(scale=scale)
        pattern = view_pattern(view)
        view_store = MaterializedView.materialize(pattern, document, name=view)
        statement = statement_for(update_name, "insert")
        pul = compute_pul(document, statement)
        applied = apply_pul(document, pul)
        maintainer = IVMAMaintainer(view_store, document)
        ivma_seconds = maintainer.propagate_insert_nodes(applied.inserted_roots)
        if verify and not view_store.equals_fresh_evaluation(document):
            raise AssertionError("IVMA diverged on %s/%s" % (view, update_name))
        rows.append(
            {
                "view": view,
                "update": update_name,
                "bulk_exec_s": round(bulk_exec, 6),
                "ivma_exec_s": round(ivma_seconds, 6),
                "ivma_calls": maintainer.calls,
                "slowdown": round(ivma_seconds / max(bulk_exec, 1e-9), 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 29-32: snowcaps vs leaves across document sizes
# ---------------------------------------------------------------------------


def run_snowcaps_vs_leaves(
    view: str,
    scales: Sequence[int] = (1, 2, 4, 8),
    update: Optional[str] = None,
    kind: str = "insert",
    verify: bool = True,
) -> List[Dict[str, object]]:
    """(R) evaluate-terms time and (U) lattice-update time per strategy.

    Expected shape: Snowcaps beats Leaves on (R); the margin narrows as
    the snowcap tuple volume grows (Q4's benefit < Q6's).
    """
    if update is None:
        update = {"Q4": "X2_L", "Q6": "E6_L"}.get(view, VIEW_UPDATE_GROUPS[view][0])
    rows: List[Dict[str, object]] = []
    for scale in scales:
        for strategy in ("snowcaps", "leaves"):
            row = run_maintenance_pair(
                scale,
                view,
                update,
                kind,
                strategy=strategy,
                verify=verify,
                use_update_profile=True,
            )
            evaluate_terms = float(row.counters["term_eval_s"])
            update_lattice = row.phase_seconds["update_lattice"]
            rows.append(
                {
                    "view": view,
                    "scale": scale,
                    "doc_bytes": row.document_bytes,
                    "strategy": strategy,
                    "evaluate_terms_s": round(evaluate_terms, 6),
                    "update_lattice_s": round(update_lattice, 6),
                    "total_s": round(evaluate_terms + update_lattice, 6),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 33-35: PUL reduction rules O1, O3, I5
# ---------------------------------------------------------------------------


def _overlap_statements(
    engine: MaintenanceEngine, rule: str, percent: int
) -> List[UpdateStatement]:
    """Build the Section 6.8 scenario for one rule at one overlap level.

    The base update X1_L targets every person; a companion update
    targets the first ``percent`` % of the same nodes, producing exactly
    the duplicate (O1), ancestor-shadowed (O3) or mergeable (I5) atomic
    operations the rule eliminates.
    """
    document = engine.document
    persons = list(document.nodes_with_label("person"))
    overlap = persons[: max(1, len(persons) * percent // 100)]
    overlap_ids = [node.id for node in overlap]
    if rule == "O1":
        return [
            ResolvedDeleteUpdate(overlap_ids, name="overlap_del"),
            DeleteUpdate("/site/people/person", name="X1_L_del"),
        ]
    if rule == "O3":
        return [
            ResolvedDeleteUpdate(overlap_ids, name="overlap_del"),
            DeleteUpdate("/site/people", name="ancestor_del"),
        ]
    if rule == "I5":
        snippet = "<name>I5<name>extra</name></name>"
        return [
            ResolvedInsertUpdate(
                overlap_ids, InsertUpdate("/site", snippet).forest, name="overlap_ins"
            ),
            InsertUpdate("/site/people/person", snippet, name="X1_L_ins"),
        ]
    raise ValueError("unknown rule %r" % rule)


def run_reduction_rule(
    rule: str,
    scale: int = 2,
    percents: Sequence[int] = (20, 40, 60, 80, 100),
    view: str = "Q1",
    repeats: int = 3,
    verify: bool = True,
) -> List[Dict[str, object]]:
    """Optimised vs unoptimised propagation of overlapping updates.

    The optimisation time itself is included in the optimised runs, as
    in the paper.  Each configuration takes the best of ``repeats``
    fresh runs to damp timer noise.  Expected shape: optimised ≤
    unoptimised, the gap widening with the overlap percentage
    (Figures 33, 34, 35).
    """
    from repro.optimizer.ops import pul_to_operations
    from repro.optimizer.rules import reduce_operations
    from repro.updates.pul import compute_pul as _compute_pul

    rows: List[Dict[str, object]] = []
    for percent in percents:
        timings: Dict[bool, float] = {}
        op_counts: Dict[bool, int] = {}
        for optimize in (True, False):
            best = float("inf")
            for _ in range(max(1, repeats)):
                document = generate_document(scale=scale)
                engine = MaintenanceEngine(document)
                registered = engine.register_view(view_pattern(view), view)
                statements = _overlap_statements(engine, rule, percent)
                # Section 6.8: "we modified our system to operate in this
                # [atomic] manner" -- both variants propagate one atomic
                # operation at a time; optimisation reduces the list first
                # and its own cost is included in the measurement.
                operations: List = []
                for statement in statements:
                    operations.extend(
                        pul_to_operations(_compute_pul(document, statement))
                    )
                started = time.perf_counter()
                if optimize:
                    operations = reduce_operations(operations)
                for op in operations:
                    if op.kind == "ins":
                        atomic: UpdateStatement = ResolvedInsertUpdate(
                            [op.target], op.forest, name="atomic_ins"
                        )
                    else:
                        atomic = ResolvedDeleteUpdate([op.target], name="atomic_del")
                    engine.apply_update(atomic)
                best = min(best, time.perf_counter() - started)
                op_counts[optimize] = len(operations)
                if verify and not registered.view.equals_fresh_evaluation(document):
                    raise AssertionError(
                        "rule %s at %d%% diverged (optimize=%s)" % (rule, percent, optimize)
                    )
            timings[optimize] = best
        rows.append(
            {
                "rule": rule,
                "percent": percent,
                "optimized_s": round(timings[True], 6),
                "unoptimized_s": round(timings[False], 6),
                "ops_optimized": op_counts[True],
                "ops_unoptimized": op_counts[False],
                "saving": round(1.0 - timings[True] / max(timings[False], 1e-9), 3),
            }
        )
    return rows
