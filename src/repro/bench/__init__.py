"""Experiment harness: drivers and printers for every paper figure.

Each ``run_*`` function in :mod:`repro.bench.experiments` regenerates
the data series of one figure (or figure group) of Section 6 and
returns plain-dict rows; :mod:`repro.bench.harness` holds the shared
machinery (fresh engine construction, timing capture, table
formatting).  The ``benchmarks/`` directory wraps these drivers in
pytest-benchmark entry points, one module per figure.
"""

from repro.bench.harness import (
    BreakdownRow,
    format_rows,
    fresh_engine,
    run_maintenance_pair,
)
from repro.bench.experiments import (
    run_annotation_variants,
    run_breakdown_matrix,
    run_path_depth,
    run_reduction_rule,
    run_scalability,
    run_snowcaps_vs_leaves,
    run_vs_full,
    run_vs_ivma,
)

__all__ = [
    "BreakdownRow",
    "format_rows",
    "fresh_engine",
    "run_annotation_variants",
    "run_breakdown_matrix",
    "run_maintenance_pair",
    "run_path_depth",
    "run_reduction_rule",
    "run_scalability",
    "run_snowcaps_vs_leaves",
    "run_vs_full",
    "run_vs_ivma",
]
