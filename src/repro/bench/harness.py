"""Shared machinery for the experiment drivers.

The central primitive is :func:`run_maintenance_pair`: build a fresh
document at a given scale, register one view, propagate one update, and
return the five-phase timing breakdown plus result counters -- one bar
of Figures 18/19 (or one matrix cell of Figures 20/21).

Every run also *verifies* the maintained extent against recomputation,
so benchmark numbers can never come from an incorrect propagation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.maintenance.engine import MaintenanceEngine, PHASES, RegisteredView
from repro.pattern.tree_pattern import Pattern
from repro.updates.language import UpdateStatement
from repro.workloads.queries import view_pattern
from repro.workloads.updates import delete_variant, insert_update
from repro.workloads.xmark import generate_document, size_of
from repro.xmldom.model import Document


class BreakdownRow:
    """One (view, update) measurement with the paper's phase breakdown."""

    def __init__(self, view: str, update: str, kind: str):
        self.view = view
        self.update = update
        self.kind = kind  # 'insert' | 'delete'
        self.phase_seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.counters: Dict[str, float] = {}
        self.document_bytes = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "view": self.view,
            "update": self.update,
            "kind": self.kind,
            "total_s": round(self.total_seconds, 6),
            "doc_bytes": self.document_bytes,
        }
        for phase in PHASES:
            out[phase] = round(self.phase_seconds[phase], 6)
        out.update(self.counters)
        return out

    def __repr__(self) -> str:
        return "BreakdownRow(%s %s %s: %.4fs)" % (
            self.view,
            self.update,
            self.kind,
            self.total_seconds,
        )


def fresh_engine(
    scale: int,
    view_names: Sequence[str] = (),
    strategy: str = "snowcaps",
    seed: int = 20110322,
) -> MaintenanceEngine:
    """A new engine over a freshly generated document with views."""
    document = generate_document(scale=scale, seed=seed)
    engine = MaintenanceEngine(document)
    for name in view_names:
        engine.register_view(view_pattern(name), name, strategy=strategy)
    return engine


def statement_for(update_name: str, kind: str) -> UpdateStatement:
    if kind == "insert":
        return insert_update(update_name)
    if kind == "delete":
        return delete_variant(update_name)
    raise ValueError("kind must be 'insert' or 'delete', got %r" % kind)


def update_profile_of(statement: UpdateStatement) -> list:
    """The labels an update statement is expected to touch.

    This is the paper's *update profile* (Section 3.5): for insertions,
    the labels of the inserted forest; for deletions, the label of the
    target path's last step.  It steers snowcap selection.
    """
    labels = set()
    forest = getattr(statement, "forest", None)
    if forest:
        for tree in forest:
            for node in tree.self_and_descendants():
                labels.add(node.label)
    elif getattr(statement, "target", None) is not None:
        labels.add(statement.target.steps[-1].test)
    return sorted(labels)


def run_maintenance_pair(
    scale: int,
    view_name: str,
    update_name: str,
    kind: str,
    strategy: str = "snowcaps",
    pattern: Optional[Pattern] = None,
    statement: Optional[UpdateStatement] = None,
    verify: bool = True,
    use_update_profile: bool = False,
) -> BreakdownRow:
    """Propagate one update to one view on a fresh document.

    ``pattern`` / ``statement`` override the named workload entries
    (used by the annotation-variant and path-depth experiments).
    ``use_update_profile`` feeds the statement's update profile to the
    snowcap selection, as Section 3.5's cost-based choice would.
    """
    document = generate_document(scale=scale)
    engine = MaintenanceEngine(document)
    update_for_profile = statement if statement is not None else statement_for(update_name, kind)
    registered = engine.register_view(
        pattern if pattern is not None else view_pattern(view_name),
        view_name,
        strategy=strategy,
        update_profile=update_profile_of(update_for_profile) if use_update_profile else None,
    )
    update = statement if statement is not None else statement_for(update_name, kind)
    report = engine.apply_update(update)
    view_report = report.report_for(view_name)

    row = BreakdownRow(view_name, update_name, kind)
    row.document_bytes = size_of(document)
    row.phase_seconds = dict(view_report.phases.as_dict())
    row.counters = {
        "term_eval_s": round(view_report.term_eval_seconds, 6),
        "targets": view_report.targets,
        "terms_developed": view_report.terms_developed,
        "terms_surviving": view_report.terms_surviving,
        "derivations_added": view_report.derivations_added,
        "derivations_removed": view_report.derivations_removed,
        "tuples_modified": view_report.tuples_modified,
        "view_tuples": len(registered.view),
    }
    if verify and not registered.view.equals_fresh_evaluation(document):
        raise AssertionError(
            "maintained view %s diverged under %s (%s)" % (view_name, update_name, kind)
        )
    return row


def format_rows(rows: Sequence[BreakdownRow], title: str = "") -> str:
    """A paper-style text table (ms per phase, stacked like the bars)."""
    header = "%-6s %-12s %-7s" % ("view", "update", "kind")
    header += "".join(" %14s" % phase[:14] for phase in PHASES)
    header += " %10s" % "total_ms"
    lines = [title, header] if title else [header]
    for row in rows:
        line = "%-6s %-12s %-7s" % (row.view, row.update, row.kind)
        for phase in PHASES:
            line += " %14.2f" % (row.phase_seconds[phase] * 1000.0)
        line += " %10.2f" % (row.total_seconds * 1000.0)
        lines.append(line)
    return "\n".join(lines)
