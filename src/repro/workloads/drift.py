"""Label-skew drift streams: the batches that defeat a frozen LPT plan.

:func:`~repro.workloads.churn.churn_batches` stresses the repair paths;
this module stresses the *scheduler*.  It models the stage-dependent
event-rate shape of maintenance-lifecycle studies (a ~95/4/1
hot/warm/cold split whose hot set rotates as the workload moves through
phases): within one phase almost every update draws from one family of
Appendix-A update names, the *previous* phase's family keeps a decaying
cool-down tail, and everything else is background noise.  Update-name
families map onto disjoint view groups (people-, auction- and
region-centric targets, the ``VIEW_UPDATE_GROUPS`` of Figures 18-21),
so when the hot family rotates, the set of *views* doing real
maintenance work rotates with it -- exactly the drift that strands a
fork-time LPT assignment with every hot view on one resident worker
and makes :mod:`repro.sharding.rebalance` earn its keep.

Statement mechanics follow the ``churn`` generator's marker style: one
``random.Random(seed)`` drives everything, statements carry per-event
marker names (``X2_L#12.3``) so streams are greppable batch by batch,
and targets are resolved against the document *as generated* -- stale
targets skip at apply time identically on the serial and the sharded
side, so two engines replaying the same batches stay byte-identical.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.updates.language import (
    ResolvedDeleteUpdate,
    ResolvedInsertUpdate,
    UpdateStatement,
)
from repro.workloads.updates import VIEW_UPDATE_GROUPS, insert_update

#: hot/warm/cold event-rate split (the lifecycle-model shape).
DEFAULT_HOT_SHARE = 0.95
DEFAULT_WARM_SHARE = 0.04


def drift_phase_families() -> List[List[str]]:
    """The default rotation: three disjoint update-name families.

    Built from the per-view update groups of the Fig-18 experiments so
    each family's targets concentrate on a different view subset:
    people-centric (Q1/Q17), auction-centric (Q2/Q3/Q4) and
    region/item-centric (Q6/Q13) updates.
    """
    people = list(VIEW_UPDATE_GROUPS["Q1"])
    auctions = list(VIEW_UPDATE_GROUPS["Q2"])
    regions = sorted(
        set(VIEW_UPDATE_GROUPS["Q6"]) | set(VIEW_UPDATE_GROUPS["Q13"])
    )
    return [people, auctions, regions]


def phase_of(batch_index: int, batches: int, phase_count: int) -> int:
    """Which drift phase a batch index falls in (equal-length phases,
    any remainder absorbed by the last phase)."""
    if batches < 1 or phase_count < 1:
        raise ValueError("need positive batches and phase_count")
    per_phase = max(1, batches // phase_count)
    return min(batch_index // per_phase, phase_count - 1)


def drift_batches(
    document,
    batches: int,
    batch_size: int = 8,
    seed: int = 0,
    *,
    families: Optional[Sequence[Sequence[str]]] = None,
    insert_ratio: float = 0.75,
    hot_share: float = DEFAULT_HOT_SHARE,
    warm_share: float = DEFAULT_WARM_SHARE,
) -> List[List[UpdateStatement]]:
    """Generate ``batches`` statement lists whose hot family rotates.

    The stream is split into ``len(families)`` equal-length phases (the
    default rotation has three).  Within phase *p*, each statement
    draws its update name from family *p* with probability
    ``hot_share``, from the *previous* family (the cool-down tail) with
    ``warm_share``, else from the remaining cold names -- so the family
    going hot next stays genuinely cold until its phase begins, exactly
    the surprise that strands a fork-time assignment.  Statements are
    single-target resolved inserts/deletes exactly as in
    ``statement_stream`` (``insert_ratio`` splits them), with
    churn-style per-event marker names.
    """
    rng = random.Random(seed)
    pools = [list(family) for family in (families or drift_phase_families())]
    if not pools or not all(pools):
        raise ValueError("families must be non-empty name lists")
    targets_by_name: Dict[str, List] = {}
    forests_by_name: Dict[str, object] = {}

    def draw_name(phase: int) -> Optional[str]:
        hot = pools[phase]
        warm = pools[(phase - 1) % len(pools)]
        cold = [
            name
            for index, family in enumerate(pools)
            if index not in (phase, (phase - 1) % len(pools))
            for name in family
        ]
        roll = rng.random()
        if roll < hot_share or not (warm or cold):
            pool = hot
        elif roll < hot_share + warm_share and warm:
            pool = warm
        else:
            pool = cold or warm or hot
        return pool[rng.randrange(len(pool))] if pool else None

    result: List[List[UpdateStatement]] = []
    for index in range(batches):
        phase = phase_of(index, batches, len(pools))
        batch: List[UpdateStatement] = []
        misses = 0
        while len(batch) < batch_size and misses < 64:
            name = draw_name(phase)
            if name is None:
                break
            base = forests_by_name.get(name)
            if base is None:
                base = insert_update(name)
                forests_by_name[name] = base
            targets = targets_by_name.get(name)
            if targets is None:
                targets = [node.id for node in base.target.evaluate(document)]
                targets_by_name[name] = targets
            if not targets:
                misses += 1
                continue
            target_id = targets[rng.randrange(len(targets))]
            label = "%s#%d.%d" % (name, index, len(batch))
            if rng.random() < insert_ratio:
                batch.append(
                    ResolvedInsertUpdate([target_id], base.forest, name=label)
                )
            else:
                batch.append(ResolvedDeleteUpdate([target_id], name=label + "_del"))
        result.append(batch)
    return result
