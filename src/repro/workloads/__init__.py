"""Experimental workloads: XMark-like documents, views and updates.

* :mod:`repro.workloads.xmark` -- a deterministic generator of
  auction-site documents with the XMark vocabulary (the paper's source
  documents; the original ``xmlgen`` is replaced by a faithful
  synthetic equivalent, see DESIGN.md).
* :mod:`repro.workloads.queries` -- the XMark views Q1, Q2, Q3, Q4,
  Q6, Q13, Q17 of Appendix A.6, transcribed into the Figure 3 dialect.
* :mod:`repro.workloads.updates` -- the XPathMark-derived update test
  set of Appendix A (classes L, LB, A, O, AO) plus the per-view update
  groups used by Figures 18-21 and 26-28.
* :mod:`repro.workloads.churn` -- adversarial mixed-churn batch
  streams (σ-value rewrites, insert-then-delete round-trips, dirty
  pairs) exercising the σ-flip repair and fallback paths.
* :mod:`repro.workloads.drift` -- label-skew drift streams whose hot
  update family rotates across phases (~95/4/1 hot/warm/cold shares),
  the workload shape that defeats a frozen LPT view assignment and
  exercises adaptive rebalancing.
"""

from repro.workloads.xmark import generate_document, generate_xml, size_of
from repro.workloads.queries import VIEW_TEXTS, view_definition, view_pattern
from repro.workloads.churn import churn_batches, flip_candidates
from repro.workloads.drift import drift_batches, drift_phase_families, phase_of
from repro.workloads.updates import (
    UPDATE_CLASSES,
    UPDATE_TEXTS,
    VIEW_UPDATE_GROUPS,
    delete_variant,
    insert_update,
)

__all__ = [
    "UPDATE_CLASSES",
    "UPDATE_TEXTS",
    "VIEW_TEXTS",
    "VIEW_UPDATE_GROUPS",
    "churn_batches",
    "delete_variant",
    "drift_batches",
    "drift_phase_families",
    "flip_candidates",
    "generate_document",
    "generate_xml",
    "insert_update",
    "phase_of",
    "size_of",
    "view_definition",
    "view_pattern",
]
