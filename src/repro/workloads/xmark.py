"""A deterministic XMark-like document generator.

The paper evaluates on XMark benchmark documents [Schmidt et al. 2002]
of 100 KB up to 50 MB.  The original ``xmlgen`` binary is unavailable
offline, so this module synthesizes documents with the same element
vocabulary and shape -- ``site/people/person``, ``site/open_auctions/
open_auction/bidder/increase``, ``site/regions/<continent>/item``,
``site/closed_auctions``, ``site/categories`` -- which is all the
views (Appendix A.6) and updates (Appendix A.1-A.5) touch.

The generator is seeded and fully deterministic: the same scale always
yields byte-identical documents, so experiments are reproducible.
Element frequencies (optional phone/homepage/profile..., bidder counts,
"4.50" increases, references to ``person12``) are tuned so that every
view in the test set is non-empty and every update affects at least one
view, as the paper arranged.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.xmldom.model import AttributeNode, Document, ElementNode, TextNode, build_document
from repro.xmldom.serializer import serialize

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_FIRST_NAMES = (
    "Martin", "Angela", "Ioana", "Domenica", "Jim", "Mimma", "Ann", "Bob",
    "Carla", "Deepak", "Elena", "Farid", "Grace", "Hugo", "Irene", "Jorge",
)
_LAST_NAMES = (
    "Goodfellow", "Bonifati", "Manolescu", "Sileo", "Smith", "Rossi",
    "Nakamura", "Garcia", "Dubois", "Olsen", "Kovacs", "Silva",
)
_WORDS = (
    "auction", "vintage", "rare", "boxed", "mint", "classic", "signed",
    "limited", "edition", "antique", "restored", "original", "collector",
    "pristine", "bundle", "lot", "estate", "imported", "handmade", "sealed",
)
_CITIES = ("Lille", "Glasgow", "Paris", "Potenza", "Boston", "Kyoto", "Lima")
_PAYMENTS = ("Creditcard", "Personal Check", "Cash", "Money order")
_EDUCATIONS = ("High School", "College", "Graduate School", "Other")
_INCREASES = ("1.50", "3.00", "4.50", "6.00", "7.50", "9.00", "12.00", "15.00")


def _element(label: str, *children, text: Optional[str] = None) -> ElementNode:
    node = ElementNode(label)
    if text is not None:
        node.append(TextNode(text))
    for child in children:
        node.append(child)
    return node


def _attr(name: str, value: str) -> AttributeNode:
    return AttributeNode(name, value)


class _Generator:
    def __init__(self, scale: int, seed: int):
        self.rng = random.Random(seed)
        self.scale = scale
        self.person_count = max(4, 25 * scale)
        self.item_count = max(6, 24 * scale)
        self.open_auction_count = max(3, 12 * scale)
        self.closed_auction_count = max(2, 6 * scale)
        self.category_count = max(2, 4 * scale)

    # -- vocabulary helpers -----------------------------------------------

    def words(self, low: int, high: int) -> str:
        count = self.rng.randint(low, high)
        return " ".join(self.rng.choice(_WORDS) for _ in range(count))

    def person_ref(self) -> str:
        # Bias towards person12 so Q4's predicate selects something.
        if self.person_count > 12 and self.rng.random() < 0.15:
            return "person12"
        return "person%d" % self.rng.randrange(self.person_count)

    # -- site sections --------------------------------------------------------

    def person(self, index: int) -> ElementNode:
        rng = self.rng
        person = _element("person")
        person.append(_attr("id", "person%d" % index))
        full_name = "%s %s" % (rng.choice(_FIRST_NAMES), rng.choice(_LAST_NAMES))
        person.append(_element("name", text=full_name))
        person.append(
            _element("emailaddress", text="mailto:%s@example.org" % full_name.split()[0].lower())
        )
        if rng.random() < 0.55:
            person.append(_element("phone", text="+39 %07d" % rng.randrange(10**7)))
        if rng.random() < 0.45:
            person.append(
                _element(
                    "address",
                    _element("street", text="%d %s St" % (rng.randrange(99) + 1, rng.choice(_WORDS))),
                    _element("city", text=rng.choice(_CITIES)),
                    _element("country", text="United States"),
                    _element("zipcode", text=str(rng.randrange(10000, 99999))),
                )
            )
        if rng.random() < 0.35:
            person.append(
                _element("homepage", text="http://www.example.org/~%s" % full_name.split()[0].lower())
            )
        if rng.random() < 0.3:
            person.append(_element("creditcard", text="%04d %04d %04d %04d" % tuple(rng.randrange(10000) for _ in range(4))))
        if rng.random() < 0.5:
            profile = _element("profile")
            profile.append(_attr("income", "%.2f" % (rng.random() * 90000 + 10000)))
            for _ in range(rng.randint(0, 3)):
                interest = _element("interest")
                interest.append(_attr("category", "category%d" % rng.randrange(self.category_count)))
                profile.append(interest)
            if rng.random() < 0.7:
                profile.append(_element("education", text=rng.choice(_EDUCATIONS)))
            if rng.random() < 0.8:
                profile.append(_element("gender", text=rng.choice(("male", "female"))))
            profile.append(_element("business", text=rng.choice(("Yes", "No"))))
            if rng.random() < 0.6:
                profile.append(_element("age", text=str(rng.randrange(18, 80))))
            person.append(profile)
        if rng.random() < 0.4:
            watches = _element("watches")
            for _ in range(rng.randint(1, 3)):
                watch = _element("watch")
                watch.append(_attr("open_auction", "open_auction%d" % rng.randrange(self.open_auction_count)))
                watches.append(watch)
            person.append(watches)
        return person

    def item(self, index: int, region: str) -> ElementNode:
        rng = self.rng
        item = _element("item")
        item.append(_attr("id", "item%d" % index))
        if rng.random() < 0.1:
            item.append(_attr("featured", "yes"))
        item.append(_element("location", text=rng.choice(("United States", "France", "Italy", "Japan", "Peru"))))
        item.append(_element("quantity", text=str(rng.randint(1, 5))))
        if rng.random() < 0.9:
            item.append(_element("name", text=self.words(2, 4)))
        item.append(_element("payment", text=", ".join(rng.sample(_PAYMENTS, rng.randint(1, 3)))))
        if rng.random() < 0.85:
            item.append(
                _element(
                    "description",
                    _element("text", text=self.words(6, 18)),
                )
            )
        item.append(_element("shipping", text="Will ship internationally"))
        for _ in range(rng.randint(1, 2)):
            incategory = _element("incategory")
            incategory.append(_attr("category", "category%d" % rng.randrange(self.category_count)))
            item.append(incategory)
        if rng.random() < 0.5:
            mailbox = _element("mailbox")
            for _ in range(rng.randint(1, 2)):
                mailbox.append(
                    _element(
                        "mail",
                        _element("from", text=rng.choice(_FIRST_NAMES)),
                        _element("to", text=rng.choice(_FIRST_NAMES)),
                        _element("date", text="%02d/%02d/2001" % (rng.randint(1, 12), rng.randint(1, 28))),
                        _element("text", text=self.words(4, 10)),
                    )
                )
            item.append(mailbox)
        return item

    def open_auction(self, index: int) -> ElementNode:
        rng = self.rng
        auction = _element("open_auction")
        auction.append(_attr("id", "open_auction%d" % index))
        auction.append(_element("initial", text="%.2f" % (rng.random() * 200)))
        if rng.random() < 0.45:
            auction.append(_element("reserve", text="%.2f" % (rng.random() * 400)))
        for _ in range(rng.randint(0, 4)):
            bidder = _element(
                "bidder",
                _element("date", text="%02d/%02d/2001" % (rng.randint(1, 12), rng.randint(1, 28))),
                _element("time", text="%02d:%02d:%02d" % (rng.randint(0, 23), rng.randint(0, 59), rng.randint(0, 59))),
            )
            personref = _element("personref")
            personref.append(_attr("person", self.person_ref()))
            bidder.append(personref)
            bidder.append(_element("increase", text=rng.choice(_INCREASES)))
            auction.append(bidder)
        auction.append(_element("current", text="%.2f" % (rng.random() * 500)))
        if rng.random() < 0.35:
            auction.append(_element("privacy", text="Yes"))
        itemref = _element("itemref")
        itemref.append(_attr("item", "item%d" % rng.randrange(self.item_count)))
        auction.append(itemref)
        seller = _element("seller")
        seller.append(_attr("person", self.person_ref()))
        auction.append(seller)
        auction.append(_element("annotation", _element("description", _element("text", text=self.words(4, 12)))))
        auction.append(_element("quantity", text="1"))
        auction.append(_element("type", text=rng.choice(("Regular", "Featured"))))
        auction.append(
            _element(
                "interval",
                _element("start", text="%02d/%02d/2001" % (rng.randint(1, 6), rng.randint(1, 28))),
                _element("end", text="%02d/%02d/2001" % (rng.randint(7, 12), rng.randint(1, 28))),
            )
        )
        return auction

    def closed_auction(self, index: int) -> ElementNode:
        rng = self.rng
        auction = _element("closed_auction")
        seller = _element("seller")
        seller.append(_attr("person", self.person_ref()))
        buyer = _element("buyer")
        buyer.append(_attr("person", self.person_ref()))
        itemref = _element("itemref")
        itemref.append(_attr("item", "item%d" % rng.randrange(self.item_count)))
        auction.append(seller)
        auction.append(buyer)
        auction.append(itemref)
        auction.append(_element("price", text="%.2f" % (rng.random() * 300)))
        auction.append(_element("date", text="%02d/%02d/2001" % (rng.randint(1, 12), rng.randint(1, 28))))
        auction.append(_element("quantity", text="1"))
        auction.append(_element("type", text=rng.choice(("Regular", "Featured"))))
        auction.append(_element("annotation", _element("description", _element("text", text=self.words(3, 8)))))
        return auction

    def build(self) -> ElementNode:
        site = _element("site")
        regions = _element("regions")
        region_elements = {region: _element(region) for region in REGIONS}
        for index in range(self.item_count):
            # namerica gets a double share so Q13 has matter to chew on.
            weights = [1, 1, 1, 1, 2, 1]
            region = self.rng.choices(REGIONS, weights=weights)[0]
            region_elements[region].append(self.item(index, region))
        for region in REGIONS:
            regions.append(region_elements[region])
        site.append(regions)

        categories = _element("categories")
        for index in range(self.category_count):
            category = _element("category")
            category.append(_attr("id", "category%d" % index))
            category.append(_element("name", text=self.words(1, 2)))
            category.append(_element("description", _element("text", text=self.words(3, 8))))
            categories.append(category)
        site.append(categories)

        catgraph = _element("catgraph")
        for _ in range(self.category_count):
            edge = _element("edge")
            edge.append(_attr("from", "category%d" % self.rng.randrange(self.category_count)))
            edge.append(_attr("to", "category%d" % self.rng.randrange(self.category_count)))
            catgraph.append(edge)
        site.append(catgraph)

        people = _element("people")
        for index in range(self.person_count):
            people.append(self.person(index))
        site.append(people)

        open_auctions = _element("open_auctions")
        for index in range(self.open_auction_count):
            open_auctions.append(self.open_auction(index))
        site.append(open_auctions)

        closed_auctions = _element("closed_auctions")
        for index in range(self.closed_auction_count):
            closed_auctions.append(self.closed_auction(index))
        site.append(closed_auctions)
        return site


def generate_document(scale: int = 1, seed: int = 20110322, uri: str = "auction.xml") -> Document:
    """Generate an XMark-like document.

    ``scale=1`` is roughly 100 KB serialized; size grows linearly (the
    paper's 100 KB / 10 MB settings correspond to scales 1 and ~100).
    """
    generator = _Generator(scale, seed)
    return build_document(generator.build(), uri=uri)


def generate_xml(scale: int = 1, seed: int = 20110322) -> str:
    """The serialized form of :func:`generate_document`."""
    return serialize(generate_document(scale, seed))


def size_of(document: Document) -> int:
    """Serialized size in bytes (the paper reports document sizes so)."""
    return len(serialize(document).encode("utf-8"))
