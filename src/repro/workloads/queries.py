"""The XMark views of Appendix A.6 in the Figure 3 dialect.

The appendix writes the views in general XQuery; the paper notes that
when views "used features of the language not covered by ours, we used
simplified versions which did fit our language".  The transcriptions
below make the implicit navigation variables explicit (so e.g. Q3's
``where $b/bidder/increase/text() = "4.50"`` filters the *returned*
increase), which is the same simplification.

Stored attributes follow the appendix: ``text()`` returns become
``val`` annotations, element returns become ``cont``; every val/cont
node also stores its ID (required by Algorithms 4/6).
"""

from __future__ import annotations

from typing import Dict

from repro.pattern.tree_pattern import Pattern
from repro.pattern.xquery import ViewDefinition, parse_view

VIEW_TEXTS: Dict[str, str] = {
    # Q1: people with an id attribute; returns their name strings.
    "Q1": (
        'let $auction := doc("auction.xml") return '
        "for $b in $auction/site/people/person[@id], $n in $b/name "
        "return <res><name>{string($n)}</name></res>"
    ),
    # Q2: all bid increases (content).
    "Q2": (
        'let $auction := doc("auction.xml") return '
        "for $b in $auction/site/open_auctions/open_auction, $i in $b/bidder/increase "
        "return <res><inc>{$i}</inc></res>"
    ),
    # Q3: increases equal to 4.50.
    "Q3": (
        'let $auction := doc("auction.xml") return '
        "for $b in $auction/site/open_auctions/open_auction, $i in $b/bidder/increase "
        'where string($i) = "4.50" '
        "return <res><inc>{string($i)}</inc></res>"
    ),
    # Q4: increases of auctions where person12 placed a bid.
    "Q4": (
        'let $auction := doc("auction.xml") return '
        "for $b in $auction/site/open_auctions/open_auction, $i in $b/bidder/increase "
        'where $b/bidder/personref/@person = "person12" '
        "return <res><inc>{string($i)}</inc></res>"
    ),
    # Q6: every item in every region (content).
    "Q6": (
        'let $auction := doc("auction.xml") return '
        "for $b in $auction/site/regions, $i in $b//item "
        "return <res><item>{$i}</item></res>"
    ),
    # Q13: North-American items: name string and description content.
    "Q13": (
        'let $auction := doc("auction.xml") return '
        "for $i in $auction/site/regions/namerica/item, $n in $i/name, $d in $i/description "
        "return <res><name>{string($n)}</name><desc>{$d}</desc></res>"
    ),
    # Q17: people with a homepage; returns their name strings.
    "Q17": (
        'let $auction := doc("auction.xml") return '
        "for $b in $auction/site/people/person[homepage], $n in $b/name "
        "return <res><name>{string($n)}</name></res>"
    ),
}

_cache: Dict[str, ViewDefinition] = {}


def view_definition(name: str) -> ViewDefinition:
    """The parsed definition of an XMark view (cached)."""
    if name not in VIEW_TEXTS:
        raise KeyError("unknown view %r (have %s)" % (name, sorted(VIEW_TEXTS)))
    if name not in _cache:
        _cache[name] = parse_view(VIEW_TEXTS[name])
    return _cache[name]


def view_pattern(name: str) -> Pattern:
    """A fresh (uncached) pattern for the view, safe to annotate/mutate."""
    return parse_view(VIEW_TEXTS[name]).pattern
