"""The update test set of Appendix A (XPathMark-derived).

Five target-path classes, each named by its suffix (Appendix A):

* ``L``  -- linear path expressions;
* ``LB`` -- linear with a boolean (existence) filter;
* ``A``  -- AND predicates;
* ``O``  -- OR predicates;
* ``AO`` -- combined AND + OR predicates.

Every entry is an *insertion* statement transcribed from the appendix
(target path + XML snippet).  The experiments also run each name as a
*deletion* "deleting the nodes returned by the respective XPathMark
query" -- :func:`delete_variant` derives it from the same target path.

The inserted name/increase snippets are 5-node trees (a root plus four
children), matching the Figure 28 setting where one bulk insertion
equals five IVMA node-at-a-time calls.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.updates.language import (
    DeleteUpdate,
    InsertUpdate,
    ResolvedDeleteUpdate,
    ResolvedInsertUpdate,
    UpdateStatement,
)

_NAME_SNIPPET = (
    "<name>{who}"
    "<name>and</name><name>some</name><name>test</name><name>nodes</name>"
    "</name>"
)
_INCREASE_SNIPPET = (
    "<increase>inserted {amount}"
    "<increase>and</increase><increase>some</increase>"
    "<increase>test</increase><increase>nodes</increase>"
    "</increase>"
)


def _item_snippet(label: str, location: str = "Unknown") -> str:
    return (
        "<item><location>%s</location><quantity>1</quantity>"
        "<name>%s Item</name>"
        "<payment>Creditcard, Personal Check, Cash</payment></item>" % (location, label)
    )


def _name_update(target: str, who: str) -> Tuple[str, str]:
    return target, _NAME_SNIPPET.format(who=who)


def _increase_update(target: str, amount: str) -> Tuple[str, str]:
    return target, _INCREASE_SNIPPET.format(amount=amount)


#: name -> (target path, inserted XML snippet), transcribed from Appendix A.
UPDATE_TEXTS: Dict[str, Tuple[str, str]] = {
    # --- A.1 linear path expressions ---------------------------------
    "X1_L": _name_update("/site/people/person", "Martin"),
    "X2_L": _increase_update("/site/open_auctions/open_auction/bidder", "300.00"),
    "B3_L": _increase_update("//open_auction/bidder", "100.00"),
    "E6_L": ("/site/regions/*/item", _item_snippet("E6_L")),
    "X17_L": ("/site/regions//item", _item_snippet("X17_L")),
    "B5_L": ("/site/regions/*/item/name", _item_snippet("B5_L")),
    # --- A.2 linear with boolean filter --------------------------------
    "B7_LB": _name_update("//person[profile/@income]", "Jim"),
    "B3_LB": _increase_update(
        "/site/open_auctions/open_auction[reserve]/bidder", "4.50"
    ),
    "B5_LB": ("/site/regions/*/item[name]", _item_snippet("B5_LB")),
    # --- A.3 AND predicates ----------------------------------------------
    "A6_A": _name_update("/site/people/person[phone and homepage]", "Mimma"),
    "X3_A": _increase_update(
        "/site/open_auctions/open_auction[privacy and bidder]/bidder", "150.00"
    ),
    "B1_A": (
        "/site/regions[namerica or samerica]//item",
        _item_snippet("B1_A", "Canada"),
    ),
    "E6_A": (
        "/site/regions/*/item[description][name]",
        _item_snippet("E6_A"),
    ),
    "X20_A": (
        "/site/regions//item[description][name]",
        _item_snippet("X20_A"),
    ),
    "X16_A": (
        "/site/regions/namerica/item[description and name]",
        _item_snippet("X16_A"),
    ),
    # --- A.4 OR predicates -------------------------------------------------
    "A7_O": _name_update("/site/people/person[phone or homepage]", "Ioana"),
    "X4_O": _increase_update(
        "/site/open_auctions/open_auction[bidder or privacy]/bidder", "200.00"
    ),
    "X7_O": (
        "/site/regions//item[description or name]",
        _item_snippet("X7_O"),
    ),
    "B1_O": (
        "/site/regions[namerica or samerica]/item",
        _item_snippet("B1_O", "Canada"),
    ),
    # --- A.5 AND + OR predicates ---------------------------------------------
    "A8_AO": _name_update(
        "/site/people/person[address and (phone or homepage) and (creditcard or profile)]",
        "Angela",
    ),
    "X5_AO": _increase_update(
        "/site/open_auctions/open_auction[current and (bidder or reserve)]/bidder",
        "250.00",
    ),
    "X8_AO": (
        "/site/regions//item[description and (name or mailbox)]",
        _item_snippet("X8_AO", "New Zealand"),
    ),
}

#: class suffix -> update names (the (c1)..(c5) classes of Section 6.2).
UPDATE_CLASSES: Dict[str, List[str]] = {
    "L": ["X1_L", "X2_L", "B3_L", "E6_L", "X17_L", "B5_L"],
    "LB": ["B7_LB", "B3_LB", "B5_LB"],
    "A": ["A6_A", "X3_A", "B1_A", "E6_A", "X20_A", "X16_A"],
    "O": ["A7_O", "X4_O", "X7_O", "B1_O"],
    "AO": ["A8_AO", "X5_AO", "X8_AO"],
}

#: view -> the five updates run against it in Figures 18-21 and 26-27.
VIEW_UPDATE_GROUPS: Dict[str, List[str]] = {
    "Q1": ["X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"],
    "Q2": ["X2_L", "X3_A", "X4_O", "X5_AO", "B3_LB"],
    "Q3": ["X2_L", "X3_A", "X4_O", "X5_AO", "B3_LB"],
    "Q4": ["X2_L", "X3_A", "X4_O", "X5_AO", "B3_LB"],
    "Q6": ["B1_A", "B5_LB", "E6_L", "X7_O", "X8_AO"],
    "Q13": ["B1_O", "B5_LB", "X16_A", "X17_L", "X8_AO"],
    "Q17": ["X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"],
}


def insert_update(name: str) -> InsertUpdate:
    """The insertion statement for a test-set entry."""
    target, snippet = UPDATE_TEXTS[name]
    return InsertUpdate(target, snippet, name=name)


def delete_variant(name: str) -> DeleteUpdate:
    """The deletion twin: delete the nodes the target path returns."""
    target, _snippet = UPDATE_TEXTS[name]
    return DeleteUpdate(target, name=name + "_del")


def statement_stream(
    document,
    count: int,
    seed: int = 0,
    insert_ratio: float = 1.0,
    names: Optional[Sequence[str]] = None,
) -> List[UpdateStatement]:
    """A reproducible single-target statement stream for batch runs.

    Each statement picks one Appendix-A update name, resolves its
    target path once against ``document`` (resolutions are cached per
    name) and wraps a *single* randomly chosen target as a
    Resolved statement -- the write-stream shape the batch pipeline
    and the async queue are built for.  ``insert_ratio`` is the
    fraction of insertions (the rest are single-target deletions);
    statements whose pre-resolved target has since been deleted are
    skipped by ``compute_pul`` at apply time, on both the sequential
    and the batched side, so streams stay equivalence-comparable.
    """
    rng = random.Random(seed)
    chosen_names = list(names or sorted(UPDATE_TEXTS))
    targets_by_name: Dict[str, List] = {}
    stream: List[UpdateStatement] = []
    while len(stream) < count:
        name = rng.choice(chosen_names)
        base = insert_update(name)
        targets = targets_by_name.get(name)
        if targets is None:
            targets = [node.id for node in base.target.evaluate(document)]
            targets_by_name[name] = targets
        if not targets:
            if len(targets_by_name) == len(chosen_names) and not any(
                targets_by_name.values()
            ):
                raise ValueError(
                    "no chosen update name resolves a target in this document"
                )
            continue
        target_id = rng.choice(targets)
        index = len(stream) + 1
        if rng.random() < insert_ratio:
            stream.append(
                ResolvedInsertUpdate(
                    [target_id], base.forest, name="%s#%d" % (name, index)
                )
            )
        else:
            stream.append(
                ResolvedDeleteUpdate([target_id], name="%s_del#%d" % (name, index))
            )
    return stream
