"""Mixed-churn update streams: the batches that used to force fallbacks.

:func:`~repro.workloads.updates.statement_stream` produces structurally
clean insert/delete mixes -- the shapes the Δ± term pipeline was built
for.  This module generates the *adversarial* complement, the stream
shapes that historically tripped the engine's whole-view recompute
fallbacks and now exercise the σ-flip repair and dirty-subtree
restoration paths:

* **σ-value rewrites** -- a text-bearing marker element inserted under
  a live σ-watched node (e.g. an ``increase`` whose ``val`` a view
  filters on) changes the node's ``val`` without inserting a view
  candidate, flipping the predicate *false*;
* **insert-then-delete round-trips** -- the marker is deleted a few
  batches later by a path targeting exactly that marker label, which
  restores the original ``val`` and flips the predicate back *true*
  (the admit side of the repair);
* **dirty pairs** -- an insert under a stored-``val`` node followed,
  in the *same* batch, by a path delete of a matched ancestor: the
  removed subtree's ``val`` drifted before its removal (the
  ``dirty_removed_subtree`` case);
* **skewed background churn** -- Appendix-A single-target inserts and
  deletes with a power-law skew over update names, so shard planning
  sees realistic label imbalance.

Markers get per-event labels (``flip7``, ``dirt3``), so the round-trip
deletes are precise and never collide across batches.  All randomness
comes from one ``random.Random(seed)``; resolved targets are taken
from the document *as generated*, so two engines replaying the same
batches stay byte-identical (stale targets skip at apply time on both
sides, exactly as in ``statement_stream``).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.updates.language import (
    DeleteUpdate,
    ResolvedDeleteUpdate,
    ResolvedInsertUpdate,
    UpdateStatement,
)
from repro.xmldom.parser import parse_fragment
from repro.workloads.updates import UPDATE_TEXTS, insert_update

#: default σ constants to flip: the Appendix-A increase amounts (Q3
#: filters 4.50; the σ-repair bench registers views over the others).
DEFAULT_SIGMA_VALUES = ("4.50", "100.00", "150.00", "200.00", "250.00", "300.00")


def flip_candidates(
    document, sigma_label: str = "increase", sigma_values: Optional[Sequence[str]] = None
) -> List:
    """Live ``sigma_label`` elements whose val a σ constant watches."""
    wanted = set(sigma_values) if sigma_values else None
    return [
        node
        for node in document.nodes_with_label(sigma_label)
        if node.kind == "element" and (wanted is None or node.val in wanted)
    ]


def churn_batches(
    document,
    batches: int,
    batch_size: int = 6,
    seed: int = 0,
    *,
    flips_per_batch: int = 2,
    flip_gap: int = 2,
    dirty_every: int = 3,
    skew: float = 3.0,
    sigma_label: str = "increase",
    sigma_values: Optional[Sequence[str]] = DEFAULT_SIGMA_VALUES,
    names: Optional[Sequence[str]] = None,
) -> List[List[UpdateStatement]]:
    """Generate ``batches`` statement lists with σ-flip churn.

    Each batch carries up to ``flips_per_batch`` σ-value rewrites
    (marker inserts under live ``sigma_label`` nodes), the marker
    deletes scheduled ``flip_gap`` batches earlier (flipping those σ
    values back), a dirty insert+ancestor-delete pair every
    ``dirty_every``-th batch, and skewed Appendix-A background churn
    filling up to ``batch_size`` statements.  ``skew`` is the exponent
    of the update-name choice (higher = a few names dominate).
    Round-trip deletes scheduled past the horizon flush into the last
    batch, so every stream ends with its σ values restored.
    """
    rng = random.Random(seed)
    chosen_names = list(names or sorted(UPDATE_TEXTS))
    targets_by_name: Dict[str, List] = {}
    flip_pool = flip_candidates(document, sigma_label, sigma_values)
    #: flip targets carrying a marker not yet deleted; only "clean"
    #: nodes get a fresh marker, so each marker insert really rewrites
    #: the node's original σ value.
    busy_ids: set = set()
    #: batch index -> [(round-trip delete, target id it frees)].
    pending: Dict[int, List[Tuple[UpdateStatement, object]]] = {}
    name_supply = [
        node
        for node in document.nodes_with_label("name")
        if node.kind == "element"
    ]
    marker = 0
    result: List[List[UpdateStatement]] = []
    for index in range(batches):
        batch: List[UpdateStatement] = []
        for statement, freed_id in pending.pop(index, ()):
            batch.append(statement)
            busy_ids.discard(freed_id)
        free = [node for node in flip_pool if node.id not in busy_ids]
        for _ in range(min(flips_per_batch, len(free))):
            target = free.pop(rng.randrange(len(free)))
            marker += 1
            tag = "flip%d" % marker
            batch.append(
                ResolvedInsertUpdate(
                    [target.id],
                    parse_fragment("<%s>x</%s>" % (tag, tag)),
                    name="%s#%d" % (tag, index),
                )
            )
            busy_ids.add(target.id)
            pending.setdefault(index + flip_gap, []).append(
                (
                    DeleteUpdate(
                        "//%s/%s" % (sigma_label, tag),
                        name="%s_del#%d" % (tag, index),
                    ),
                    target.id,
                )
            )
        if dirty_every and index % dirty_every == dirty_every - 1 and name_supply:
            target = name_supply.pop(rng.randrange(len(name_supply)))
            marker += 1
            tag = "dirt%d" % marker
            batch.append(
                ResolvedInsertUpdate(
                    [target.id],
                    parse_fragment("<%s>zz</%s>" % (tag, tag)),
                    name="%s#%d" % (tag, index),
                )
            )
            # Same batch: a path delete of the marked ancestor -- the
            # removed name's val drifted before its removal (a resolved
            # delete would void the insert during coalescing instead).
            batch.append(
                DeleteUpdate(
                    "//person[name/%s]" % tag, name="%s_del#%d" % (tag, index)
                )
            )
            # Names sharing the deleted person are gone too.
            person_id = _person_ancestor(target)
            if person_id is not None:
                name_supply = [
                    node
                    for node in name_supply
                    if not person_id.is_ancestor_of(node.id)
                ]
        while len(batch) < batch_size and chosen_names:
            pick = min(
                int(len(chosen_names) * (rng.random() ** skew)),
                len(chosen_names) - 1,
            )
            name = chosen_names[pick]
            base = insert_update(name)
            targets = targets_by_name.get(name)
            if targets is None:
                targets = [node.id for node in base.target.evaluate(document)]
                targets_by_name[name] = targets
            if not targets:
                chosen_names.remove(name)
                continue
            target_id = rng.choice(targets)
            label = "%s#%d.%d" % (name, index, len(batch))
            if rng.random() < 0.75:
                batch.append(
                    ResolvedInsertUpdate([target_id], base.forest, name=label)
                )
            else:
                batch.append(
                    ResolvedDeleteUpdate([target_id], name=label + "_del")
                )
        result.append(batch)
    leftovers = [
        statement
        for key in sorted(pending)
        for statement, _freed in pending[key]
    ]
    if leftovers and result:
        result[-1].extend(leftovers)
    return result


def _person_ancestor(node):
    """The Dewey ID of the nearest ``person`` ancestor, if any."""
    for ancestor_id in node.id.ancestor_ids():
        if ancestor_id.label == "person":
            return ancestor_id
    return None
