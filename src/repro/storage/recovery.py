"""Crash recovery: reopen a durable engine from its database + WAL.

The commit protocol (:mod:`repro.storage.sqlite`) guarantees that after
any process death the sqlite version ``V`` and the WAL's last committed
batch ``C`` satisfy ``V in {C-1, C}``.  :func:`reopen` therefore never
rematerializes a view whose extent tables are intact:

1. scan the WAL, truncate the torn tail (a record whose header,
   payload or checksum did not survive) *and* any intact-but-
   uncommitted suffix -- exactly the writes the crashed process never
   acknowledged, never a committed batch;
2. rebuild the document by replaying the committed statement payloads
   ``1..V`` (pure document application, no view work);
3. adopt every view: extent rows straight from its sqlite table,
   lattices from their persisted snapshots when they are fresh
   (``lattice_version == V``; a ShardSession leaves them stale on
   purpose, in which case only the lattices are rematerialized);
4. replay the WAL tail ``V+1..C`` -- at most one batch -- through the
   full engine, with the backend in replay mode so nothing is
   re-appended to the WAL.

Layering: this module sits *below* ``repro.maintenance`` and never
imports it; the engine class plugs itself in at import time through
:func:`register_engine_factory` (the same dependency inversion the
shard backend uses), wired by the ``repro`` aggregator ``__init__``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs import NULL_OBS
from repro.storage.sqlite import SqliteExtentBackend, wal_path
from repro.storage.wal import COMMIT, HEADER_SIZE, BatchWal
from repro.updates.pul import BatchApplication

#: the maintenance-engine class, registered at import time by
#: ``repro.maintenance.engine`` (dependency inversion: storage must not
#: import maintenance).
_ENGINE_FACTORY: List[Any] = [None]


def register_engine_factory(factory) -> None:
    """Install the engine class :func:`reopen` instantiates."""
    _ENGINE_FACTORY[0] = factory


class RecoveryError(Exception):
    """The database and WAL tell irreconcilable stories."""


@dataclass
class RecoveryReport:
    """What :func:`reopen` found and did, for callers and tests."""

    path: str
    last_committed_batch: int = 0
    durable_version: int = 0
    lattice_version: int = 0
    replayed_batches: int = 0
    truncated_bytes: int = 0
    torn_reason: Optional[str] = None
    views: List[str] = field(default_factory=list)
    lattices_rematerialized: int = 0
    wal_records: int = 0

    def __repr__(self) -> str:
        return (
            "RecoveryReport(C=%d, V=%d, replayed=%d, truncated=%dB%s, "
            "%d views, %d lattices rematerialized)"
            % (
                self.last_committed_batch,
                self.durable_version,
                self.replayed_batches,
                self.truncated_bytes,
                ", torn: %s" % self.torn_reason if self.torn_reason else "",
                len(self.views),
                self.lattices_rematerialized,
            )
        )


def _truncate_uncommitted(path: str, records, last_committed: int) -> Tuple[list, int]:
    """Drop intact records past the last committed batch's marker.

    A crash between the DATA record and the COMMIT marker leaves an
    intact-but-uncommitted suffix that scan() parses cleanly; keeping
    it would make the next live batch re-append the same batch ID.
    Returns the retained records and the bytes removed.
    """
    # Records are strictly sequential (DATA(k) COMMIT(k) DATA(k+1) ...),
    # so everything up to and including COMMIT(last_committed) is the
    # committed prefix and everything after it is unacknowledged.
    kept: list = []
    end = 0
    for record in records:
        kept.append(record)
        end = record.offset + HEADER_SIZE + len(record.payload)
        if record.kind == COMMIT and record.batch_id == last_committed:
            break
    if last_committed == 0:
        kept, end = [], 0
    removed = 0
    if os.path.exists(path) and os.path.getsize(path) > end:
        removed = BatchWal.truncate(path, end)
    return kept, removed


def reopen(
    path: str,
    document,
    views: Mapping[str, Any],
    *,
    obs=None,
    engine_options: Optional[Dict[str, Any]] = None,
    view_options: Optional[Dict[str, Dict[str, Any]]] = None,
):
    """Recover a durable engine: ``(engine, RecoveryReport)``.

    ``document`` is the *base* document the original engine was built
    over (recovery replays the committed batches onto it); ``views``
    maps view names to their sources (pattern / definition / XQuery
    text), exactly as passed to ``register_view`` originally;
    ``view_options`` optionally carries per-view ``strategy`` /
    ``update_profile`` keyword arguments.
    """
    factory = _ENGINE_FACTORY[0]
    if factory is None:
        raise RecoveryError(
            "no engine factory registered; import repro (or "
            "repro.maintenance) before calling reopen"
        )
    obs = obs if obs is not None else NULL_OBS
    replayed_counter = obs.metrics.counter(
        "repro_recovery_replayed_batches",
        "WAL tail batches replayed through the engine on reopen",
    )
    report = RecoveryReport(path=path)
    with obs.span("recovery"):
        log = wal_path(path)
        records, torn = BatchWal.scan(log)
        if torn is not None:
            report.torn_reason = torn.reason
            report.truncated_bytes += BatchWal.truncate(log, torn.offset)
        try:
            batches, last_committed = BatchWal.committed_statements(records)
        except ValueError as exc:
            raise RecoveryError(str(exc)) from exc
        records, removed = _truncate_uncommitted(log, records, last_committed)
        report.truncated_bytes += removed
        report.wal_records = len(records)
        report.last_committed_batch = last_committed

        backend = SqliteExtentBackend(path, obs=obs)
        version = backend.version
        report.durable_version = version
        report.lattice_version = backend.lattice_version
        if version > last_committed:
            raise RecoveryError(
                "database version %d is ahead of the WAL's last committed "
                "batch %d; the log is not this database's" % (version, last_committed)
            )

        # Phase 2: document replay.  Statement application is
        # deterministic, poison batches included: a batch that raised
        # originally partial-applies identically here (the engine
        # commits even failing batches for exactly this reason).
        for batch_id in range(1, version + 1):
            try:
                BatchApplication(document, batches[batch_id]).apply()
            except Exception:
                pass

        # Phase 3: adoption.  Extents come from the tables verbatim;
        # lattices from their snapshots only when durably fresh.
        engine = factory(document, backend=backend, obs=obs, **(engine_options or {}))
        lattices_fresh = report.lattice_version == version
        for name, source in views.items():
            options = dict(view_options.get(name, {})) if view_options else {}
            adopted = engine.adopt_view(
                source, name=name, adopt_lattice=lattices_fresh, **options
            )
            report.views.append(name)
            if not adopted:
                report.lattices_rematerialized += 1

        # Phase 4: WAL tail replay (at most one batch under the commit
        # protocol) through the full engine, WAL appends suppressed.
        backend.begin_replay(last_committed)
        for batch_id in range(version + 1, last_committed + 1):
            try:
                engine.apply_batch(batches[batch_id])
            except Exception:
                pass
            report.replayed_batches += 1
            replayed_counter.inc()
    return engine, report
