"""Durable extent storage: sqlite backend, batch WAL, crash recovery.

ROADMAP item 1: every extent historically lived in an in-memory
:class:`~repro.views.store.OrderedTupleStore`, so a process restart
forced full rematerialization.  This package adds

* :mod:`repro.storage.keyenc` -- order-preserving blob encoding of view
  tuples (Dewey sort keys included), so a sqlite B-tree orders rows
  exactly like the in-memory store's bisects;
* :mod:`repro.storage.sqlite` -- :class:`SqliteTupleStore` (the full
  ``OrderedTupleStore`` contract, write-through to one table per view
  extent) and :class:`SqliteExtentBackend` (the per-engine database:
  extent tables, lattice snapshots, batch versions);
* :mod:`repro.storage.wal` -- an append-only log of coalesced batches
  written at batch boundaries, each record checksummed and sealed by a
  commit marker;
* :mod:`repro.storage.recovery` -- reopen a database after a crash:
  truncate the torn WAL tail, replay the document, adopt the durable
  extents and replay only the WAL entries past the last durably-flipped
  view version instead of rematerializing.

The crash model is process death (SIGKILL, the crash-injection harness
under ``tests/harness/``): buffered writes flushed to the OS survive,
so neither the WAL nor sqlite needs fsync on the hot path.
"""

from repro.storage.keyenc import encode_key
from repro.storage.recovery import (
    RecoveryError,
    RecoveryReport,
    register_engine_factory,
    reopen,
)
from repro.storage.sqlite import SqliteExtentBackend, SqliteTupleStore
from repro.storage.wal import BatchWal, WalRecord

__all__ = [
    "BatchWal",
    "RecoveryError",
    "RecoveryReport",
    "SqliteExtentBackend",
    "SqliteTupleStore",
    "WalRecord",
    "encode_key",
    "register_engine_factory",
    "reopen",
]
