"""Named crash points for the fault-injection harness.

The crash-injection harness (``tests/harness/crashkit.py``) runs an
engine workload in a subprocess with ``REPRO_CRASH_POINT=<name>:<n>``
in its environment; the ``n``-th time execution passes the named point
the process SIGKILLs itself -- no cleanup handlers, no atexit, exactly
the adversarial death the durability layer must survive.  The points:

* ``after_wal_append``   -- WAL data record written, nothing applied;
* ``mid_bulk_apply``     -- some extents updated in memory, none durable;
* ``before_commit_marker`` -- batch fully applied, marker not written;
* ``after_commit_marker``  -- marker written, sqlite txn not committed.

With the variable unset (every production run) the hook is a single
``None`` check.  The environment is read once at import: the spec is
part of the process's identity, not mutable runtime state.
"""

from __future__ import annotations

import os
import signal
from typing import Dict

CRASH_POINTS = (
    "after_wal_append",
    "mid_bulk_apply",
    "before_commit_marker",
    "after_commit_marker",
)

_SPEC = os.environ.get("REPRO_CRASH_POINT")
_armed_point = None
_armed_hits = 0
#: only the process that armed the spec dies: forked workers (session
#: replicas, shard pools) inherit the environment but must not consume
#: the hit budget or kill themselves -- the harness targets the engine
#: owner, whose death orphans the workers anyway.
_armed_pid = os.getpid()
if _SPEC:
    _point, _, _nth = _SPEC.partition(":")
    _armed_point = _point
    _armed_hits = int(_nth) if _nth else 1

_hits: Dict[str, int] = {}


def crash_point(name: str) -> None:
    """Die here (SIGKILL) when this point is the armed one."""
    if _armed_point is None or name != _armed_point:
        return
    if os.getpid() != _armed_pid:
        return
    _hits[name] = _hits.get(name, 0) + 1
    if _hits[name] >= _armed_hits:
        os.kill(os.getpid(), signal.SIGKILL)
