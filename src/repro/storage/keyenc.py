"""Order-preserving (memcomparable) encoding of view-tuple keys.

A sqlite B-tree orders BLOB columns by ``memcmp``; the in-memory store
orders view tuples by :func:`repro.views.view.row_sort_key`.  For the
two stores to be interchangeable behind one contract, the mapping from
tuple to blob must satisfy

    encode_key(a) < encode_key(b)  iff  sort-order(a) < sort-order(b)

for every pair of comparable keys.  The delicate cell type is
:class:`~repro.xmldom.dewey.DeweyID`, whose document order compares
dynamic ordinals *with implicit zero-padding on the right* and admits
negative components (``ordinal_before``): a naive per-component dump
orders ``(1,)`` before ``(1, -1)``, the padded order says the opposite.

Each ordinal is therefore encoded as a sequence of
``(run-of-zeros, nonzero component)`` events:

* a negative component after ``r`` zeros emits ``0x01 enc(r) enc(c)``;
* the end of the ordinal emits ``0x02``;
* a positive component after ``r`` zeros emits ``0x03 enc(-r) enc(c)``.

At the first divergence between two ordinals the tag bytes alone order
negative-next < exhausted (all zeros from here) < positive-next, and
within a tag the run length is ordered so that the *earlier* position
wins -- exactly the padded comparison.  ``enc`` is an order-preserving
integer code (biased length prefix + big-endian magnitude, complemented
for negatives) and never emits a ``0x00`` lead byte, so the ``0x00``
terminators of strings and step lists stay unambiguous.
"""

from __future__ import annotations

from typing import Any

from repro.xmldom.dewey import DeweyID

#: cell type tags, ordered; distinct types order by tag (the in-memory
#: store would raise on such comparisons, so any total order is valid).
_TAG_NONE = b"\x05"
_TAG_INT = b"\x10"
_TAG_STR = b"\x20"
_TAG_BYTES = b"\x30"
_TAG_DEWEY = b"\x40"
_TAG_TUPLE = b"\x50"

#: event tags inside an ordinal encoding (comparison-ordered).
_ORD_NEG = 0x01
_ORD_END = 0x02
_ORD_POS = 0x03


def _encode_int(value: int, out: bytearray) -> None:
    """Order-preserving signed integer: biased length byte + magnitude.

    Zero is ``0x80``; a positive ``v`` is ``0x80+len`` then big-endian
    bytes of ``v``; a negative ``v`` is ``0x80-len`` then the big-endian
    bytes of ``v + 256**len`` (the complement, so closer-to-zero sorts
    higher).  The lead byte spans ``0x02..0xFE``: never ``0x00``.
    """
    if value == 0:
        out.append(0x80)
        return
    magnitude = value if value > 0 else -value
    length = (magnitude.bit_length() + 7) // 8
    if length > 0x7E:
        raise ValueError("integer too wide to encode: %d bytes" % length)
    if value > 0:
        out.append(0x80 + length)
        out.extend(value.to_bytes(length, "big"))
    else:
        out.append(0x80 - length)
        out.extend((value + (1 << (8 * length))).to_bytes(length, "big"))


def _encode_terminated(data: bytes, out: bytearray) -> None:
    """Escape ``0x00`` as ``0x00 0xFF`` and close with ``0x00 0x00``,
    keeping byte order intact across the variable length."""
    out.extend(data.replace(b"\x00", b"\x00\xff"))
    out.extend(b"\x00\x00")


def _encode_ordinal(ordinal, out: bytearray) -> None:
    zeros = 0
    for component in ordinal:
        if component == 0:
            zeros += 1
            continue
        if component < 0:
            out.append(_ORD_NEG)
            _encode_int(zeros, out)
        else:
            out.append(_ORD_POS)
            _encode_int(-zeros, out)
        _encode_int(component, out)
        zeros = 0
    # Trailing zeros vanish: under padded comparison they are the same
    # ordinal, and normalized ordinals never carry them anyway.
    out.append(_ORD_END)


def _encode_dewey(dewey: DeweyID, out: bytearray) -> None:
    for label, ordinal in dewey.steps:
        _encode_ordinal(ordinal, out)
        _encode_terminated(label.encode("utf-8"), out)
    out.append(0x00)


def _encode_cell(cell: Any, out: bytearray) -> None:
    if cell is None:
        out.extend(_TAG_NONE)
    elif isinstance(cell, DeweyID):
        out.extend(_TAG_DEWEY)
        _encode_dewey(cell, out)
    elif isinstance(cell, bool) or isinstance(cell, int):
        out.extend(_TAG_INT)
        _encode_int(int(cell), out)
    elif isinstance(cell, str):
        out.extend(_TAG_STR)
        _encode_terminated(cell.encode("utf-8"), out)
    elif isinstance(cell, bytes):
        out.extend(_TAG_BYTES)
        _encode_terminated(cell, out)
    elif isinstance(cell, tuple):
        out.extend(_TAG_TUPLE)
        for inner in cell:
            _encode_cell(inner, out)
        out.append(0x00)
    else:
        raise TypeError(
            "cannot order-encode %r (%s); supported cell types: None, "
            "int, str, bytes, DeweyID, tuple" % (cell, type(cell).__name__)
        )


def encode_key(key: Any) -> bytes:
    """The memcomparable blob for a store key (a view tuple or scalar).

    View tuples encode cell by cell with no outer terminator -- store
    keys are never prefixes of one another across *comparable* keys
    because cell encodings are self-delimiting, and a shorter tuple
    ends in fewer bytes, sorting first exactly like tuple comparison.
    """
    out = bytearray()
    if isinstance(key, tuple):
        for cell in key:
            _encode_cell(cell, out)
    else:
        _encode_cell(key, out)
    return bytes(out)
