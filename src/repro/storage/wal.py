"""Append-only write-ahead log of coalesced update batches.

One record per event, framed as::

    type(1) | batch_id(8, big-endian) | payload_len(4) | crc32(4) | payload

``type`` is ``DATA`` (the pickled coalesced statement list of one
batch) or ``COMMIT`` (empty payload: the batch's effects are fully
applied in memory and about to become durable).  The CRC covers the
header fields *and* the payload, so a bit flip anywhere in a record is
detected, not just in its body.  Batch IDs are assigned by the backend,
monotonically from 1.

Durability protocol (see :mod:`repro.storage.sqlite`): ``DATA`` is
appended before the batch touches any state, ``COMMIT`` after the
in-memory application succeeds, and the sqlite version bump commits
last.  A scan therefore classifies the tail unambiguously: a batch is
*committed* iff both its records are intact; anything after the last
intact record is a torn tail and is truncated on recovery.

The crash model is process death (SIGKILL): ``flush()`` to the OS page
cache is durable, no fsync needed.  The file handle never crosses the
fork boundary live -- appends are pid-guarded and the handle refuses to
pickle.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

from repro.storage.crashpoints import crash_point

DATA = 1
COMMIT = 2

_HEADER = struct.Struct(">BQII")  # type, batch_id, payload_len, crc32
HEADER_SIZE = _HEADER.size


class WalRecord(NamedTuple):
    kind: int
    batch_id: int
    payload: bytes
    offset: int  # file offset of this record's header


class TornTail(NamedTuple):
    """The scan's verdict on a damaged suffix."""

    offset: int  # first byte that did not parse cleanly
    reason: str


def _crc(kind: int, batch_id: int, payload: bytes) -> int:
    head = struct.pack(">BQI", kind, batch_id, len(payload))
    return zlib.crc32(payload, zlib.crc32(head))


class BatchWal:
    """Appender over one WAL file (created on first use)."""

    def __init__(self, path: str, records_counter=None):
        self.path = path
        self._pid = os.getpid()
        self._handle = open(path, "ab")
        #: optional ``repro_wal_records_total`` counter (labeled by kind).
        self._records_counter = records_counter

    @property
    def writable(self) -> bool:
        """False in forked children: the offset is shared with the
        parent, so a child append would interleave torn frames."""
        return self._pid == os.getpid()

    def __getstate__(self):
        raise TypeError(
            "BatchWal holds an open file handle and must not cross the "
            "fork/pickle boundary; reopen by path instead"
        )

    def _append(self, kind: int, batch_id: int, payload: bytes) -> None:
        if not self.writable:
            raise RuntimeError("WAL appended from a forked child")
        record = _HEADER.pack(kind, batch_id, len(payload), _crc(kind, batch_id, payload))
        self._handle.write(record + payload)
        self._handle.flush()
        if self._records_counter is not None:
            self._records_counter.inc(
                labels=("data" if kind == DATA else "commit",)
            )

    def append_batch(self, batch_id: int, statements: Sequence[Any]) -> None:
        """The DATA record: one batch's coalesced statements, pickled."""
        self._append(DATA, batch_id, pickle.dumps(list(statements), protocol=pickle.HIGHEST_PROTOCOL))
        crash_point("after_wal_append")

    def append_commit(self, batch_id: int) -> None:
        crash_point("before_commit_marker")
        self._append(COMMIT, batch_id, b"")
        crash_point("after_commit_marker")

    def close(self) -> None:
        if self.writable:
            self._handle.close()

    # -- reading ----------------------------------------------------------

    @staticmethod
    def scan(path: str) -> Tuple[List[WalRecord], Optional[TornTail]]:
        """Every intact record in order, plus the torn tail if any.

        Parsing stops at the first record whose header is short, whose
        payload is short, whose type is unknown or whose CRC mismatches;
        committed records before that point are never discarded.
        """
        if not os.path.exists(path):
            return [], None
        with open(path, "rb") as handle:
            data = handle.read()
        records: List[WalRecord] = []
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                return records, TornTail(offset, "short header")
            kind, batch_id, length, crc = _HEADER.unpack_from(data, offset)
            body_start = offset + _HEADER.size
            if kind not in (DATA, COMMIT):
                return records, TornTail(offset, "unknown record type %d" % kind)
            if body_start + length > len(data):
                return records, TornTail(offset, "short payload")
            payload = data[body_start : body_start + length]
            if _crc(kind, batch_id, payload) != crc:
                return records, TornTail(offset, "checksum mismatch")
            records.append(WalRecord(kind, batch_id, payload, offset))
            offset = body_start + length
        return records, None

    @staticmethod
    def truncate(path: str, offset: int) -> int:
        """Drop the torn tail; returns the number of bytes removed."""
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(offset)
        return size - offset

    @staticmethod
    def committed_statements(records: Sequence[WalRecord]):
        """``{batch_id: statements}`` for every committed batch, plus
        the last committed ID (0 when none).

        IDs must be contiguous from 1 -- a gap means the log and the
        database disagree about history, which recovery treats as
        corruption rather than guessing.
        """
        data_by_id = {}
        committed = set()
        for record in records:
            if record.kind == DATA:
                data_by_id[record.batch_id] = record.payload
            else:
                if record.batch_id in data_by_id:
                    committed.add(record.batch_id)
        last = 0
        batches = {}
        for batch_id in sorted(committed):
            if batch_id != last + 1:
                raise ValueError(
                    "WAL commit sequence has a gap: %d follows %d" % (batch_id, last)
                )
            batches[batch_id] = pickle.loads(data_by_id[batch_id])
            last = batch_id
        return batches, last
