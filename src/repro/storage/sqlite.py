"""Sqlite-backed extent storage behind the ``OrderedTupleStore`` contract.

Two classes split the work:

* :class:`SqliteTupleStore` -- one view extent.  It *is* an
  :class:`~repro.views.store.OrderedTupleStore` (the in-memory mirror
  serves every read, bisecting over memcomparable key blobs), and every
  write is additionally journaled as a pending row operation against
  the extent's table.  Reads therefore cost exactly what the in-memory
  backend costs; the durable side is paid once per batch.
* :class:`SqliteExtentBackend` -- one engine's database: the extent
  tables, per-view lattice snapshots (rows as DeweyID tuples, resolved
  against the live document on reopen), the batch version in ``meta``
  and the batch WAL next to the database file.

Commit protocol, per batch (driven by the maintenance engine)::

    WAL DATA record  ->  in-memory apply (ops buffered)  ->
    WAL COMMIT marker  ->  one sqlite txn: ops + lattices + version

so after a crash the database version ``V`` and the WAL's last
committed batch ``C`` satisfy ``V in {C-1, C}``, and recovery replays
at most one batch beyond adopting the tables verbatim.

Fork safety: connections, WAL handles and buffered ops are pid-guarded.
A forked replica (ShardSession worker) inherits the store objects by
COW and keeps using them as plain in-memory mirrors -- its writes are
never journaled, its inherited handles never touched.  Pickling either
class is refused outright.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
from collections import Counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import operator

from repro.algebra.relation import Relation
from repro.obs import NULL_OBS
from repro.storage.crashpoints import crash_point
from repro.storage.keyenc import encode_key
from repro.storage.wal import BatchWal
from repro.views.store import DELETED, OrderedTupleStore

_FORMAT = 2

#: rewrite a lattice's chunk sequence from scratch once it grows this
#: long (bounds reopen cost and file growth under long-lived engines).
_LATTICE_COMPACT_SEQS = 64


def _pickle(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def wal_path(db_path: str) -> str:
    """The batch WAL lives next to the database file."""
    return db_path + ".batchlog"


class SqliteTupleStore(OrderedTupleStore):
    """Write-through extent store: in-memory mirror + journaled table.

    Honors the whole ``OrderedTupleStore`` contract (``bulk_apply``
    one-pass merges, ``order_key`` bisects, ``load_sorted``, lazy
    ``items()`` / materialized ``snapshot()``).  The mirror orders by
    the caller's ``order_key`` exactly like the in-memory store, so the
    hot path pays nothing extra; keys are only rendered to
    :func:`~repro.storage.keyenc.encode_key` blobs at flush time, where
    they serve as the table's primary key.  ``encode_key`` induces the
    same total order as ``row_sort_key`` (property-tested), so ``ORDER
    BY k`` output is adoption-ready.
    """

    def __init__(self, backend: "SqliteExtentBackend", table: str,
                 order_key: Optional[Callable[[Any], Any]] = None):
        super().__init__(order_key=order_key)
        self._backend = backend
        self._table = table
        #: pending (key, value) row ops since the last durable flush;
        #: value ``DELETED`` drops the key, ``_reload`` voids them all.
        self._ops: List[Tuple[Any, Any]] = []
        self._reload = False

    def __getstate__(self):
        raise TypeError(
            "SqliteTupleStore is bound to a sqlite connection and must "
            "not cross the fork/pickle boundary; ship row pairs instead"
        )

    def _journaling(self) -> bool:
        return self._backend.writable

    # -- journaled writes --------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        super().put(key, value)
        if self._journaling():
            self._ops.append((key, value))

    def delete(self, key: Any) -> bool:
        found = super().delete(key)
        if found and self._journaling():
            self._ops.append((key, DELETED))
        return found

    def clear(self) -> None:
        super().clear()
        if self._journaling():
            self._ops.clear()
            self._reload = True

    def bulk_apply(self, changes: Iterable[Tuple[Any, Any]]) -> None:
        if not self._journaling():
            super().bulk_apply(changes)
            return
        taken = list(changes)
        super().bulk_apply(taken)
        # Only journal once the merge validated the whole change list
        # (a non-monotone iterable raises mid-way and changes nothing
        # durable, matching the in-memory store's all-or-error shape
        # closely enough for the poison paths that recompute anyway).
        self._ops.extend(taken)
        crash_point("mid_bulk_apply")

    def load_sorted(self, items: Iterable[Tuple[Any, Any]]) -> None:
        super().load_sorted(items)
        if self._journaling():
            self._ops.clear()
            self._reload = True

    def adopt(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Install rows already durable in this store's table (recovery):
        loads the mirror without journaling a rewrite."""
        super().load_sorted(items)
        self._ops.clear()
        self._reload = False

    def adopt_encoded(self, rows: Iterable[Tuple[bytes, Any, Any]]) -> None:
        """Adopt ``(blob, key, value)`` triples straight from the table.

        ``ORDER BY k`` output is already in mirror order (the blob
        primary key induces the same total order as ``order_key``), so
        adoption skips :meth:`load_sorted`'s monotonicity re-check.
        """
        super().clear()
        separate_order = self._order_key is not None
        for _blob, key, value in rows:
            self._keys.append(key)
            self._values.append(value)
            if separate_order:
                self._order.append(self._order_key(key))
        self._ops.clear()
        self._reload = False

    # -- durable flush (called by the backend, inside its txn) -------------

    def _flush_into(self, cursor) -> None:
        if self._reload:
            cursor.execute('DELETE FROM "%s"' % self._table)
            cursor.executemany(
                'INSERT INTO "%s"(k, row, val) VALUES(?, ?, ?)' % self._table,
                (
                    (encode_key(key), _pickle(key), _pickle(value))
                    for key, value in self.items()
                ),
            )
        elif self._ops:
            # Ops are absolute (put stores a value, delete drops the
            # key), so per key only the last one matters: coalesce,
            # then encode/pickle each surviving key exactly once.
            final: Dict[Any, Any] = {}
            for key, value in self._ops:
                final[key] = value
            deletes = []
            puts = []
            for key, value in final.items():
                if value is DELETED:
                    deletes.append((encode_key(key),))
                else:
                    puts.append((encode_key(key), _pickle(key), _pickle(value)))
            if deletes:
                cursor.executemany(
                    'DELETE FROM "%s" WHERE k = ?' % self._table, deletes
                )
            if puts:
                cursor.executemany(
                    'INSERT OR REPLACE INTO "%s"(k, row, val) VALUES(?, ?, ?)'
                    % self._table,
                    puts,
                )
        self._ops.clear()
        self._reload = False

    @property
    def pending_ops(self) -> int:
        return len(self._ops)


class SqliteExtentBackend:
    """One engine's durable state: extent tables + lattices + WAL."""

    def __init__(self, path: str, obs=None):
        self.path = path
        self._pid = os.getpid()
        # The queue applies batches on its worker thread while the
        # engine is built on the caller's; access is already serialized
        # batch-at-a-time, so cross-thread use is safe.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        # Crash model is process death, not power loss: the page cache
        # survives SIGKILL, so fsync buys nothing on the hot path.
        self._conn.execute("PRAGMA synchronous=OFF")
        self._init_schema()
        self._stores: Dict[str, SqliteTupleStore] = {}
        #: ``(rows, next_seq)`` per (view, subset) at last persist: the
        #: rows-list identity marks a relation clean while unchanged,
        #: and ``next_seq`` is the chunk number a delta would get.
        self._lattice_refs: Dict[Tuple[str, str], Any] = {}
        #: batches with IDs <= this replay without re-appending to the
        #: WAL (their records are already durable).
        self._replay_until = 0
        self.obs = obs if obs is not None else NULL_OBS
        self._records_counter = self.obs.metrics.counter(
            "repro_wal_records_total", "WAL records appended", ("kind",)
        )
        self.wal = BatchWal(wal_path(path), records_counter=self._records_counter)

    def bind_obs(self, obs) -> None:
        """Adopt the engine's telemetry facade (when the backend was
        built without one of its own)."""
        if obs is None or obs is self.obs or self.obs is not NULL_OBS:
            return
        self.obs = obs
        self._records_counter = obs.metrics.counter(
            "repro_wal_records_total", "WAL records appended", ("kind",)
        )
        self.wal._records_counter = self._records_counter

    def __getstate__(self):
        raise TypeError(
            "SqliteExtentBackend holds a sqlite connection and a WAL "
            "handle and must not cross the fork/pickle boundary; "
            "recovery reopens by path"
        )

    @property
    def writable(self) -> bool:
        """False in forked children (pid guard): replicas run on their
        COW in-memory mirrors and never touch inherited handles."""
        return self._pid == os.getpid()

    def _init_schema(self) -> None:
        cursor = self._conn.cursor()
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS meta(key TEXT PRIMARY KEY, value INTEGER)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS extents(view TEXT PRIMARY KEY, tbl TEXT NOT NULL)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS lattices("
            "view TEXT, subset TEXT, seq INTEGER, payload BLOB, "
            "PRIMARY KEY(view, subset, seq))"
        )
        cursor.execute(
            "INSERT OR IGNORE INTO meta(key, value) VALUES('format', ?)", (_FORMAT,)
        )
        cursor.execute("INSERT OR IGNORE INTO meta(key, value) VALUES('version', 0)")
        cursor.execute(
            "INSERT OR IGNORE INTO meta(key, value) VALUES('lattice_version', 0)"
        )
        self._conn.commit()

    def _meta(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return 0 if row is None else int(row[0])

    @property
    def version(self) -> int:
        """The last batch whose effects are durable in the tables."""
        return self._meta("version")

    @property
    def lattice_version(self) -> int:
        """The batch the persisted lattice snapshots correspond to.
        Falls behind ``version`` while a ShardSession owns the lattices
        (they are stale on the owner by design); recovery then
        rematerializes lattices instead of adopting them."""
        return self._meta("lattice_version")

    @property
    def next_batch_id(self) -> int:
        return self.version + 1

    # -- store registry ----------------------------------------------------

    def store_factory(self, view_name: str):
        """A ``MaterializedView`` store factory bound to this backend."""

        def factory(order_key=None) -> SqliteTupleStore:
            return self.store_for(view_name, order_key=order_key)

        return factory

    def store_for(self, view_name: str, order_key=None) -> SqliteTupleStore:
        existing = self._stores.get(view_name)
        if existing is not None:
            return existing
        row = self._conn.execute(
            "SELECT tbl FROM extents WHERE view = ?", (view_name,)
        ).fetchone()
        if row is not None:
            table = row[0]
        else:
            table = "extent_%d" % (
                self._conn.execute("SELECT COUNT(*) FROM extents").fetchone()[0] + 1
            )
            self._conn.execute(
                "INSERT INTO extents(view, tbl) VALUES(?, ?)", (view_name, table)
            )
            self._conn.execute(
                'CREATE TABLE IF NOT EXISTS "%s"(k BLOB PRIMARY KEY, row BLOB, val BLOB)'
                % table
            )
            self._conn.commit()
        store = SqliteTupleStore(self, table, order_key=order_key)
        self._stores[view_name] = store
        return store

    def drop_view(self, view_name: str) -> None:
        store = self._stores.pop(view_name, None)
        if store is not None and self.writable:
            self._conn.execute('DELETE FROM "%s"' % store._table)
            self._conn.execute("DELETE FROM extents WHERE view = ?", (view_name,))
            self._conn.execute("DELETE FROM lattices WHERE view = ?", (view_name,))
            self._conn.commit()
        self._lattice_refs = {
            key: ref for key, ref in self._lattice_refs.items() if key[0] != view_name
        }

    def stored_extent(self, view_name: str) -> List[Tuple[Any, Any]]:
        """The durable rows of one extent, in key order (for adoption)."""
        return [(key, value) for _, key, value in self.stored_extent_rows(view_name)]

    def stored_extent_rows(self, view_name: str) -> List[Tuple[bytes, Any, Any]]:
        """``(blob, key, value)`` triples in key order, blobs included
        so adoption can reuse them as ready-made order keys."""
        row = self._conn.execute(
            "SELECT tbl FROM extents WHERE view = ?", (view_name,)
        ).fetchone()
        if row is None:
            raise KeyError("no durable extent for view %r" % view_name)
        return [
            (bytes(blob), pickle.loads(key), pickle.loads(value))
            for blob, key, value in self._conn.execute(
                'SELECT k, row, val FROM "%s" ORDER BY k' % row[0]
            )
        ]

    # -- batch commit protocol --------------------------------------------

    def begin_batch(self, statements) -> int:
        """Log the batch ahead of any application; returns its ID."""
        batch_id = self.next_batch_id
        if batch_id > self._replay_until:
            self.wal.append_batch(batch_id, statements)
        return batch_id

    def commit_batch(self, batch_id: int, views, include_lattices: bool = True) -> None:
        """Seal the batch: WAL commit marker, then one sqlite txn."""
        if batch_id > self._replay_until:
            self.wal.append_commit(batch_id)
        cursor = self._conn.cursor()
        cursor.execute("BEGIN")
        for store in self._stores.values():
            store._flush_into(cursor)
        cursor.execute(
            "UPDATE meta SET value = ? WHERE key = 'version'", (batch_id,)
        )
        if include_lattices:
            self._persist_lattices(cursor, views)
            cursor.execute(
                "UPDATE meta SET value = ? WHERE key = 'lattice_version'", (batch_id,)
            )
        self._conn.commit()

    def sync(self, views, include_lattices: bool = True) -> None:
        """Checkpoint outside the batch protocol (registration, session
        close, queue close): flush pending ops and lattices at the
        current version without consuming a batch ID."""
        if not self.writable:
            return
        cursor = self._conn.cursor()
        cursor.execute("BEGIN")
        for store in self._stores.values():
            store._flush_into(cursor)
        if include_lattices:
            self._persist_lattices(cursor, views)
            cursor.execute(
                "UPDATE meta SET value = ? WHERE key = 'lattice_version'",
                (self._meta("version"),),
            )
        self._conn.commit()

    def begin_replay(self, last_committed: int) -> None:
        self._replay_until = last_committed

    # -- lattice snapshots -------------------------------------------------

    @staticmethod
    def _subset_key(subset) -> str:
        return ",".join(sorted(subset))

    @staticmethod
    def _id_rows(rows) -> List[Tuple[Any, ...]]:
        return [tuple(cell.id for cell in row) for row in rows]

    @staticmethod
    def _rows_delta(previous, rows):
        """``(added, dropped)`` such that previous - dropped + added ==
        rows, by object identity.

        One two-pointer pass over the longest common identity
        subsequence: sound for *any* pair of lists (whatever fails to
        match is dropped/added wholesale), and minimal for the shape
        the lattice upkeep actually produces -- surviving rows keep
        their relative order and fresh derivations are appended.
        """
        i, n = 0, len(previous)
        k, m = 0, len(rows)
        dropped = []
        while i < n and k < m:
            if previous[i] is rows[k]:
                i += 1
                k += 1
            else:
                dropped.append(previous[i])
                i += 1
        dropped.extend(previous[i:])
        return rows[k:], dropped

    def _persist_lattices(self, cursor, views) -> None:
        """Write changed snowcap relations as chunked DeweyID deltas.

        Relations are dirty-tracked by rows-list identity: the lattice
        upkeep paths install a fresh list on every real change and
        leave untouched relations aliased, so an unchanged relation
        costs one ``is`` check here.  A changed relation appends one
        ``(schema, added_id_rows, dropped_id_rows)`` chunk covering
        just the delta (:meth:`_rows_delta`), so both insert- and
        delete-heavy batches pickle O(changed rows), not the whole
        relation.  The chunk sequence is compacted back to a single
        snapshot once it exceeds ``_LATTICE_COMPACT_SEQS``.
        """
        for name, registered in views.items():
            lattice = registered.lattice
            for subset in lattice.materialized_sets():
                relation = lattice.relation_for(subset)
                key = (name, self._subset_key(subset))
                state = self._lattice_refs.get(key)
                rows = relation.rows
                if state is not None and state[0] is rows:
                    continue
                if state is None:
                    previous, seq = None, 0
                else:
                    previous, seq = state
                    if len(previous) <= len(rows) and all(
                        map(operator.is_, previous, rows)
                    ):
                        added, dropped = rows[len(previous):], []
                    else:
                        added, dropped = self._rows_delta(previous, rows)
                    if not added and not dropped:  # fresh list, same rows
                        self._lattice_refs[key] = (rows, seq)
                        continue
                if previous is None or seq >= _LATTICE_COMPACT_SEQS:
                    cursor.execute(
                        "DELETE FROM lattices WHERE view = ? AND subset = ?",
                        (name, key[1]),
                    )
                    seq, added, dropped = 0, rows, []
                payload = _pickle(
                    (
                        list(relation.schema),
                        self._id_rows(added),
                        self._id_rows(dropped),
                    )
                )
                cursor.execute(
                    "INSERT INTO lattices(view, subset, seq, payload) "
                    "VALUES(?, ?, ?, ?)",
                    (name, key[1], seq, payload),
                )
                self._lattice_refs[key] = (rows, seq + 1)

    def _collapsed_chunks(self, view_name: str, subset_key: str):
        """``(schema, id_rows, chunk_count)`` after replaying the chunk
        sequence of one relation; ``chunk_count`` 0 when no snapshot."""
        chunks = self._conn.execute(
            "SELECT payload FROM lattices WHERE view = ? AND subset = ? "
            "ORDER BY seq",
            (view_name, subset_key),
        ).fetchall()
        schema: Any = None
        id_rows: List[Any] = []
        for (payload,) in chunks:
            chunk_schema, added, dropped = pickle.loads(payload)
            if schema is None:
                schema = chunk_schema
            if dropped:
                pending = Counter(dropped)
                kept = []
                for id_row in id_rows:
                    if pending.get(id_row, 0):
                        pending[id_row] -= 1
                    else:
                        kept.append(id_row)
                id_rows = kept
            id_rows.extend(added)
        return schema, id_rows, len(chunks)

    def compact_lattices(self) -> None:
        """Collapse every chunk sequence to one snapshot (clean
        shutdown): reopen then loads each relation from a single chunk
        instead of replaying the batch-by-batch delta history."""
        if not self.writable:
            return
        targets = self._conn.execute(
            "SELECT view, subset FROM lattices GROUP BY view, subset "
            "HAVING MAX(seq) > 0"
        ).fetchall()
        if not targets:
            return
        cursor = self._conn.cursor()
        cursor.execute("BEGIN")
        for view_name, subset_key in targets:
            schema, id_rows, _ = self._collapsed_chunks(view_name, subset_key)
            cursor.execute(
                "DELETE FROM lattices WHERE view = ? AND subset = ?",
                (view_name, subset_key),
            )
            cursor.execute(
                "INSERT INTO lattices(view, subset, seq, payload) "
                "VALUES(?, ?, 0, ?)",
                (view_name, subset_key, _pickle((schema, id_rows, []))),
            )
            state = self._lattice_refs.get((view_name, subset_key))
            if state is not None:
                self._lattice_refs[(view_name, subset_key)] = (state[0], 1)
        self._conn.commit()

    def load_lattice(self, view_name: str, selected, document) -> Dict[Any, Relation]:
        """Resolve the persisted snowcap relations against a document.

        Raises :class:`KeyError` when a selected subset has no snapshot
        and :class:`ValueError` when a row references a node absent from
        the document -- both make the caller fall back to
        materialization.
        """
        relations: Dict[Any, Relation] = {}
        for subset in selected:
            schema, id_rows, chunk_count = self._collapsed_chunks(
                view_name, self._subset_key(subset)
            )
            if not chunk_count:
                raise KeyError(
                    "no lattice snapshot for %s/%s" % (view_name, sorted(subset))
                )
            rows = []
            for id_row in id_rows:
                cells = tuple(document.node_by_id(dewey) for dewey in id_row)
                if any(cell is None for cell in cells):
                    raise ValueError(
                        "lattice snapshot row of %s references a node "
                        "absent from the document" % view_name
                    )
                rows.append(cells)
            relations[subset] = Relation(schema, rows)
        return relations

    def mark_lattice_adopted(self, view_name: str, lattice) -> None:
        """Record the adopted relations as clean for dirty tracking."""
        for subset in lattice.materialized_sets():
            relation = lattice.relation_for(subset)
            subset_key = self._subset_key(subset)
            next_seq = (
                self._conn.execute(
                    "SELECT COALESCE(MAX(seq), -1) FROM lattices "
                    "WHERE view = ? AND subset = ?",
                    (view_name, subset_key),
                ).fetchone()[0]
                + 1
            )
            self._lattice_refs[(view_name, subset_key)] = (relation.rows, next_seq)

    def close(self) -> None:
        if self.writable:
            self.compact_lattices()
            self._conn.close()
            self.wal.close()

    def __repr__(self) -> str:
        return "SqliteExtentBackend(%r, version=%d)" % (self.path, self.version)
