"""repro: incremental XML materialized-view maintenance at scale.

This ``__init__`` is the *aggregator*: the one module allowed (and
required) to know the whole layer stack.  Importing the top of the
stack here guarantees that cross-layer seams wired by import-time
registration -- today, ``repro.sharding`` installing itself as the
maintenance engine's shard backend -- are connected before any
``repro.*`` submodule code runs, since Python always initializes a
parent package before its children.

The layer DAG itself (xmldom -> algebra -> pattern -> updates -> views
-> schema/optimizer/workloads -> maintenance -> sharding/baselines ->
bench/analysis) is machine-checked by ``python -m repro.analysis``;
this file is exempt as the aggregator.
"""

import repro.sharding as _sharding  # noqa: F401 (registers the shard backend)
