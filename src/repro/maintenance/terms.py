"""Union/difference terms, pruning criteria and the term evaluator.

Propagating an update ``u`` to a view of ``k`` nodes means evaluating a
union (insertions, Section 3.1) or signed difference (deletions,
Section 4.1) of up to ``2^k − 1`` join terms.  A term assigns each view
node either its canonical relation ``R`` or the update's Δ table; we
represent a term by its *Δ-set* (the view nodes reading from Δ).

Pruning:

* **Props. 3.3 / 4.2 (update semantics).**  A term containing
  ``Δ_{n1} ⋈ R_{n2}`` for a pattern edge ``n1 → n2`` is empty: inserts
  add children (never parents), deletes take whole subtrees.  Hence
  surviving Δ-sets are exactly the *descendant-closed* node sets, whose
  complements are the snowcaps (Prop. 3.12).
* **Prop. 3.6 (inserted data).**  A term whose Δ-set touches an empty
  (σ-filtered) Δ table is empty.
* **Prop. 3.8 / 4.7 (IDs).**  For a boundary edge ``R_{n1} ⋈ Δ_{n2}``:
  if no insertion target (resp. no Δ− node) lies under -- per its Dewey
  ID's ancestor labels -- an ``n1``-labeled node, the term is empty.
* **Prop. 4.3 (sign parity).**  Deletion terms read the *old* canonical
  relations, so the same doomed embedding surfaces in several terms;
  collecting doomed embeddings as a set makes the even (add-back) terms
  redundant, which is why dropping them -- Prop. 4.3(ii) -- is exact.

Term evaluation (the body of ET-INS / ET-DEL) reuses the structural
join machinery: the ``R``-part comes from a materialized snowcap when
one matches (Snowcaps strategy) and is recomputed from canonical
relations otherwise (Leaves strategy).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.algebra.relation import Relation
from repro.algebra.structural import structural_join
from repro.maintenance.delta import DeltaTables
from repro.pattern.evaluate import Sources
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.views.lattice import SnowcapLattice
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Node

NodeSet = FrozenSet[str]


class Term:
    """One union/difference term, identified by its Δ-set.

    ``sign`` is +1 for tuples to add (insertions) and, for deletions,
    the inclusion-exclusion coefficient: +1 removes derivations, −1
    restores them (the paper's ∪-prefixed positive terms).
    """

    __slots__ = ("delta_set", "sign")

    def __init__(self, delta_set: NodeSet, sign: int = 1):
        self.delta_set = delta_set
        self.sign = sign

    @property
    def r_set_is_snowcap(self) -> bool:
        return True  # by construction after Prop. 3.3/4.2 pruning

    def r_set(self, pattern: Pattern) -> NodeSet:
        return frozenset(pattern.node_names()) - self.delta_set

    def __repr__(self) -> str:
        return "Term(Δ=%s, sign=%+d)" % (sorted(self.delta_set), self.sign)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Term)
            and self.delta_set == other.delta_set
            and self.sign == other.sign
        )

    def __hash__(self) -> int:
        return hash((self.delta_set, self.sign))


def _descendant_closed_sets(pattern: Pattern) -> List[NodeSet]:
    """All non-empty Δ-sets closed under taking pattern children.

    Equivalently: complements of snowcaps (including the empty
    snowcap, i.e., the all-Δ term).  Computed by choosing, top-down,
    which subtrees fall entirely into the Δ-set.
    """
    names = pattern.node_names()
    children: Dict[str, List[str]] = {name: [] for name in names}
    for parent, child in pattern.edges():
        children[parent.name].append(child.name)

    def subtree(name: str) -> List[str]:
        out = [name]
        for child in children[name]:
            out.extend(subtree(child))
        return out

    results: List[NodeSet] = []

    def grow(frontier: List[str], acc: Set[str]) -> None:
        # frontier: nodes whose membership is still to decide; any node
        # chosen for Δ drags its entire subtree along.
        if not frontier:
            if acc:
                results.append(frozenset(acc))
            return
        head, *rest = frontier
        # head goes fully to Δ:
        grow(rest, acc | set(subtree(head)))
        # head stays R: its children become frontier decisions.
        grow(rest + children[head], acc)

    grow([names[0]], set())
    return sorted(results, key=lambda s: (len(s), sorted(s)))


def expand_insert_terms(pattern: Pattern) -> List[Term]:
    """The insertion terms surviving Prop. 3.3.

    One term per non-empty descendant-closed Δ-set; the term's R-part
    is a snowcap of the view's lattice (Prop. 3.12).
    """
    return [Term(delta_set, +1) for delta_set in _descendant_closed_sets(pattern)]


def expand_delete_terms(pattern: Pattern, prune_even_terms: bool = False) -> List[Term]:
    """The deletion terms surviving Prop. 4.2, signed per Prop. 4.3(i).

    ``prune_even_terms`` applies Prop. 4.3(ii) at development time: the
    even (add-back) terms are never generated.  ET-DEL skips them during
    evaluation regardless (they are redundant under binding-set
    semantics), so the flag only affects the developed-term count
    reported by the Get-Update-Expression phase.
    """
    terms = []
    for delta_set in _descendant_closed_sets(pattern):
        sign = +1 if len(delta_set) % 2 == 1 else -1
        if prune_even_terms and sign < 0:
            continue
        terms.append(Term(delta_set, sign))
    return terms


def flip_repair_term(name: str) -> Term:
    """The repair term of one flipped σ node: Δ at ``name`` alone.

    Unlike insertion/deletion terms, a flip Δ-set is *not* descendant-
    closed -- a σ flip changes one node's membership without touching
    its pattern subtree -- so these terms are built directly instead of
    via :func:`expand_insert_terms`.  Evaluating the term against
    survivor relations (pre-batch membership for evictions, current
    membership for admissions) yields exactly the embeddings gained or
    lost through the flipped candidates, in O(|flipped|) join work.
    """
    return Term(frozenset((name,)), +1)


def prune_by_empty_delta(terms: Sequence[Term], deltas: DeltaTables) -> List[Term]:
    """Prop. 3.6: drop terms whose Δ-set touches an empty Δ table."""
    return [
        term
        for term in terms
        if all(not deltas.is_empty(name) for name in term.delta_set)
    ]


def _boundary_parents(pattern: Pattern, delta_set: NodeSet) -> List[PatternNode]:
    """R-side nodes with at least one Δ-side pattern child."""
    out = []
    for parent, child in pattern.edges():
        if parent.name not in delta_set and child.name in delta_set:
            out.append(parent)
    return out


def prune_insert_by_ids(
    terms: Sequence[Term],
    pattern: Pattern,
    insertion_target_ids: Sequence[DeweyID],
) -> List[Term]:
    """Prop. 3.8: ID-driven pruning for insertions.

    For a boundary sub-expression ``R_{n1} ⋈ Δ+_{n2}`` to produce
    anything, some *existing* ``n1``-labeled node must be an ancestor of
    an inserted node; inserted nodes live under insertion targets, so
    some target must be labeled ``n1`` or have an ``n1``-labeled
    ancestor -- checked purely on the targets' Dewey IDs.
    """
    surviving: List[Term] = []
    for term in terms:
        dead = False
        for parent in _boundary_parents(pattern, term.delta_set):
            label = parent.label
            if label == "*":
                continue  # a wildcard matches any ancestor; cannot prune
            if not any(
                target.label == label or target.has_ancestor_labeled(label)
                for target in insertion_target_ids
            ):
                dead = True
                break
        if not dead:
            surviving.append(term)
    return surviving


def prune_delete_by_ids(
    terms: Sequence[Term],
    pattern: Pattern,
    deltas: DeltaTables,
) -> List[Term]:
    """Prop. 4.7: ID-driven pruning for deletions.

    ``R_{n1} ⋈ Δ−_{n2}`` is empty when no Δ− node of ``n2`` has an
    ``n1``-labeled ancestor (per its ID's encoded label path).
    """
    surviving: List[Term] = []
    for term in terms:
        dead = False
        for parent, child in pattern.edges():
            if parent.name in term.delta_set or child.name not in term.delta_set:
                continue
            label = parent.label
            if label == "*":
                continue
            if not any(
                node.id.has_ancestor_labeled(label) for node in deltas.nodes(child.name)
            ):
                dead = True
                break
        if not dead:
            surviving.append(term)
    return surviving


def evaluate_term(
    pattern: Pattern,
    term: Term,
    r_sources: Sources,
    deltas: DeltaTables,
    lattice: Optional[SnowcapLattice] = None,
) -> Relation:
    """Evaluate one term into a binding relation over all view nodes.

    Per-node inputs: Δ tables for the term's Δ-set, canonical relations
    (``r_sources``, σ already applied) elsewhere.  When the R-part
    coincides with a materialized snowcap, its stored relation is the
    join seed (the Snowcaps strategy); otherwise the R-part is built
    from the leaves on the fly (the Leaves strategy).
    """
    nodes = pattern.nodes()
    relation: Optional[Relation] = None
    r_set = term.r_set(pattern)
    if lattice is not None and r_set:
        # Joins never mutate their inputs, so the stored relation can
        # seed the pipeline directly.
        relation = lattice.relation_for(r_set)
    for node in nodes:
        if relation is not None and node.name in relation.schema:
            continue
        if node.name in term.delta_set:
            source = deltas.nodes(node.name)
        else:
            source = r_sources[node.name]
        if node.parent is None:
            # Pattern root.  A child-axis root must sit at the document
            # root; inserted nodes never can (inserts add children).
            if node.axis == "child":
                source = [n for n in source if n.id.depth == 1]
            relation = Relation.single_column(node.name, source)
        else:
            right = Relation.single_column(node.name, source)
            axis = "parent" if node.axis == "child" else "ancestor"
            assert relation is not None and node.parent.name in relation.schema
            relation = structural_join(relation, right, node.parent.name, node.name, axis)
        if not relation.rows:
            return Relation([n.name for n in nodes])
    assert relation is not None
    return relation.reordered([n.name for n in nodes])
