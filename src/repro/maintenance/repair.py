"""σ-flip repair: bounded Δ± instead of whole-view recomputation.

An update can flip the σ value predicate of an *existing* node (e.g.
inserting text under a node whose ``val`` a view filters on).  The
2^k − 1 insertion/deletion terms cannot express this -- their all-R
term is the unchanged view -- and the engine historically fell back to
recomputing the affected view.  But the effect of a flip is bounded by
the flipped candidates, not by the view: a candidate flipping *false*
evicts exactly the stored embeddings binding it at a σ column, one
flipping *true* admits exactly the fresh embeddings binding it there.

This module synthesizes that repair Δ±:

* :func:`collect_flip_embeddings` evaluates one single-name repair term
  per flipped σ node (``Δ`` = the flipped candidates at that node,
  canonical survivor relations elsewhere) and deduplicates embeddings
  by their binding IDs across terms -- the same set semantics as
  ET-DEL, which is what makes multi-flip batches exact without 2^k
  inclusion–exclusion: an embedding binding two flipped-false nodes
  surfaces in both terms but is evicted once.

* :func:`flip_lattice_repair` produces the matching snowcap upkeep:
  column-aware drops for flipped-false candidates (a flipped node may
  legitimately bind non-σ columns of other rows, so the column-blind
  deletion filter of ``SnowcapLattice.apply_batch`` would over-drop)
  plus flipped-true rows per materialized subset.

Evictions are evaluated against *pre-batch membership* survivor
relations and admissions against *current membership* ones; both read
live nodes, so projected rows carry final val/cont and line up with
the refreshed extent.  The fragments are plain picklable containers
(binding-ID-keyed rows, row counts), merged by ``sharding.merge``
alongside the ordinary batch Δ±.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Set, Tuple

from repro.algebra.relation import Relation
from repro.maintenance.delta import flip_delta
from repro.maintenance.terms import NodeSet, flip_repair_term, evaluate_term
from repro.pattern.evaluate import Sources, project_bindings
from repro.pattern.tree_pattern import Pattern
from repro.views.lattice import SnowcapLattice
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Node

#: σ pattern-node name -> flipped candidates bound to repair there.
FlipSets = Dict[str, List[Node]]


def _restrict_to_flip_ancestors(
    pattern: Pattern,
    name: str,
    nodes: Sequence[Node],
    r_sources: Sources,
) -> Sources:
    """Shrink ancestor-name sources to the flipped nodes' Dewey chains.

    Every binding a flip term produces places ``name`` at a flipped
    node, so each pattern node *above* ``name`` necessarily binds a
    Dewey ancestor of a flipped candidate -- the term's join work drops
    from O(document) to O(flipped × depth).  Membership is checked
    against the original source rows, so σ filters and exclusions baked
    into ``r_sources`` are preserved; names off the Δ node's root path
    (branches, descendants) stay unrestricted and are pruned by the
    join itself.
    """
    parents: Dict[str, str] = {
        child.name: parent.name for parent, child in pattern.edges()
    }
    path_names = []
    cursor = parents.get(name)
    while cursor is not None:
        path_names.append(cursor)
        cursor = parents.get(cursor)
    if not path_names:
        return r_sources
    chain_ids = sorted(
        {ancestor_id for node in nodes for ancestor_id in node.id.ancestor_ids()}
    )
    restricted = dict(r_sources)
    for path_name in path_names:
        rows = r_sources[path_name]
        index = {row.id: row for row in rows}
        restricted[path_name] = [
            index[ancestor_id] for ancestor_id in chain_ids if ancestor_id in index
        ]
    return restricted


def collect_flip_embeddings(
    pattern: Pattern,
    flip_sets: FlipSets,
    r_sources: Sources,
    sign: str,
) -> Tuple[Dict[tuple, tuple], float]:
    """Evaluate flip repair terms into ``{binding ID key: projected row}``.

    One term per flipped σ node; ``r_sources`` must hold survivor
    relations at the membership matching ``sign`` ("-": pre-batch, for
    evictions; "+": current, for admissions).  Cross-term duplicates
    (embeddings binding several flipped nodes) collapse by binding IDs,
    so each gained/lost embedding contributes exactly one derivation.
    Returns the map plus term-evaluation seconds.
    """
    embeddings: Dict[tuple, tuple] = {}
    eval_seconds = 0.0
    for name in sorted(flip_sets):
        nodes = flip_sets[name]
        if not nodes:
            continue
        deltas = flip_delta(pattern, name, nodes, sign)
        started = time.perf_counter()
        sources = _restrict_to_flip_ancestors(pattern, name, nodes, r_sources)
        bindings = evaluate_term(pattern, flip_repair_term(name), sources, deltas)
        eval_seconds += time.perf_counter() - started
        if not bindings.rows:
            continue
        fresh_rows = []
        fresh_keys = []
        for row in bindings.rows:
            key = tuple(cell.id for cell in row)
            if key in embeddings:
                continue
            embeddings[key] = ()  # reserve; projected below
            fresh_keys.append(key)
            fresh_rows.append(row)
        if not fresh_rows:
            continue
        projected = project_bindings(
            pattern, type(bindings)(bindings.schema, fresh_rows)
        )
        for key, row in zip(fresh_keys, projected.rows):
            embeddings[key] = row
    return embeddings, eval_seconds


def flip_lattice_repair(
    pattern: Pattern,
    lattice: SnowcapLattice,
    minus_sets: FlipSets,
    plus_sets: FlipSets,
    r_sources: Sources,
) -> Tuple[Dict[str, Set[DeweyID]], Dict[NodeSet, Relation]]:
    """Snowcap upkeep for a σ flip: per-column drops plus fresh rows.

    ``minus_sets`` / ``plus_sets`` map σ node names to their flipped-
    false / flipped-true candidates; ``r_sources`` holds *current
    membership* survivor relations.  Returns the ``(drops_by_name,
    additions)`` pair consumed by ``SnowcapLattice.apply_flip_repair``.
    Additions are deduplicated by binding IDs across the per-node
    terms, mirroring :func:`collect_flip_embeddings`.
    """
    drops: Dict[str, Set[DeweyID]] = {
        name: {node.id for node in nodes}
        for name, nodes in minus_sets.items()
        if nodes
    }
    additions: Dict[NodeSet, Relation] = {}
    if not any(plus_sets.values()):
        return drops, additions
    for subset in lattice.materialized_sets():
        relevant = [
            name for name in sorted(plus_sets) if name in subset and plus_sets[name]
        ]
        if not relevant:
            continue
        sub = pattern.subpattern(subset)
        order = [node.name for node in sub.nodes()]
        seen: set = set()
        rows: List[tuple] = []
        for name in relevant:
            deltas = flip_delta(sub, name, plus_sets[name], "+")
            sources = _restrict_to_flip_ancestors(
                sub, name, plus_sets[name], r_sources
            )
            relation = evaluate_term(sub, flip_repair_term(name), sources, deltas)
            if not relation.rows:
                continue
            for row in relation.reordered(order).rows:
                key = tuple(cell.id for cell in row)
                if key in seen:
                    continue
                seen.add(key)
                rows.append(row)
        if rows:
            additions[subset] = Relation(order, rows)
    return drops, additions


def match_flips_to_pattern(
    pattern: Pattern,
    flips: Dict[Tuple[DeweyID, str], Tuple[Node, bool]],
) -> Tuple[FlipSets, FlipSets]:
    """Bucket a view's flipped candidates under its σ pattern nodes.

    ``flips`` maps ``(node ID, constant)`` to ``(live node, satisfied
    now)``; a candidate repairs under every label-compatible σ node
    carrying that constant (several σ nodes may share label and
    constant -- each needs its own repair term).  Returns
    ``(minus_sets, plus_sets)`` for the evict resp. admit side.
    """
    minus_sets: FlipSets = {}
    plus_sets: FlipSets = {}
    for sigma in pattern.nodes():
        if sigma.value_pred is None:
            continue
        minus: List[Node] = []
        plus: List[Node] = []
        for (node_id, constant), (node, now) in flips.items():
            if constant != sigma.value_pred:
                continue
            if sigma.label == "*":
                if node.kind != "element":
                    continue
            elif node.label != sigma.label:
                continue
            (plus if now else minus).append(node)
        if minus:
            minus_sets[sigma.name] = minus
        if plus:
            plus_sets[sigma.name] = plus
    return minus_sets, plus_sets
