"""Incremental view maintenance: the paper's core contribution.

* :mod:`repro.maintenance.delta` -- Δ+ / Δ− table computation
  (Algorithm 2, CD+, and its deletion counterpart CD−).
* :mod:`repro.maintenance.terms` -- the 2^k − 1 union/difference terms
  and every pruning criterion: update semantics (Props. 3.3 / 4.2),
  inserted-data (Prop. 3.6), inserted/deleted IDs (Props. 3.8 / 4.7),
  sign parity (Prop. 4.3); plus the shared term evaluator used by
  ET-INS and ET-DEL over materialized snowcaps.
* :mod:`repro.maintenance.insert` -- PINT (Algorithm 1), ET-INS
  (Algorithm 3) and PIMT (Algorithm 4), combined as PINT/MT.
* :mod:`repro.maintenance.delete` -- PDDT (Algorithm 5), ET-DEL, PDMT
  and the combined PDDT/MT (Algorithm 6).
* :mod:`repro.maintenance.engine` -- the end-to-end driver with the
  experiments' five-phase timing breakdown (Find Target Nodes, Compute
  Delta Tables, Get Update Expression, Execute Update, Update Lattice).
"""

from repro.maintenance.delta import DeltaTables, compute_delta_minus, compute_delta_plus
from repro.maintenance.terms import (
    Term,
    evaluate_term,
    expand_delete_terms,
    expand_insert_terms,
    prune_delete_by_ids,
    prune_by_empty_delta,
    prune_insert_by_ids,
)
from repro.maintenance.engine import (
    MaintenanceEngine,
    PhaseTimes,
    PropagationReport,
    RegisteredView,
)

__all__ = [
    "DeltaTables",
    "MaintenanceEngine",
    "PhaseTimes",
    "PropagationReport",
    "RegisteredView",
    "Term",
    "compute_delta_minus",
    "compute_delta_plus",
    "evaluate_term",
    "expand_delete_terms",
    "expand_insert_terms",
    "prune_by_empty_delta",
    "prune_delete_by_ids",
    "prune_insert_by_ids",
]
