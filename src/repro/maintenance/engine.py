"""End-to-end maintenance driver with the experiments' phase breakdown.

The engine owns a document plus any number of registered views (each
with its materialized extent and snowcap lattice) and propagates
statement-level updates through the combined PINT/MT and PDDT/MT
pipelines (Figures 8 and 9), timing the five phases reported throughout
Section 6:

* **Find Target Nodes** -- evaluating the update's target path
  (the job the paper delegates to Saxon);
* **Compute Delta Tables** -- CD+ / CD−;
* **Get Update Expression** -- developing the 2^k − 1 terms and pruning
  them (Props. 3.3/3.6/3.8 resp. 4.2/4.3/4.7);
* **Execute Update** -- evaluating surviving terms and applying tuple
  additions / derivation-count decrements / val-cont rewrites;
* **Update Lattice** -- maintaining the materialized snowcaps.

Exactness note (beyond the paper): an update can flip the σ value
predicate of an *existing* node (e.g. inserting text under a node whose
``val`` a view filters on).  The 2^k − 1 terms cannot express this --
their all-R term is the unchanged view.  The engine detects flipped
candidates from ID-based ancestry plus merged first-seen val snapshots
and *repairs* the view with the bounded Δ± of
:mod:`repro.maintenance.repair`: evictions ride the ET-DEL machinery,
admissions the Δ+ store pass, and the snowcap lattice gets a
column-aware flip pass -- all in the same batch round, byte-identical
to recomputation.  Similarly, a net-removed node whose val/cont
drifted before its removal (*dirty subtree*) is restored from the
first-seen snapshots instead of invalidating the whole view.  Only
genuinely unrepairable cases -- drift with hot-path caches disabled,
or ``sigma_repair=False`` forcing the historical behaviour -- fall
back to recomputing the affected view, and those recomputations run as
shard work units when a parallel executor is available
(``BatchReport.fallbacks`` records structured reasons).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.maintenance.delta import (
    BatchCandidates,
    compute_delta_minus,
    compute_delta_plus,
    doomed_nodes,
)
from repro.maintenance.delete import (
    et_del,
    pddt_apply,
    pdmt,
    surviving_delete_terms,
)
from repro.maintenance.insert import (
    apply_attribute_refreshes,
    et_ins,
    pimt,
    snowcap_additions,
    surviving_insert_terms,
)
from repro.maintenance.repair import (
    flip_lattice_repair,
    match_flips_to_pattern,
)
from repro.obs import NULL_OBS, Observability
from repro.storage.recovery import register_engine_factory
from repro.storage.sqlite import SqliteExtentBackend
from repro.pattern.evaluate import Sources, filter_by_predicate
from repro.pattern.tree_pattern import Pattern
from repro.pattern.xquery import ViewDefinition
from repro.updates.language import (
    DeleteUpdate,
    InsertUpdate,
    UpdateBatch,
    UpdateStatement,
)
from repro.updates.pul import BatchApplication, apply_pul, compute_pul
from repro.views.lattice import SnowcapLattice
from repro.views.view import MaterializedView
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Document, Node, hot_path_caches_enabled

PHASES = (
    "find_target_nodes",
    "compute_delta_tables",
    "get_update_expression",
    "execute_update",
    "update_lattice",
)

#: The sharding backend seam (dependency inversion).  Maintenance sits
#: *below* repro.sharding in the layer DAG (machine-checked by the
#: repro-lint ``layer-upward-import`` rule), so this module never
#: imports the sharding packages.  Instead ``repro.sharding`` calls
#: :func:`register_shard_backend` with its own module object when it is
#: imported, and the engine dispatches planner/executor/unit/merge
#: lookups through the registered backend.  The ``repro`` package
#: ``__init__`` (the exempt aggregator) imports the sharding layer, so
#: any ``import repro.<anything>`` wires the seam before engine code
#: can run.
_SHARD_BACKEND = None


def register_shard_backend(backend) -> None:
    """Install the sharding layer's namespace as the engine's backend.

    Called by ``repro/sharding/__init__.py`` at the end of its own
    import; idempotent (last registration wins, which only matters for
    tests injecting instrumented backends).
    """
    global _SHARD_BACKEND
    _SHARD_BACKEND = backend


def shard_backend():
    """The registered sharding backend, or a pointed error if unwired."""
    if _SHARD_BACKEND is None:
        raise RuntimeError(
            "no sharding backend registered: import the 'repro' package "
            "(or 'repro.sharding') before driving the engine so the "
            "sharding layer can register itself"
        )
    return _SHARD_BACKEND


#: sentinel distinguishing "no snapshot captured" (the value provably
#: never changed) from a captured snapshot whose value may be None.
_MISSING = object()


class PhaseTimes:
    """Per-phase wall-clock seconds for one propagated update."""

    def __init__(self) -> None:
        self.find_target_nodes = 0.0
        self.compute_delta_tables = 0.0
        self.get_update_expression = 0.0
        self.execute_update = 0.0
        self.update_lattice = 0.0

    def total(self) -> float:
        return sum(getattr(self, phase) for phase in PHASES)

    def as_dict(self) -> Dict[str, float]:
        return {phase: getattr(self, phase) for phase in PHASES}

    def add(self, other: "PhaseTimes") -> None:
        for phase in PHASES:
            setattr(self, phase, getattr(self, phase) + getattr(other, phase))

    def __repr__(self) -> str:
        parts = ", ".join("%s=%.4f" % (phase, getattr(self, phase)) for phase in PHASES)
        return "PhaseTimes(%s)" % parts


def aggregate_phase_seconds(phase_sets, base=0.0, exclude_find_targets=False):
    """The one seconds-accounting rule shared by every report shape.

    ``phase_sets`` yields :class:`PhaseTimes` instances or plain
    ``phase -> seconds`` mappings (the bench harness rows).  ``base``
    carries the report-level once-per-batch costs (net Δ construction,
    parallel shard-round walls); ``exclude_find_targets`` drops the
    shared target-resolution time, which the propagation metrics leave
    out.  :class:`PropagationReport`, :class:`BatchReport` and
    ``repro.bench.harness.BreakdownRow`` all sum through here, so their
    totals cannot drift apart -- and because every phase credit also
    lands in a trace span (see :class:`_PhaseTimer`), the summed spans
    equal these totals too (pinned by a regression test).
    """
    total = base
    for phases in phase_sets:
        if isinstance(phases, PhaseTimes):
            total += phases.total()
            if exclude_find_targets:
                total -= phases.find_target_nodes
        else:
            total += sum(phases.get(phase, 0.0) for phase in PHASES)
            if exclude_find_targets:
                total -= phases.get("find_target_nodes", 0.0)
    return total


class _PhaseTimer:
    """One ``perf_counter`` interval, credited once, reported twice.

    The interval is measured exactly once and the *same* float is added
    to the :class:`PhaseTimes` slot and recorded as a ``phase`` span,
    so the report's phase accounting and the trace can never disagree.
    With the null tracer the span side is a no-op.
    """

    __slots__ = ("tracer", "phases", "phase", "view", "started")

    def __init__(self, tracer, phases: PhaseTimes, phase: str, view: str) -> None:
        self.tracer = tracer
        self.phases = phases
        self.phase = phase
        self.view = view

    def __enter__(self) -> "_PhaseTimer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _credit(
            self.tracer,
            self.phases,
            self.phase,
            time.perf_counter() - self.started,
            self.view,
        )
        return False


def _credit(tracer, phases: PhaseTimes, phase: str, seconds: float, view: str) -> None:
    """Credit an already-measured interval to a phase slot and a span."""
    setattr(phases, phase, getattr(phases, phase) + seconds)
    tracer.record("phase", seconds, phase=phase, view=view)


class ViewReport:
    """Outcome of propagating one update to one view."""

    def __init__(self, name: str):
        self.name = name
        self.phases = PhaseTimes()
        self.targets = 0
        self.delta_sizes: Dict[str, int] = {}
        self.terms_developed = 0
        self.terms_surviving = 0
        self.derivations_added = 0
        self.tuples_modified = 0
        self.tuples_removed = 0
        self.derivations_removed = 0
        self.term_eval_seconds = 0.0
        self.predicate_fallback = False

    def __repr__(self) -> str:
        return (
            "ViewReport(%s: +%d der, -%d der, mod %d, terms %d/%d, %.4fs)"
            % (
                self.name,
                self.derivations_added,
                self.derivations_removed,
                self.tuples_modified,
                self.terms_surviving,
                self.terms_developed,
                self.phases.total(),
            )
        )


class PropagationReport:
    """Outcome of one statement across all registered views."""

    def __init__(self, statement: UpdateStatement):
        self.statement = statement
        self.view_reports: Dict[str, ViewReport] = {}
        self.apply_document_seconds = 0.0
        self.pul_size = 0

    def report_for(self, name: str) -> ViewReport:
        return self.view_reports[name]

    def total_maintenance_seconds(self) -> float:
        return aggregate_phase_seconds(
            report.phases for report in self.view_reports.values()
        )

    def propagation_seconds(self) -> float:
        """Maintenance-phase seconds with the shared find-targets time
        excluded -- the metric the benchmarks compare across pipelines."""
        return aggregate_phase_seconds(
            (report.phases for report in self.view_reports.values()),
            exclude_find_targets=True,
        )

    def __repr__(self) -> str:
        return "PropagationReport(%s, %d views, %.4fs)" % (
            self.statement.name,
            len(self.view_reports),
            self.total_maintenance_seconds(),
        )


class BatchReport:
    """Outcome of one batch of statements across all registered views."""

    def __init__(self, statements: Sequence[UpdateStatement]):
        self.statements = list(statements)
        self.view_reports: Dict[str, ViewReport] = {}
        self.apply_document_seconds = 0.0
        #: building the batch's net Δ candidate sets -- shared across
        #: views, so kept report-level rather than in per-view phases.
        self.net_effects_seconds = 0.0
        self.pul_size = 0
        #: statements handed in, before coalescing merged adjacent inserts.
        self.statements_submitted = 0
        #: statements actually resolved and applied.
        self.statements_applied = 0
        self.net_inserted = 0
        self.net_removed = 0
        #: nodes inserted and deleted within the batch (net no-ops).
        self.cancelled = 0
        #: view name -> ``{"reason": str, "candidates": int}`` for each
        #: view whose recompute fallback fired (the candidate count is
        #: the unrepairable dirty nodes resp. suppressed σ flips).
        self.fallbacks: Dict[str, Dict] = {}
        #: view name -> σ-flip repair counters (``sigma_flips``,
        #: ``evicted``/``admitted`` extent rows, ``lattice_dropped``/
        #: ``lattice_added``) for views repaired in place of a fallback.
        self.repairs: Dict[str, Dict] = {}
        #: net-removed dirty nodes whose pre-batch val/cont snapshots
        #: were restored onto the detached subtree (no fallback needed).
        self.dirty_restored = 0
        #: worker count the propagation round actually fanned out to
        #: (0 = serial execution of the shard plan).
        self.workers = 0
        #: view name -> {"refresh", "additions", "removals"} extent
        #: deltas, recorded only when the engine's ``record_deltas`` is
        #: set (shard-session replica workers ship these to the owner).
        self.view_deltas: Optional[Dict[str, Dict]] = None
        #: wall-clock seconds spent inside parallel shard rounds
        #: (0 in serial mode, where unit time lands in per-view phases).
        self.shard_seconds = 0.0
        #: one entry per executed shard round: mode, wall/worker
        #: seconds and per-unit timing (see RoundResult.describe).
        self.shard_rounds: List[Dict] = []

    def report_for(self, name: str) -> ViewReport:
        return self.view_reports[name]

    def total_maintenance_seconds(self) -> float:
        return aggregate_phase_seconds(
            (report.phases for report in self.view_reports.values()),
            base=self.net_effects_seconds + self.shard_seconds,
        )

    def propagation_seconds(self) -> float:
        """Maintenance-phase seconds with the shared find-targets time
        excluded; the once-per-batch net Δ construction and the wall
        time of parallel shard rounds are each counted once."""
        return aggregate_phase_seconds(
            (report.phases for report in self.view_reports.values()),
            base=self.net_effects_seconds + self.shard_seconds,
            exclude_find_targets=True,
        )

    def __repr__(self) -> str:
        return "BatchReport(%d statements, %d views, +%d/-%d net, %.4fs)" % (
            self.statements_applied,
            len(self.view_reports),
            self.net_inserted,
            self.net_removed,
            self.total_maintenance_seconds(),
        )


class RegisteredView:
    """A view under maintenance: extent + lattice + options."""

    def __init__(self, name: str, view: MaterializedView, lattice: SnowcapLattice,
                 definition: Optional[ViewDefinition] = None):
        self.name = name
        self.view = view
        self.lattice = lattice
        self.definition = definition

    @property
    def pattern(self) -> Pattern:
        return self.view.pattern

    def __repr__(self) -> str:
        return "RegisteredView(%s, %d tuples, %s lattice)" % (
            self.name,
            len(self.view),
            self.lattice.strategy,
        )


class _ViewRound:
    """Mutable per-view state threaded through one batch shard round."""

    __slots__ = (
        "name",
        "registered",
        "report",
        "has_minus_unit",
        "has_plus_unit",
        "has_repair_unit",
        "minus_live",
        "removals",
        "additions",
        "snowcap",
        "flips",
        "minus_sets",
        "plus_sets",
        "embedding_fragments",
        "addition_fragments",
    )

    def __init__(self, name: str, registered: "RegisteredView", report: ViewReport):
        self.name = name
        self.registered = registered
        self.report = report
        self.has_minus_unit = False
        self.has_plus_unit = False
        self.has_repair_unit = False
        self.minus_live = False
        self.removals: Dict[tuple, int] = {}
        self.additions: Dict[tuple, int] = {}
        self.snowcap: Optional[dict] = None
        #: ``(node ID, constant) -> (node, satisfied now)`` σ flips of
        #: this batch, and their bucketing under the view's σ nodes.
        self.flips: Dict[Tuple[DeweyID, str], Tuple[Node, bool]] = {}
        self.minus_sets: Dict[str, List[Node]] = {}
        self.plus_sets: Dict[str, List[Node]] = {}
        #: doomed-embedding maps (Δ− units + repair evictions) unioned
        #: once into ``removals``; counted row dicts (Δ+ units + repair
        #: admissions) summed once into ``additions``.
        self.embedding_fragments: List[Dict[tuple, tuple]] = []
        self.addition_fragments: List[Dict[tuple, int]] = []


def _watch_entries(
    sigma_nodes: Sequence, chain: Sequence[Node]
) -> List[Tuple[DeweyID, str, bool]]:
    """(node, constant, satisfied) snapshots for flippable σ candidates.

    ``chain`` is the self-and-ancestor candidate set of an update's
    targets (sorted by ID); only label-compatible candidates are
    watched.  Shared by the per-statement watchlists and the batch
    pipeline's merged first-seen snapshots so the two paths cannot
    drift apart.
    """
    entries: List[Tuple[DeweyID, str, bool]] = []
    for node in sigma_nodes:
        for candidate in chain:
            if node.label == "*":
                if candidate.kind != "element":
                    continue
            elif candidate.label != node.label:
                continue
            entries.append(
                (candidate.id, node.value_pred, candidate.val == node.value_pred)
            )
    return entries


class MaintenanceEngine:
    """Propagates statement-level updates to registered views."""

    def __init__(
        self,
        document: Document,
        prune_even_terms: bool = True,
        use_data_pruning: bool = True,
        use_id_pruning: bool = True,
        workers: int = 0,
        shard_plan: "Union[None, int, ShardPlanner]" = None,
        sigma_repair: bool = True,
        obs: Optional[Observability] = None,
        backend: "Union[None, str, SqliteExtentBackend]" = None,
    ):
        self.document = document
        #: telemetry facade (:class:`repro.obs.Observability`); the
        #: shared null default makes every instrumentation site a no-op.
        self.obs = obs if obs is not None else NULL_OBS
        #: optional durable backend (:mod:`repro.storage`): extents in
        #: sqlite tables, batches write-ahead logged at apply_batch
        #: boundaries.  A string is taken as a database path.  ``None``
        #: (the default) keeps the historical all-in-memory behaviour.
        if isinstance(backend, str):
            backend = SqliteExtentBackend(backend, obs=self.obs)
        elif backend is not None:
            backend.bind_obs(self.obs)
        self.backend = backend
        metrics = self.obs.metrics
        self._batches_counter = metrics.counter(
            "repro_batches_total", "batches propagated through apply_batch"
        )
        self._statements_counter = metrics.counter(
            "repro_statements_total", "statements applied (post-coalescing)"
        )
        self._coalesced_counter = metrics.counter(
            "repro_coalesced_statements_total",
            "statements merged away by batch coalescing",
        )
        self._fallbacks_counter = metrics.counter(
            "repro_fallbacks_total", "whole-view recompute fallbacks", ("reason",)
        )
        self._repairs_counter = metrics.counter(
            "repro_repairs_total", "sigma-flip repairs applied in place", ("view",)
        )
        self._propagation_histogram = metrics.histogram(
            "repro_propagation_seconds", "per-batch view-side propagation seconds"
        )
        self.prune_even_terms = prune_even_terms
        self.use_data_pruning = use_data_pruning
        self.use_id_pruning = use_id_pruning
        #: incremental repair of σ-predicate flips (bounded Δ± terms)
        #: and dirty removed subtrees (snapshot restoration) in
        #: ``apply_batch``.  ``False`` restores the historical
        #: whole-view recompute fallback for both situations -- kept as
        #: a baseline for the repair benchmarks and regression tests.
        self.sigma_repair = sigma_repair
        #: default worker count for ``apply_batch`` (0 = in-process).
        self.workers = workers
        #: default shard planner (or shard count) for ``apply_batch``.
        self.shard_plan = shard_plan
        #: when True, ``apply_batch`` reports carry ``view_deltas`` --
        #: the exact extent-delta inputs of every view's store pass
        #: (used by shard-session replica workers).
        self.record_deltas = False
        #: set by an attached :class:`~repro.sharding.ShardSession`:
        #: while workers maintain the replicas, the owner's lattices are
        #: stale and direct propagation must go through the session.
        self._shard_session_active = False
        self.views: Dict[str, RegisteredView] = {}

    # -- registration ------------------------------------------------------

    def register_view(
        self,
        view_source: Union[Pattern, ViewDefinition, str],
        name: Optional[str] = None,
        strategy: str = "snowcaps",
        update_profile: Optional[Sequence[str]] = None,
    ) -> RegisteredView:
        """Materialize a view (and its snowcaps) over the document.

        ``view_source`` may be a tree pattern, a parsed
        :class:`ViewDefinition`, or the view's XQuery text.
        ``update_profile`` optionally lists the labels the workload is
        expected to update, steering the cost-based snowcap selection
        (Section 3.5).
        """
        # A live ShardSession's workers hold the view partition; adding
        # or removing views behind its back desynchronizes the replicas.
        self._check_no_active_session()
        definition: Optional[ViewDefinition] = None
        if isinstance(view_source, str):
            from repro.pattern.xquery import parse_view

            definition = parse_view(view_source)
            pattern = definition.pattern
        elif isinstance(view_source, ViewDefinition):
            definition = view_source
            pattern = definition.pattern
        else:
            pattern = view_source
        name = name or "view%d" % (len(self.views) + 1)
        if name in self.views:
            raise ValueError("a view named %r is already registered" % name)
        view = MaterializedView.materialize(
            pattern,
            self.document,
            name=name,
            store_factory=(
                self.backend.store_factory(name) if self.backend is not None else None
            ),
        )
        lattice = SnowcapLattice(pattern, strategy=strategy, update_profile=update_profile)
        lattice.materialize(self.document)
        registered = RegisteredView(name, view, lattice, definition)
        self.views[name] = registered
        if self.backend is not None:
            # Registration is durable at the current version: reopening
            # before any batch adopts the freshly materialized extent.
            self.backend.sync(self.views)
        return registered

    def adopt_view(
        self,
        view_source: Union[Pattern, ViewDefinition, str],
        name: str,
        adopt_lattice: bool = True,
        strategy: str = "snowcaps",
        update_profile: Optional[Sequence[str]] = None,
    ) -> bool:
        """Recovery seam: install a view from the durable backend.

        The extent is read verbatim from the view's sqlite table (no
        pattern evaluation); the snowcap relations come from their
        persisted snapshots when ``adopt_lattice`` is true and the
        snapshots resolve against the document, and are rematerialized
        otherwise.  Returns True when the lattice was adopted (i.e.
        nothing had to be rematerialized).
        """
        self._check_no_active_session()
        if self.backend is None:
            raise RuntimeError("adopt_view needs a durable backend")
        definition: Optional[ViewDefinition] = None
        if isinstance(view_source, str):
            from repro.pattern.xquery import parse_view

            definition = parse_view(view_source)
            pattern = definition.pattern
        elif isinstance(view_source, ViewDefinition):
            definition = view_source
            pattern = definition.pattern
        else:
            pattern = view_source
        if name in self.views:
            raise ValueError("a view named %r is already registered" % name)
        # Read the durable rows *before* building the view: the store
        # factory registers the extent table on first use, which would
        # turn "this view was never durable" (KeyError, caller's bug)
        # into a silently empty extent.
        content = self.backend.stored_extent_rows(name)
        view = MaterializedView(
            pattern, name=name, store_factory=self.backend.store_factory(name)
        )
        view._store.adopt_encoded(content)
        lattice = SnowcapLattice(pattern, strategy=strategy, update_profile=update_profile)
        adopted = False
        if not lattice.selected:
            adopted = True  # nothing materialized, nothing to rebuild
        elif adopt_lattice:
            try:
                relations = self.backend.load_lattice(
                    name, lattice.selected, self.document
                )
            except (KeyError, ValueError):
                pass
            else:
                for subset, relation in relations.items():
                    lattice.load_materialized(subset, relation)
                self.backend.mark_lattice_adopted(name, lattice)
                adopted = True
        if not adopted and lattice.selected:
            lattice.materialize(self.document)
        registered = RegisteredView(name, view, lattice, definition)
        self.views[name] = registered
        return adopted

    def sync_durability(self) -> None:
        """Flush buffered extent ops and lattice snapshots (no-op
        without a backend; ``ApplyQueue.close`` and session close call
        this so a clean shutdown leaves nothing to replay)."""
        if self.backend is not None:
            self.backend.sync(self.views)

    def unregister_view(self, name: str) -> None:
        self._check_no_active_session()
        del self.views[name]
        if self.backend is not None:
            self.backend.drop_view(name)

    # -- source relations ---------------------------------------------------

    def _sources_excluding(
        self,
        pattern: Pattern,
        excluded_ids: set,
        cache: Optional[Dict[str, List[Node]]] = None,
        excluded_labels: Optional[set] = None,
    ) -> Sources:
        """σ-filtered canonical relations, minus the given node IDs.

        After an insert has been applied, R_old = R_new − Δ+.  Labels
        untouched by the update and free of value predicates reference
        the live canonical relation directly (no copy): term evaluation
        never mutates its sources, so copying is pure overhead.

        ``cache`` (optional, label-keyed) shares the unpredicated
        post-exclusion rows across calls with the same ``excluded_ids``
        -- the batch pipeline passes one per batch so multi-view
        maintenance filters each label once.  ``excluded_labels`` lets
        callers that already know the excluded IDs' label set skip its
        recomputation (it is O(|excluded_ids|)).
        """
        if excluded_labels is None:
            excluded_labels = {node_id.label for node_id in excluded_ids}
        sources: Sources = {}
        for node in pattern.nodes():
            if node.label == "*" and node.value_pred is None:
                rows = None if cache is None else cache.get("*")
                if rows is None:
                    candidates: List[Node] = sorted(
                        self.document.all_elements(), key=lambda n: n.id
                    )
                    rows = filter_by_predicate(candidates, node)
                    if excluded_ids:
                        rows = [n for n in rows if n.id not in excluded_ids]
                    if cache is not None:
                        cache["*"] = rows
                sources[node.name] = rows
                continue
            if node.label == "*":
                # Wildcard σ via the all-labels value index.
                rows = self.document.nodes_with_value("*", node.value_pred)
            elif node.value_pred is not None:
                # σ-constant selection via the document's value index.
                rows = self.document.nodes_with_value(node.label, node.value_pred)
            else:
                candidates = self.document.nodes_with_label(node.label)
                if node.label not in excluded_labels:
                    sources[node.name] = candidates
                    continue
                rows = None if cache is None else cache.get(node.label)
                if rows is None:
                    rows = [n for n in candidates if n.id not in excluded_ids]
                    if cache is not None:
                        cache[node.label] = rows
                sources[node.name] = rows
                continue
            if excluded_ids:
                rows = [n for n in rows if n.id not in excluded_ids]
            sources[node.name] = rows
        return sources

    def _sources_current(self, pattern: Pattern) -> Sources:
        return self._sources_excluding(pattern, set())

    # -- propagation ------------------------------------------------------------

    def _check_no_active_session(self) -> None:
        if self._shard_session_active:
            raise RuntimeError(
                "engine is driven by an active ShardSession; apply through "
                "the session (or close it) instead"
            )

    def session(self, workers: int = 4, planner=None, weights=None, rebalance=None):
        """A resident :class:`~repro.sharding.ShardSession` over this
        engine: fork-once replica workers maintaining the views batch
        by batch (pair with ``ApplyQueue(engine.session(...))`` for a
        streaming write path).  ``weights`` optionally gives relative
        per-view maintenance costs for the worker assignment;
        ``rebalance`` (a ``RebalancePolicy``, or ``True`` for defaults)
        lets the session migrate view ownership between workers when
        the recorded per-view timings drift out of balance."""
        return shard_backend().ShardSession(
            self, workers=workers, planner=planner, weights=weights,
            rebalance=rebalance,
        )

    def apply_update(self, statement: UpdateStatement) -> PropagationReport:
        """Propagate one statement: document update + all views."""
        self._check_no_active_session()
        batch_id = self._durability_begin([statement])
        try:
            with self.obs.span("statement", name=statement.name):
                if isinstance(statement, InsertUpdate):
                    report = self._apply_insert(statement)
                elif isinstance(statement, DeleteUpdate):
                    report = self._apply_delete(statement)
                else:
                    raise TypeError("unknown statement %r" % (statement,))
        finally:
            self._durability_commit(batch_id)
        self._statements_counter.inc()
        return report

    def _durability_begin(self, statements: Sequence[UpdateStatement]):
        """WAL the batch ahead of any application; None without a
        backend (or in a forked child, whose writes the owner shards
        back and logs itself)."""
        if self.backend is None or not self.backend.writable:
            return None
        return self.backend.begin_batch(statements)

    def _durability_commit(self, batch_id, include_lattices: bool = True) -> None:
        """Seal the batch: commit marker + one sqlite txn.

        Runs in a ``finally`` so even a raising (poison) batch commits
        -- statement application is deterministic, so recovery replay
        partial-applies it identically and the recomputed views match.
        """
        if batch_id is not None:
            self.backend.commit_batch(
                batch_id, self.views, include_lattices=include_lattices
            )

    def _predicate_guard(
        self,
        registered: RegisteredView,
        view_report: ViewReport,
        watchlist: List[Tuple[DeweyID, str, bool]],
    ) -> bool:
        """Single recompute guard of the per-statement paths.

        The per-statement pipeline (the paper's comparison baseline)
        keeps the whole-view recompute on a σ flip; the batch pipeline
        repairs instead.  Returns True when the fallback fired, so the
        caller skips term propagation for this view.
        """
        if not self._watch_changed(watchlist):
            return False
        self._recompute(registered)
        view_report.predicate_fallback = True
        return True

    # .. insertions ............................................................

    def _apply_insert(self, statement: InsertUpdate) -> PropagationReport:
        report = PropagationReport(statement)

        started = time.perf_counter()
        pul = compute_pul(self.document, statement)
        find_targets_seconds = time.perf_counter() - started
        report.pul_size = len(pul)
        target_ids = [op.target.id for op in pul.inserts()]

        watchlists = {
            name: self._watch_predicates(registered.pattern, target_ids)
            for name, registered in self.views.items()
        }

        applied = apply_pul(self.document, pul)
        report.apply_document_seconds = applied.apply_seconds
        inserted_ids = {
            node.id
            for root in applied.inserted_roots
            for node in root.self_and_descendants()
        }

        tracer = self.obs.tracer
        for name, registered in self.views.items():
            view_report = ViewReport(name)
            view_report.targets = len(target_ids)
            _credit(
                tracer, view_report.phases, "find_target_nodes",
                find_targets_seconds, name,
            )
            pattern = registered.pattern

            if self._predicate_guard(registered, view_report, watchlists[name]):
                report.view_reports[name] = view_report
                continue

            with _PhaseTimer(tracer, view_report.phases, "compute_delta_tables", name):
                deltas = compute_delta_plus(pattern, applied.inserted_roots)
            view_report.delta_sizes = {
                node_name: len(rows) for node_name, rows in deltas.tables.items()
            }

            with _PhaseTimer(tracer, view_report.phases, "get_update_expression", name):
                terms, developed = surviving_insert_terms(
                    pattern,
                    deltas,
                    target_ids,
                    self.use_data_pruning,
                    self.use_id_pruning,
                )
            view_report.terms_developed = developed
            view_report.terms_surviving = len(terms)

            with _PhaseTimer(tracer, view_report.phases, "execute_update", name):
                view_report.tuples_modified = pimt(
                    registered.view, self.document, target_ids
                )
                r_sources = self._sources_excluding(pattern, inserted_ids)
                view_report.derivations_added, view_report.term_eval_seconds = et_ins(
                    registered.view, terms, r_sources, deltas, registered.lattice
                )

            with _PhaseTimer(tracer, view_report.phases, "update_lattice", name):
                additions = snowcap_additions(
                    pattern,
                    registered.lattice,
                    r_sources,
                    deltas,
                    target_ids,
                    self.use_data_pruning,
                    self.use_id_pruning,
                )
                registered.lattice.apply_insert_additions(additions)

            report.view_reports[name] = view_report
        return report

    # .. deletions ..............................................................

    def _apply_delete(self, statement: DeleteUpdate) -> PropagationReport:
        report = PropagationReport(statement)

        started = time.perf_counter()
        pul = compute_pul(self.document, statement)
        find_targets_seconds = time.perf_counter() - started
        report.pul_size = len(pul)
        targets = [op.target for op in pul.deletes()]
        target_ids = [node.id for node in targets]
        doomed = doomed_nodes(targets)
        doomed_ids = {node.id for node in doomed}

        watchlists = {
            name: self._watch_predicates(
                registered.pattern, target_ids, excluded_ids=doomed_ids
            )
            for name, registered in self.views.items()
        }

        # Per-view term evaluation happens against the *old* document.
        tracer = self.obs.tracer
        removals_by_view: Dict[str, Dict[tuple, int]] = {}
        for name, registered in self.views.items():
            view_report = ViewReport(name)
            view_report.targets = len(target_ids)
            _credit(
                tracer, view_report.phases, "find_target_nodes",
                find_targets_seconds, name,
            )
            pattern = registered.pattern

            with _PhaseTimer(tracer, view_report.phases, "compute_delta_tables", name):
                deltas = compute_delta_minus(pattern, doomed)
            view_report.delta_sizes = {
                node_name: len(rows) for node_name, rows in deltas.tables.items()
            }

            with _PhaseTimer(tracer, view_report.phases, "get_update_expression", name):
                terms, developed = surviving_delete_terms(
                    pattern,
                    deltas,
                    self.prune_even_terms,
                    self.use_data_pruning,
                    self.use_id_pruning,
                )
            view_report.terms_developed = developed
            view_report.terms_surviving = len(terms)

            with _PhaseTimer(tracer, view_report.phases, "execute_update", name):
                r_sources = self._sources_current(pattern)
                removals, view_report.term_eval_seconds = et_del(
                    registered.view, terms, r_sources, deltas, registered.lattice
                )
                tuples_removed, derivations_removed = pddt_apply(
                    registered.view, removals
                )
            view_report.tuples_removed = tuples_removed
            view_report.derivations_removed = derivations_removed

            removals_by_view[name] = removals
            report.view_reports[name] = view_report

        applied = apply_pul(self.document, pul)
        report.apply_document_seconds = applied.apply_seconds

        for name, registered in self.views.items():
            view_report = report.view_reports[name]
            if self._predicate_guard(registered, view_report, watchlists[name]):
                continue
            with _PhaseTimer(tracer, view_report.phases, "execute_update", name):
                view_report.tuples_modified = pdmt(
                    registered.view, self.document, target_ids
                )

            with _PhaseTimer(tracer, view_report.phases, "update_lattice", name):
                registered.lattice.apply_delete(doomed_ids)
        return report

    # -- sequences (Section 5) ------------------------------------------------

    def apply_sequence(
        self, statements: Sequence[UpdateStatement], optimize: bool = False
    ) -> List[PropagationReport]:
        """Propagate a sequence of statements, optionally PUL-optimized.

        With ``optimize=True`` the statements' atomic operations are
        first reduced by the rules of Section 5 (O1, O3, I5); the
        reduced sequence is then applied to document and views.
        """
        if not optimize:
            return [self.apply_update(statement) for statement in statements]
        from repro.optimizer.rules import reduce_statements

        reduced = reduce_statements(self.document, statements)
        return [self.apply_update(statement) for statement in reduced]

    # -- batches (one propagation round per statement group) --------------------

    def apply_batch(
        self,
        batch: Union[UpdateBatch, Sequence[UpdateStatement]],
        workers: Optional[int] = None,
        shard_plan: "Union[None, int, ShardPlanner]" = None,
    ) -> BatchReport:
        """Propagate a whole batch: k statements, one maintenance round.

        The document is updated statement-at-a-time (so target
        resolution and Dewey assignment are byte-identical to
        sequential application), but the view side runs once on the
        batch's *net* effects: one label-bucketed Δ+/Δ− extraction
        shared across views, one term development + evaluation, one
        extent snapshot for the merged val/cont refresh, one store pass
        and one lattice pass per view.  Nodes inserted and deleted
        within the batch cancel out of both Δ sets.

        The view-side round is organized as a shard plan (see
        :mod:`repro.sharding`): the planner hashes the batch's Δ labels
        into shard groups and cuts the per-view propagation work into
        independent units.  With ``workers=0`` (the default) the units
        run in-process; with ``workers=N`` they fan out on a worker
        pool (fork process pool where available) and the returned
        fragments are merged deterministically, so the resulting
        extents are byte-identical either way.  ``workers`` /
        ``shard_plan`` (a :class:`~repro.sharding.ShardPlanner` or a
        shard count) override the engine-level defaults per call.

        Exactness: embeddings built purely from surviving pre-batch
        nodes are state-independent unless a σ predicate flipped
        (caught by the merged watchlists, per-view recompute fallback)
        or a net-removed node's stored attributes drifted before its
        removal (caught by the dirty-subtree guard, same fallback), so
        the final extents always equal sequential application.
        """
        self._check_no_active_session()
        batch_id = None
        if self.backend is not None and self.backend.writable:
            # The WAL payload is the coalesced statement list -- what
            # the impl actually applies (coalesced() is idempotent, so
            # computing it here too costs one cheap pass).
            if isinstance(batch, UpdateBatch):
                payload = batch.coalesced().statements
            else:
                payload = list(batch)
            batch_id = self.backend.begin_batch(payload)
        try:
            with self.obs.span("batch") as span:
                report = self._apply_batch_impl(batch, workers, shard_plan)
        finally:
            self._durability_commit(batch_id)
        if self.obs.enabled:
            span.attrs["statements"] = report.statements_applied
            span.attrs["workers"] = report.workers
            self._batches_counter.inc()
            self._statements_counter.inc(report.statements_applied)
            self._coalesced_counter.inc(
                report.statements_submitted - report.statements_applied
            )
            for info in report.fallbacks.values():
                self._fallbacks_counter.inc(labels=(info["reason"],))
            for name in report.repairs:
                self._repairs_counter.inc(labels=(name,))
            self._propagation_histogram.observe(report.propagation_seconds())
        return report

    def _apply_batch_impl(
        self,
        batch: "Union[UpdateBatch, Sequence[UpdateStatement]]",
        workers: Optional[int],
        shard_plan: "Union[None, int, ShardPlanner]",
    ) -> BatchReport:
        backend = shard_backend()
        effective_workers = self.workers if workers is None else workers
        planner = backend.ShardPlanner.coerce(
            shard_plan if shard_plan is not None else self.shard_plan,
            effective_workers,
        )
        executor = backend.ShardExecutor(effective_workers, obs=self.obs)
        if isinstance(batch, UpdateBatch):
            submitted = len(batch)
            statements = batch.coalesced().statements
        else:
            statements = list(batch)
            submitted = len(statements)
        report = BatchReport(statements)
        report.statements_submitted = submitted
        report.statements_applied = len(statements)
        if self.record_deltas:
            report.view_deltas = {}
        if not statements:
            return report

        # Merged σ watchlists: first-seen satisfaction per (node,
        # constant), snapshotted against the pre-statement state --
        # i.e. the node's pre-batch value, since any earlier change
        # would itself have put the node on an earlier watchlist.
        watch: Dict[str, Dict[Tuple[DeweyID, str], bool]] = {
            name: {} for name in self.views
        }
        sigma_by_view = {
            name: [
                node
                for node in registered.pattern.nodes()
                if node.value_pred is not None
            ]
            for name, registered in self.views.items()
        }
        any_sigma = any(sigma_by_view.values())

        # Labels whose val/cont any view reads through value semantics
        # (σ filters and projection read val, stored cont reads cont);
        # a net-removed node of another label cannot drift observably.
        val_sensitive: set = set()
        cont_sensitive: set = set()
        for registered in self.views.values():
            for node in registered.pattern.nodes():
                if node.value_pred is not None or node.store_val:
                    val_sensitive.add(node.label)
                if node.store_cont:
                    cont_sensitive.add(node.label)
        # First-seen pre-batch snapshots powering dirty-subtree repair.
        # Only delete-bearing batches can net-remove a node, so
        # insert-only batches never pay the capture (or repair) cost.
        has_deletes = any(isinstance(s, DeleteUpdate) for s in statements)
        capture = bool(
            self.sigma_repair and has_deletes and (val_sensitive or cont_sensitive)
        )
        val_snapshots: Dict[DeweyID, Optional[str]] = {}
        cont_snapshots: Dict[DeweyID, Optional[str]] = {}

        def _captures_label(sensitive: set, node: Node) -> bool:
            return node.label in sensitive or (
                "*" in sensitive and node.kind == "element"
            )

        def before_apply(index: int, statement: UpdateStatement, pul) -> None:
            if not pul.operations or not (any_sigma or capture):
                return
            # Self-and-ancestor chain of every target, via live parent
            # pointers (the update can only flip σ values along it --
            # and only along it can a later-removed node's val/cont
            # drift, so the same chain feeds the dirty snapshots).
            chain: List[Node] = []
            seen: set = set()
            for op in pul.operations:
                walk: Optional[Node] = op.target
                while walk is not None:
                    if walk.dewey in seen:
                        break
                    seen.add(walk.dewey)
                    chain.append(walk)
                    walk = walk.parent
            chain.sort(key=lambda n: n.id)
            for name, sigma_nodes in sigma_by_view.items():
                if not sigma_nodes:
                    continue
                merged = watch[name]
                for node_id, constant, satisfied in _watch_entries(
                    sigma_nodes, chain
                ):
                    merged.setdefault((node_id, constant), satisfied)
            if not capture:
                return
            for node in chain:
                if _captures_label(val_sensitive, node):
                    if node.id not in val_snapshots:
                        val_snapshots[node.id] = node.val
                if _captures_label(cont_sensitive, node):
                    if node.id not in cont_snapshots:
                        cont_snapshots[node.id] = node.cont

        application = BatchApplication(self.document, statements)
        try:
            application.apply(before_apply)
        except BaseException:
            if application.applied:
                # Partially applied batch: restore view consistency
                # before surfacing the failure.
                for registered in self.views.values():
                    self._recompute(registered)
            raise
        report.apply_document_seconds = application.apply_seconds
        report.pul_size = application.pul_size

        # Net batch effects: shared across views, the cost kept
        # report-level (net_effects_seconds) rather than multiplied
        # into per-view phases.
        started = time.perf_counter()
        inserted_nodes = application.net_inserted_nodes()
        inserted_candidates = BatchCandidates(inserted_nodes)
        inserted_ids = {node.id for node in inserted_nodes}
        removed_candidates = BatchCandidates(application.net_removed_nodes())
        removed_ids = {node.id for node in removed_candidates.nodes}
        report.net_inserted = len(inserted_ids)
        report.net_removed = len(removed_ids)
        report.cancelled = application.cancelled_count()
        dirty_nodes = application.dirty_removed_nodes() if removed_ids else []
        if dirty_nodes and self.sigma_repair:
            # Restore the detached subtrees' pre-batch val/cont from the
            # first-seen snapshots; only genuinely unrestorable drift
            # (caches disabled) is left to trigger a per-view fallback.
            dirty_nodes, report.dirty_restored = self._restore_dirty_snapshots(
                dirty_nodes,
                val_snapshots,
                cont_snapshots,
                val_sensitive,
                cont_sensitive,
            )
        insert_target_ids = application.insert_target_ids
        delete_target_ids = application.delete_target_ids
        report.net_effects_seconds = time.perf_counter() - started
        # Same float as the report field: trace and report stay equal.
        self.obs.tracer.record("net_effects", report.net_effects_seconds)

        # Label-keyed source rows shared by every view this batch (the
        # per-view σ push-down happens on top of them).
        inserted_labels = set(inserted_candidates.by_label)
        survivor_cache: Dict[str, List[Node]] = {}
        pre_batch_cache: Dict[str, List[Node]] = {}

        try:
            self._propagate_batch_to_views(
                report=report,
                application=application,
                watch=watch,
                inserted_candidates=inserted_candidates,
                inserted_ids=inserted_ids,
                inserted_labels=inserted_labels,
                removed_candidates=removed_candidates,
                removed_ids=removed_ids,
                dirty_nodes=dirty_nodes,
                insert_target_ids=insert_target_ids,
                delete_target_ids=delete_target_ids,
                survivor_cache=survivor_cache,
                pre_batch_cache=pre_batch_cache,
                planner=planner,
                executor=executor,
            )
        except BaseException:
            # A failure mid-propagation leaves the failing view (and
            # possibly its lattice) half-updated; restore consistency
            # before surfacing the error, as the queue contract
            # promises.
            for registered in self.views.values():
                self._recompute(registered)
            raise
        return report

    def _propagate_batch_to_views(
        self,
        *,
        report: BatchReport,
        application: BatchApplication,
        watch: Dict[str, Dict[Tuple[DeweyID, str], bool]],
        inserted_candidates: BatchCandidates,
        inserted_ids: set,
        inserted_labels: set,
        removed_candidates: BatchCandidates,
        removed_ids: set,
        dirty_nodes: Sequence[Node],
        insert_target_ids: Sequence[DeweyID],
        delete_target_ids: Sequence[DeweyID],
        survivor_cache: Dict[str, List[Node]],
        pre_batch_cache: Dict[str, List[Node]],
        planner: "ShardPlanner",
        executor: "ShardExecutor",
    ) -> None:
        """The batch's view-side round: plan, execute shards, merge.

        The round runs in stages shared by the serial and parallel
        paths (so there is exactly one propagation code body):

        1. per view, the recompute-fallback guards, then the pure work
           is cut into shard units (refresh scan, Δ− side, Δ+ side);
        2. if any view has a live Δ− side, a first shard round runs the
           refresh scans and the Δ− evaluations -- both read pre-batch
           state -- and the doomed lattice rows are dropped;
        3. a second round (the only one for insert-only batches) runs
           the Δ+ evaluations and snowcap additions over survivor
           relations;
        4. fragments are merged deterministically and applied: one
           store pass and one lattice extend per view.

        Mutation happens only between rounds, on the owning process;
        units are pure, which is what makes the fan-out exact.
        """
        serial = not executor.parallel
        report.workers = executor.workers if executor.parallel else 0
        tracer = self.obs.tracer

        contexts: List[_ViewRound] = []
        fallback_views: List[RegisteredView] = []
        for name, registered in self.views.items():
            view_report = ViewReport(name)
            view_report.targets = len(insert_target_ids) + len(delete_target_ids)
            _credit(
                tracer, view_report.phases, "find_target_nodes",
                application.find_targets_seconds, name,
            )
            report.view_reports[name] = view_report
            pattern = registered.pattern

            flips = (
                self._batch_flips(watch[name], inserted_ids) if watch[name] else {}
            )
            reason = None
            candidates = 0
            if dirty_nodes:
                candidates = self._dirty_affects(pattern, dirty_nodes)
                if candidates:
                    reason = "dirty_removed_subtree"
            if reason is None and flips and not self.sigma_repair:
                reason = "predicate_flip"
                candidates = len(flips)
            if reason is not None:
                view_report.predicate_fallback = True
                report.fallbacks[name] = {
                    "reason": reason,
                    "candidates": candidates,
                }
                fallback_views.append(registered)
                continue
            view_report.delta_sizes = {
                node_name: 0 for node_name in pattern.node_names()
            }
            ctx = _ViewRound(name, registered, view_report)
            if flips:
                minus_sets, plus_sets = match_flips_to_pattern(pattern, flips)
                if minus_sets or plus_sets:
                    ctx.flips = flips
                    ctx.minus_sets = minus_sets
                    ctx.plus_sets = plus_sets
                    report.repairs[name] = {"sigma_flips": len(flips)}
            contexts.append(ctx)
        if fallback_views:
            self._recompute_views(
                fallback_views, planner=planner, executor=executor, report=report
            )
        if not contexts:
            return

        # -- plan: cut per-view work into shard units ------------------
        backend = shard_backend()
        refresh_units: List[RefreshUnit] = []
        minus_units: List[DeleteSideUnit] = []
        plus_units: List[InsertSideUnit] = []
        repair_units: List["SigmaRepairUnit"] = []
        by_name = {ctx.name: ctx for ctx in contexts}
        any_targets = bool(insert_target_ids or delete_target_ids)
        for ctx in contexts:
            pattern = ctx.registered.pattern
            if any_targets and pattern.content_nodes():
                refresh_units.append(
                    backend.RefreshUnit(
                        ctx.name,
                        planner.anchor_shard(()),
                        view=ctx.registered.view,
                        document=self.document,
                        insert_target_ids=insert_target_ids,
                        delete_target_ids=delete_target_ids,
                    )
                )
            minus_labels = planner.touched_labels(pattern, removed_candidates)
            if minus_labels:
                estimate = sum(
                    len(removed_candidates.by_label.get(label, ()))
                    for label in minus_labels
                )
                minus_units.append(
                    backend.DeleteSideUnit(
                        ctx.name,
                        planner.anchor_shard(minus_labels),
                        minus_labels,
                        estimate,
                        engine=self,
                        registered=ctx.registered,
                        removed_candidates=removed_candidates,
                        inserted_ids=inserted_ids,
                        inserted_labels=inserted_labels,
                        source_cache=pre_batch_cache,
                        flips=set(ctx.flips) if ctx.flips else None,
                    )
                )
                ctx.has_minus_unit = True
            plus_labels = planner.touched_labels(pattern, inserted_candidates)
            if plus_labels:
                estimate = sum(
                    len(inserted_candidates.by_label.get(label, ()))
                    for label in plus_labels
                )
                plus_units.append(
                    backend.InsertSideUnit(
                        ctx.name,
                        planner.anchor_shard(plus_labels),
                        plus_labels,
                        estimate,
                        engine=self,
                        registered=ctx.registered,
                        inserted_candidates=inserted_candidates,
                        inserted_ids=inserted_ids,
                        inserted_labels=inserted_labels,
                        insert_target_ids=insert_target_ids,
                        source_cache=survivor_cache,
                    )
                )
                ctx.has_plus_unit = True
            if ctx.minus_sets or ctx.plus_sets:
                flip_nodes = [
                    node
                    for sets in (ctx.minus_sets, ctx.plus_sets)
                    for nodes in sets.values()
                    for node in nodes
                ]
                flip_labels = sorted({node.label for node in flip_nodes})
                repair_units.append(
                    backend.SigmaRepairUnit(
                        ctx.name,
                        planner.anchor_shard(flip_labels),
                        flip_labels,
                        len(flip_nodes),
                        engine=self,
                        registered=ctx.registered,
                        minus_sets=ctx.minus_sets,
                        plus_sets=ctx.plus_sets,
                        inserted_ids=inserted_ids,
                        inserted_labels=inserted_labels,
                        source_cache=survivor_cache,
                    )
                )
                ctx.has_repair_unit = True
        if executor.parallel:
            self._prewarm_value_index(contexts)
            # Fill the shared per-label source rows in the parent so
            # every worker inherits them read-only (fork: copy-on-write
            # pages; thread: plain reads).  Without this each child
            # would re-filter the touched canonical relations -- once
            # per view per worker -- and the threaded fallback would
            # race on the shared cache dicts.
            if minus_units:
                for ctx in contexts:
                    if ctx.has_minus_unit:
                        with _PhaseTimer(
                            tracer, ctx.report.phases, "execute_update", ctx.name
                        ):
                            self._sources_pre_batch(
                                ctx.registered.pattern,
                                inserted_ids,
                                inserted_labels,
                                removed_candidates,
                                pre_batch_cache,
                                flips=set(ctx.flips) if ctx.flips else None,
                            )
            if plus_units or repair_units:
                for ctx in contexts:
                    if ctx.has_plus_unit or ctx.has_repair_unit:
                        with _PhaseTimer(
                            tracer, ctx.report.phases, "execute_update", ctx.name
                        ):
                            self._sources_excluding(
                                ctx.registered.pattern,
                                inserted_ids,
                                cache=survivor_cache,
                                excluded_labels=inserted_labels,
                            )

        # -- execute: one round when the batch is insert-only, two when
        # a Δ− side must read the lattice before its doomed rows drop --
        two_rounds = bool(minus_units)
        if two_rounds:
            result = executor.run(planner.order_units(refresh_units + minus_units))
            self._absorb_round(report, result, serial)
            self._apply_round_fragments(result, by_name, serial, report)
            for ctx in contexts:
                if ctx.minus_live:
                    with _PhaseTimer(
                        tracer, ctx.report.phases, "update_lattice", ctx.name
                    ):
                        ctx.registered.lattice.apply_batch(removed_ids, {})
            round2_units = planner.order_units(plus_units + repair_units)
        else:
            round2_units = planner.order_units(
                refresh_units + plus_units + repair_units
            )
        # σ-flip lattice upkeep sits between the rounds: the Δ− units
        # must read the *pre-batch* lattice (their R-part seeds), while
        # the Δ+ units' ET-INS and snowcap recurrences seed from the
        # current-survivor lattice -- which only the column-aware flip
        # pass (drop flipped-false rows, append flipped-true ones)
        # makes exact.  In the single-round case there is no Δ− reader,
        # so the repair simply precedes the round.
        for ctx in contexts:
            if not (ctx.minus_sets or ctx.plus_sets):
                continue
            lattice = ctx.registered.lattice
            if not lattice.materialized_sets():
                continue
            with _PhaseTimer(tracer, ctx.report.phases, "update_lattice", ctx.name):
                r_sources = self._sources_excluding(
                    ctx.registered.pattern,
                    inserted_ids,
                    cache=survivor_cache,
                    excluded_labels=inserted_labels,
                )
                drops, flip_additions = flip_lattice_repair(
                    ctx.registered.pattern,
                    lattice,
                    ctx.minus_sets,
                    ctx.plus_sets,
                    r_sources,
                )
                dropped = lattice.apply_flip_repair(drops, flip_additions)
                entry = report.repairs.setdefault(ctx.name, {})
                entry["lattice_dropped"] = dropped
                entry["lattice_added"] = sum(
                    len(relation.rows) for relation in flip_additions.values()
                )
        # Snowcap rows are shipped as ID tuples only when the round will
        # really cross a process boundary; single-unit rounds run inline
        # (and thread rounds share memory), where the conversion plus
        # owner-side re-resolution would be pure overhead.
        crosses_process = executor.mode == "fork" and len(round2_units) >= 2
        for unit in round2_units:
            if unit.kind == "plus":
                unit.ship_ids = crosses_process
        result = executor.run(round2_units)
        self._absorb_round(report, result, serial)
        self._apply_round_fragments(result, by_name, serial, report)

        # -- merge + apply: one store pass and one lattice extend ------
        for ctx in contexts:
            if ctx.embedding_fragments:
                ctx.removals = backend.merge_embedding_fragments(
                    ctx.embedding_fragments
                )
            if ctx.addition_fragments:
                ctx.additions = backend.merge_addition_fragments(
                    ctx.addition_fragments
                )
            if report.view_deltas is not None:
                deltas = report.view_deltas.setdefault(ctx.name, {})
                deltas["additions"] = ctx.additions
                deltas["removals"] = ctx.removals
            with _PhaseTimer(tracer, ctx.report.phases, "execute_update", ctx.name):
                added, tuples_removed, derivations_removed = (
                    ctx.registered.view.apply_batch_delta(ctx.additions, ctx.removals)
                )
            ctx.report.derivations_added = added
            ctx.report.tuples_removed = tuples_removed
            ctx.report.derivations_removed = derivations_removed
            if ctx.snowcap:
                with _PhaseTimer(
                    tracer, ctx.report.phases, "update_lattice", ctx.name
                ):
                    lattice_additions = backend.resolve_snowcap_fragment(
                        ctx.snowcap, self.document
                    )
                    if lattice_additions:
                        ctx.registered.lattice.apply_batch(set(), lattice_additions)

    def _apply_round_fragments(
        self,
        result: "RoundResult",
        by_name: Dict[str, "_ViewRound"],
        serial: bool,
        report: BatchReport,
    ) -> None:
        """Merge one round's fragments into the per-view contexts."""
        backend = shard_backend()
        tracer = self.obs.tracer
        for unit, fragment, seconds in zip(
            result.units, result.fragments, result.unit_seconds
        ):
            ctx = by_name[unit.view_name]
            if unit.kind == "refresh":
                if report.view_deltas is not None:
                    report.view_deltas.setdefault(ctx.name, {})["refresh"] = fragment
                started = time.perf_counter()
                ctx.report.tuples_modified = apply_attribute_refreshes(
                    ctx.registered.view, fragment
                )
                applied = time.perf_counter() - started
                _credit(
                    tracer,
                    ctx.report.phases,
                    "execute_update",
                    applied + (seconds if serial else 0.0),
                    ctx.name,
                )
                continue
            if unit.kind == "minus":
                embeddings, stats = fragment
                ctx.minus_live = stats.live
                if embeddings:
                    ctx.embedding_fragments.append(embeddings)
            elif unit.kind == "repair":
                evictions, admissions, stats = fragment
                if evictions:
                    # Disjoint from the Δ− embeddings by construction
                    # (evict sources hold only survivors), so the final
                    # union never collapses a genuine removal.
                    ctx.embedding_fragments.append(evictions)
                if admissions:
                    ctx.addition_fragments.append(admissions)
                entry = report.repairs.setdefault(ctx.name, {})
                entry["evicted"] = entry.get("evicted", 0) + len(evictions)
                entry["admitted"] = entry.get("admitted", 0) + sum(
                    admissions.values()
                )
            else:
                additions, snowcap_rows, stats = fragment
                if additions:
                    ctx.addition_fragments.append(additions)
                ctx.snowcap = snowcap_rows
            self._absorb_unit_stats(ctx.report, stats, seconds, serial)

    def _absorb_unit_stats(
        self, view_report: ViewReport, stats: "UnitStats", seconds: float, serial: bool
    ) -> None:
        """Fold a unit's counters (and, serially, its time) into the report.

        In parallel mode per-unit compute happens on workers whose wall
        time is already counted once at report level
        (``BatchReport.shard_seconds``); adding it to per-view phases
        too would double-count, so only the counters are absorbed.
        """
        for node_name, size in stats.delta_sizes.items():
            view_report.delta_sizes[node_name] = (
                view_report.delta_sizes.get(node_name, 0) + size
            )
        view_report.terms_developed += stats.terms_developed
        view_report.terms_surviving += stats.terms_surviving
        view_report.term_eval_seconds += stats.eval_seconds
        if serial:
            tracer = self.obs.tracer
            phases = view_report.phases
            name = view_report.name
            _credit(tracer, phases, "compute_delta_tables", stats.delta_seconds, name)
            _credit(tracer, phases, "get_update_expression", stats.develop_seconds, name)
            _credit(tracer, phases, "update_lattice", stats.snowcap_seconds, name)
            _credit(
                tracer,
                phases,
                "execute_update",
                max(
                    0.0,
                    seconds
                    - stats.delta_seconds
                    - stats.develop_seconds
                    - stats.snowcap_seconds,
                ),
                name,
            )

    def _absorb_round(
        self, report: BatchReport, result: "RoundResult", serial: bool
    ) -> None:
        if not result.units:
            return
        report.shard_rounds.append(result.describe())
        if not serial:
            report.shard_seconds += result.wall_seconds
            # Same float as the shard_seconds increment; worker-side
            # span trees (shipped as picklable fragments) are stitched
            # back under the round span in unit order.
            span = self.obs.tracer.record(
                "shard_round",
                result.wall_seconds,
                mode=result.mode,
                units=len(result.units),
            )
            fragments = getattr(result, "span_fragments", None)
            if fragments and any(fragments):
                self.obs.tracer.adopt(
                    span, shard_backend().merge_span_fragments(fragments)
                )

    def _prewarm_value_index(self, contexts: Sequence["_ViewRound"]) -> None:
        """Flush value-index dirty sets before fanning out.

        Worker processes inherit state by fork, so a lazy re-bucketing
        would otherwise be repeated in every child (and would race in
        the thread fallback); one parent-side lookup per σ predicate
        makes the subsequent unit-side lookups read-only.
        """
        seen = set()
        for ctx in contexts:
            for node in ctx.registered.pattern.nodes():
                if node.value_pred is None:
                    continue
                key = (node.label, node.value_pred)
                if key in seen:
                    continue
                seen.add(key)
                self.document.nodes_with_value(node.label, node.value_pred)

    def _dirty_affects(self, pattern: Pattern, dirty_nodes: Sequence[Node]) -> int:
        """How many drifted removed nodes reach this view's values?

        Drift matters only through value semantics: a σ-constant filter
        on the node's label (Δ− filtering and R_old reconstruction read
        the detached value) or a stored ``val``/``cont`` attribute (the
        removal tuple's projection must match what the extent holds).
        Views that bind the label by ID alone are exact regardless --
        structural joins never read values.  With snapshot repair
        active the caller passes only the *unrestorable* drifted nodes,
        so the returned count is per-candidate: it sizes the structured
        fallback entry and is zero exactly when no fallback is needed.
        """
        sensitive = [
            node
            for node in pattern.nodes()
            if node.value_pred is not None or node.store_val or node.store_cont
        ]
        if not sensitive:
            return 0
        count = 0
        for dirty in dirty_nodes:
            for node in sensitive:
                if node.label == "*":
                    if dirty.kind == "element":
                        count += 1
                        break
                elif node.matches_label(dirty.label):
                    count += 1
                    break
        return count

    def _restore_dirty_snapshots(
        self,
        dirty_nodes: Sequence[Node],
        val_snapshots: Dict[DeweyID, Optional[str]],
        cont_snapshots: Dict[DeweyID, Optional[str]],
        val_sensitive: set,
        cont_sensitive: set,
    ) -> Tuple[List[Node], int]:
        """Restore pre-batch val/cont onto drifted detached subtrees.

        Every val/cont change puts the node on a ``before_apply``
        chain, so a sensitive-labeled dirty node with *no* snapshot
        provably never drifted -- it is clean.  A node whose snapshot
        equals its current (detached) value is clean too.  Genuine
        drift is repaired by installing the snapshot into the hot-path
        memo caches, which every downstream reader (Δ− σ-filtering,
        R_old reconstruction, removal projection) consults; with the
        caches disabled there is nowhere to park the snapshot, and the
        node stays on the unrepaired list for the per-view fallback
        guard.  Returns ``(unrepaired nodes, snapshots restored)``.
        """
        caches_on = hot_path_caches_enabled()
        unrepaired: List[Node] = []
        restored = 0
        for node in dirty_nodes:
            is_element = node.kind == "element"
            broken = False
            repaired = False
            if node.label in val_sensitive or (
                "*" in val_sensitive and is_element
            ):
                snapshot = val_snapshots.get(node.id, _MISSING)
                if snapshot is not _MISSING and snapshot != node.val:
                    if caches_on and is_element:
                        node._val_cache = snapshot
                        repaired = True
                    else:
                        broken = True
            if not broken and (
                node.label in cont_sensitive
                or ("*" in cont_sensitive and is_element)
            ):
                snapshot = cont_snapshots.get(node.id, _MISSING)
                if snapshot is not _MISSING and snapshot != node.cont:
                    if caches_on and is_element:
                        node._cont_cache = snapshot
                        repaired = True
                    else:
                        broken = True
            if broken:
                unrepaired.append(node)
            elif repaired:
                restored += 1
        return unrepaired, restored

    def _batch_flips(
        self,
        watch: Dict[Tuple[DeweyID, str], bool],
        inserted_ids: set,
    ) -> Dict[Tuple[DeweyID, str], Tuple[Node, bool]]:
        """Surviving pre-existing σ candidates that flipped this batch.

        Maps ``(node ID, constant)`` to ``(live node, satisfied now)``.
        Batch-inserted survivors are skipped (the Δ+ side σ-filters
        them against final values) and removed candidates are skipped
        (the Δ− side reads their detached values, which the dirty-
        subtree machinery certifies as pre-batch).
        """
        flips: Dict[Tuple[DeweyID, str], Tuple[Node, bool]] = {}
        for (node_id, constant), satisfied in watch.items():
            if node_id in inserted_ids:
                continue
            node = self.document.node_by_id(node_id)
            if node is None:
                continue
            now = node.val == constant
            if now != satisfied:
                flips[(node_id, constant)] = (node, now)
        return flips

    def _sources_pre_batch(
        self,
        pattern: Pattern,
        inserted_ids: set,
        inserted_labels: set,
        removed_candidates: BatchCandidates,
        cache: Optional[Dict[str, List[Node]]] = None,
        flips: Optional[set] = None,
    ) -> Sources:
        """Reconstructed pre-batch σ-filtered canonical relations.

        ``R_old`` per label = live survivors (current relation minus
        batch inserts) plus the net-removed nodes, which -- detached
        with their subtrees intact and certified clean (or snapshot-
        restored) by the dirty machinery -- still expose their
        pre-batch ``val``/``cont``.

        ``flips`` holds the batch's ``(node ID, constant)`` σ-flip keys
        for the calling view: a surviving candidate's *pre-batch*
        membership in a σ relation is its current test XOR-ed with flip
        membership, and a flipped label must skip the untouched-label
        fast path (its value-index rows reflect post-flip membership
        even though the batch inserted/removed no node of the label).

        Labels the batch never touched reference the live relation (or
        the value index) directly; touched labels build their merged
        base row once per batch in ``cache`` and σ-filter per view on
        top.  Term evaluation never mutates its sources, so shared
        lists are safe.
        """
        if cache is None:
            cache = {}
        flip_labels: set = (
            {node_id.label for node_id, _constant in flips} if flips else set()
        )
        sources: Sources = {}
        for node in pattern.nodes():
            label = node.label
            sigma_flipped = (
                node.value_pred is not None and flips and (
                    label == "*" or label in flip_labels
                )
            )
            if (
                label != "*"
                and label not in inserted_labels
                and label not in removed_candidates.by_label
                and not sigma_flipped
            ):
                # Untouched label: R_old == R_new.
                if node.value_pred is not None:
                    sources[node.name] = self.document.nodes_with_value(
                        label, node.value_pred
                    )
                else:
                    sources[node.name] = self.document.nodes_with_label(label)
                continue
            base = cache.get(label)
            if base is None:
                if label == "*":
                    base = [
                        candidate
                        for candidate in self.document.all_elements()
                        if candidate.id not in inserted_ids
                    ]
                    base.extend(
                        candidate
                        for candidate in removed_candidates.nodes
                        if candidate.kind == "element"
                    )
                else:
                    base = [
                        candidate
                        for candidate in self.document.nodes_with_label(label)
                        if candidate.id not in inserted_ids
                    ]
                    base.extend(removed_candidates.by_label.get(label, ()))
                base.sort(key=lambda n: n.id)
                cache[label] = base
            if node.value_pred is not None and sigma_flipped:
                # Removed candidates are never flip keys (flips track
                # only live survivors), so their XOR term is False and
                # the test reads their detached pre-batch value as-is.
                constant = node.value_pred
                if label == "*":
                    rows = [
                        n
                        for n in base
                        if n.kind == "element"
                        and (n.val == constant) != ((n.id, constant) in flips)
                    ]
                else:
                    rows = [
                        n
                        for n in base
                        if (n.val == constant) != ((n.id, constant) in flips)
                    ]
            elif label == "*":
                rows = filter_by_predicate(base, node)
            elif node.value_pred is not None:
                constant = node.value_pred
                rows = [n for n in base if n.val == constant]
            else:
                rows = base
            sources[node.name] = rows
        return sources

    def _sources_flip_pre(
        self,
        pattern: Pattern,
        inserted_ids: set,
        inserted_labels: set,
        cache: Optional[Dict[str, List[Node]]],
        minus_sets: Dict[str, List[Node]],
        plus_sets: Dict[str, List[Node]],
    ) -> Sources:
        """Survivor relations at *pre-batch* σ membership, per flip.

        The evict side of a σ-flip repair reproduces embeddings the
        extent stored before the batch, so its sources are the current
        survivor relations with each flipped σ node's relation rolled
        back: flipped-true candidates (present now, absent then)
        dropped, flipped-false candidates (absent now, present then)
        restored.  Net-removed nodes stay excluded -- embeddings
        binding them are the Δ− side's job, which keeps the two
        doomed-embedding sets disjoint.
        """
        sources = self._sources_excluding(
            pattern, inserted_ids, cache=cache, excluded_labels=inserted_labels
        )
        for name in sorted(set(minus_sets) | set(plus_sets)):
            rows = sources.get(name)
            if rows is None:
                continue
            plus_ids = {node.id for node in plus_sets.get(name, ())}
            adjusted = (
                [n for n in rows if n.id not in plus_ids]
                if plus_ids
                else list(rows)
            )
            adjusted.extend(minus_sets.get(name, ()))
            adjusted.sort(key=lambda n: n.id)
            sources[name] = adjusted
        return sources

    # -- helpers -----------------------------------------------------------------

    def _watch_predicates(
        self,
        pattern: Pattern,
        target_ids: Sequence[DeweyID],
        excluded_ids: Optional[set] = None,
    ) -> List[Tuple[DeweyID, str, bool]]:
        """Snapshot (node, constant, satisfied) for flippable σ nodes.

        Only ancestors-or-self of the update targets can have their
        ``val`` flipped by the update, and the Dewey scheme encodes the
        whole ancestor chain in each target's ID -- so the watchlist is
        built from O(#targets × depth) ID-derived candidates instead of
        scanning every node of every σ label.
        """
        watch: List[Tuple[DeweyID, str, bool]] = []
        if not target_ids:
            return watch
        sigma_nodes = [node for node in pattern.nodes() if node.value_pred is not None]
        if not sigma_nodes:
            return watch
        seen: set = set()
        chain: List[Node] = []
        for target in target_ids:
            for candidate_id in list(target.ancestor_ids()) + [target]:
                if candidate_id in seen:
                    continue
                seen.add(candidate_id)
                if excluded_ids and candidate_id in excluded_ids:
                    continue
                candidate = self.document.node_by_id(candidate_id)
                if candidate is not None:
                    chain.append(candidate)
        chain.sort(key=lambda n: n.id)
        return _watch_entries(sigma_nodes, chain)

    def _watch_changed(self, watch: List[Tuple[DeweyID, str, bool]]) -> bool:
        for node_id, constant, satisfied in watch:
            node = self.document.node_by_id(node_id)
            now = node is not None and node.val == constant
            if now != satisfied:
                return True
        return False

    def _recompute(self, registered: RegisteredView) -> None:
        """Whole-view fallback: rebuild extent and lattice in-process."""
        fresh = MaterializedView.materialize(
            registered.pattern, self.document, name=registered.name
        )
        # Content-level reload: the registered view keeps its store
        # object (and, with a durable backend, its table binding).
        registered.view.reload_content(fresh.content())
        registered.lattice.materialize(self.document)

    def _recompute_views(
        self,
        registered_views: Sequence[RegisteredView],
        planner=None,
        executor=None,
        report: Optional[BatchReport] = None,
    ) -> None:
        """Rebuild fallback views, as shard work when a pool is up.

        Materialization is pure (evaluate extent pairs, evaluate
        snowcap relations), so true fallbacks need not serialize on the
        owner: each view becomes an extent unit plus -- when snowcaps
        are materialized -- a lattice unit, executed through the same
        executor as the batch rounds and installed from the returned
        fragments.  With no parallel executor (or a single unit) the
        plain in-process rebuild is cheaper and byte-identical.
        """
        if not registered_views:
            return
        units: List = []
        parallel = executor is not None and executor.parallel
        if parallel and planner is not None:
            backend = shard_backend()
            for registered in registered_views:
                pattern = registered.pattern
                labels = sorted(
                    {
                        node.label
                        for node in pattern.nodes()
                        if node.label != "*"
                    }
                )
                shard = planner.anchor_shard(labels)
                units.append(
                    backend.ExtentRecomputeUnit(
                        registered.name,
                        shard,
                        pattern=pattern,
                        document=self.document,
                        estimate=max(len(registered.view), 1),
                    )
                )
                if registered.lattice.selected:
                    units.append(
                        backend.LatticeRecomputeUnit(
                            registered.name,
                            shard,
                            pattern=pattern,
                            document=self.document,
                            selected=registered.lattice.selected,
                            estimate=max(registered.lattice.stored_tuples(), 1),
                        )
                    )
        if len(units) < 2:
            for registered in registered_views:
                started = time.perf_counter()
                self._recompute(registered)
                if report is not None and registered.name in report.view_reports:
                    _credit(
                        self.obs.tracer,
                        report.view_reports[registered.name].phases,
                        "execute_update",
                        time.perf_counter() - started,
                        registered.name,
                    )
            return
        backend = shard_backend()
        by_name = {registered.name: registered for registered in registered_views}
        result = executor.run(planner.order_units(units))
        if report is not None:
            self._absorb_round(report, result, serial=False)
        for unit, fragment in zip(result.units, result.fragments):
            registered = by_name[unit.view_name]
            if unit.kind == "recompute_extent":
                pairs, _stats = fragment
                registered.view.reload_content(pairs)
            else:
                rows, _stats = fragment
                relations = backend.resolve_snowcap_fragment(rows, self.document)
                for subset, relation in relations.items():
                    registered.lattice.load_materialized(subset, relation)


class BatchEngine:
    """Batch-first facade over :class:`MaintenanceEngine`.

    The primary API is :meth:`apply`, which takes an
    :class:`~repro.updates.language.UpdateBatch` (or any statement
    sequence) and propagates it in one maintenance round; the
    per-statement :meth:`apply_update` is kept as a batch-of-one shim.
    Pair with :class:`repro.maintenance.queue.ApplyQueue` (see
    :meth:`queue`) for asynchronous application.
    """

    def __init__(self, engine_or_document: Union[MaintenanceEngine, Document], **options):
        if isinstance(engine_or_document, MaintenanceEngine):
            if options:
                raise ValueError("engine options only apply when passing a document")
            self.engine = engine_or_document
        else:
            self.engine = MaintenanceEngine(engine_or_document, **options)

    @property
    def workers(self) -> int:
        return self.engine.workers

    @property
    def obs(self) -> Observability:
        return self.engine.obs

    @property
    def document(self) -> Document:
        return self.engine.document

    @property
    def views(self) -> Dict[str, RegisteredView]:
        return self.engine.views

    @property
    def backend(self):
        return self.engine.backend

    def sync_durability(self) -> None:
        self.engine.sync_durability()

    def register_view(self, *args, **kwargs) -> RegisteredView:
        return self.engine.register_view(*args, **kwargs)

    def unregister_view(self, name: str) -> None:
        self.engine.unregister_view(name)

    def apply(
        self,
        batch: Union[UpdateBatch, Sequence[UpdateStatement]],
        workers: Optional[int] = None,
        shard_plan: "Union[None, int, ShardPlanner]" = None,
    ) -> BatchReport:
        """Propagate a batch: one Δ extraction, one round per view.

        ``workers`` / ``shard_plan`` override the engine defaults for
        this batch (see :meth:`MaintenanceEngine.apply_batch`).
        """
        return self.engine.apply_batch(batch, workers=workers, shard_plan=shard_plan)

    def apply_update(self, statement: UpdateStatement) -> BatchReport:
        """Per-statement entry point, implemented as a batch of one.

        Note the return type: a :class:`BatchReport` (``.statements``,
        ``.fallbacks``), not the :class:`PropagationReport` of
        :meth:`MaintenanceEngine.apply_update` -- callers needing the
        per-statement report shape should use the inner engine
        directly.
        """
        return self.engine.apply_batch([statement])

    def queue(self, **options) -> "ApplyQueue":  # noqa: F821 (runtime import)
        """A started :class:`ApplyQueue` draining into this engine."""
        from repro.maintenance.queue import ApplyQueue

        return ApplyQueue(self, **options)

    def session(self, workers: int = 4, planner=None, weights=None, rebalance=None):
        """A resident :class:`~repro.sharding.ShardSession` over the
        wrapped engine (see :meth:`MaintenanceEngine.session`)."""
        return self.engine.session(
            workers=workers, planner=planner, weights=weights, rebalance=rebalance
        )

    def __repr__(self) -> str:
        return "BatchEngine(%d views)" % len(self.engine.views)


# Dependency inversion for crash recovery: ``repro.storage`` sits below
# this layer and cannot import it, so the engine class registers itself
# as the factory ``repro.storage.recovery.reopen`` instantiates.
register_engine_factory(MaintenanceEngine)
