"""End-to-end maintenance driver with the experiments' phase breakdown.

The engine owns a document plus any number of registered views (each
with its materialized extent and snowcap lattice) and propagates
statement-level updates through the combined PINT/MT and PDDT/MT
pipelines (Figures 8 and 9), timing the five phases reported throughout
Section 6:

* **Find Target Nodes** -- evaluating the update's target path
  (the job the paper delegates to Saxon);
* **Compute Delta Tables** -- CD+ / CD−;
* **Get Update Expression** -- developing the 2^k − 1 terms and pruning
  them (Props. 3.3/3.6/3.8 resp. 4.2/4.3/4.7);
* **Execute Update** -- evaluating surviving terms and applying tuple
  additions / derivation-count decrements / val-cont rewrites;
* **Update Lattice** -- maintaining the materialized snowcaps.

Exactness note (beyond the paper): an update can flip the σ value
predicate of an *existing* node (e.g. inserting text under a node whose
``val`` a view filters on).  The 2^k − 1 terms cannot express this --
their all-R term is the unchanged view.  The engine detects the
situation from ID-based ancestry plus a val snapshot and falls back to
recomputing the affected view, flagging ``predicate_fallback`` in the
report; none of the paper's workloads trigger it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.maintenance.delta import (
    DeltaTables,
    compute_delta_minus,
    compute_delta_plus,
    doomed_nodes,
)
from repro.maintenance.delete import (
    et_del,
    pddt_apply,
    pdmt,
    surviving_delete_terms,
)
from repro.maintenance.insert import (
    et_ins,
    pimt,
    snowcap_additions,
    surviving_insert_terms,
)
from repro.pattern.evaluate import Sources, filter_by_predicate
from repro.pattern.tree_pattern import Pattern
from repro.pattern.xquery import ViewDefinition
from repro.updates.language import DeleteUpdate, InsertUpdate, UpdateStatement
from repro.updates.pul import apply_pul, compute_pul
from repro.views.lattice import SnowcapLattice
from repro.views.view import MaterializedView
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Document, Node

PHASES = (
    "find_target_nodes",
    "compute_delta_tables",
    "get_update_expression",
    "execute_update",
    "update_lattice",
)


class PhaseTimes:
    """Per-phase wall-clock seconds for one propagated update."""

    def __init__(self) -> None:
        self.find_target_nodes = 0.0
        self.compute_delta_tables = 0.0
        self.get_update_expression = 0.0
        self.execute_update = 0.0
        self.update_lattice = 0.0

    def total(self) -> float:
        return sum(getattr(self, phase) for phase in PHASES)

    def as_dict(self) -> Dict[str, float]:
        return {phase: getattr(self, phase) for phase in PHASES}

    def add(self, other: "PhaseTimes") -> None:
        for phase in PHASES:
            setattr(self, phase, getattr(self, phase) + getattr(other, phase))

    def __repr__(self) -> str:
        parts = ", ".join("%s=%.4f" % (phase, getattr(self, phase)) for phase in PHASES)
        return "PhaseTimes(%s)" % parts


class ViewReport:
    """Outcome of propagating one update to one view."""

    def __init__(self, name: str):
        self.name = name
        self.phases = PhaseTimes()
        self.targets = 0
        self.delta_sizes: Dict[str, int] = {}
        self.terms_developed = 0
        self.terms_surviving = 0
        self.derivations_added = 0
        self.tuples_modified = 0
        self.tuples_removed = 0
        self.derivations_removed = 0
        self.term_eval_seconds = 0.0
        self.predicate_fallback = False

    def __repr__(self) -> str:
        return (
            "ViewReport(%s: +%d der, -%d der, mod %d, terms %d/%d, %.4fs)"
            % (
                self.name,
                self.derivations_added,
                self.derivations_removed,
                self.tuples_modified,
                self.terms_surviving,
                self.terms_developed,
                self.phases.total(),
            )
        )


class PropagationReport:
    """Outcome of one statement across all registered views."""

    def __init__(self, statement: UpdateStatement):
        self.statement = statement
        self.view_reports: Dict[str, ViewReport] = {}
        self.apply_document_seconds = 0.0
        self.pul_size = 0

    def report_for(self, name: str) -> ViewReport:
        return self.view_reports[name]

    def total_maintenance_seconds(self) -> float:
        return sum(report.phases.total() for report in self.view_reports.values())

    def __repr__(self) -> str:
        return "PropagationReport(%s, %d views, %.4fs)" % (
            self.statement.name,
            len(self.view_reports),
            self.total_maintenance_seconds(),
        )


class RegisteredView:
    """A view under maintenance: extent + lattice + options."""

    def __init__(self, name: str, view: MaterializedView, lattice: SnowcapLattice,
                 definition: Optional[ViewDefinition] = None):
        self.name = name
        self.view = view
        self.lattice = lattice
        self.definition = definition

    @property
    def pattern(self) -> Pattern:
        return self.view.pattern

    def __repr__(self) -> str:
        return "RegisteredView(%s, %d tuples, %s lattice)" % (
            self.name,
            len(self.view),
            self.lattice.strategy,
        )


class MaintenanceEngine:
    """Propagates statement-level updates to registered views."""

    def __init__(
        self,
        document: Document,
        prune_even_terms: bool = True,
        use_data_pruning: bool = True,
        use_id_pruning: bool = True,
    ):
        self.document = document
        self.prune_even_terms = prune_even_terms
        self.use_data_pruning = use_data_pruning
        self.use_id_pruning = use_id_pruning
        self.views: Dict[str, RegisteredView] = {}

    # -- registration ------------------------------------------------------

    def register_view(
        self,
        view_source: Union[Pattern, ViewDefinition, str],
        name: Optional[str] = None,
        strategy: str = "snowcaps",
        update_profile: Optional[Sequence[str]] = None,
    ) -> RegisteredView:
        """Materialize a view (and its snowcaps) over the document.

        ``view_source`` may be a tree pattern, a parsed
        :class:`ViewDefinition`, or the view's XQuery text.
        ``update_profile`` optionally lists the labels the workload is
        expected to update, steering the cost-based snowcap selection
        (Section 3.5).
        """
        definition: Optional[ViewDefinition] = None
        if isinstance(view_source, str):
            from repro.pattern.xquery import parse_view

            definition = parse_view(view_source)
            pattern = definition.pattern
        elif isinstance(view_source, ViewDefinition):
            definition = view_source
            pattern = definition.pattern
        else:
            pattern = view_source
        name = name or "view%d" % (len(self.views) + 1)
        if name in self.views:
            raise ValueError("a view named %r is already registered" % name)
        view = MaterializedView.materialize(pattern, self.document, name=name)
        lattice = SnowcapLattice(pattern, strategy=strategy, update_profile=update_profile)
        lattice.materialize(self.document)
        registered = RegisteredView(name, view, lattice, definition)
        self.views[name] = registered
        return registered

    def unregister_view(self, name: str) -> None:
        del self.views[name]

    # -- source relations ---------------------------------------------------

    def _sources_excluding(self, pattern: Pattern, excluded_ids: set) -> Sources:
        """σ-filtered canonical relations, minus the given node IDs.

        After an insert has been applied, R_old = R_new − Δ+.  Labels
        untouched by the update and free of value predicates reference
        the live canonical relation directly (no copy): term evaluation
        never mutates its sources, so copying is pure overhead.
        """
        excluded_labels = {node_id.label for node_id in excluded_ids}
        sources: Sources = {}
        for node in pattern.nodes():
            if node.label == "*":
                candidates: List[Node] = sorted(
                    self.document.all_elements(), key=lambda n: n.id
                )
                rows = filter_by_predicate(candidates, node)
            elif node.value_pred is not None:
                # σ-constant selection via the document's value index.
                rows = self.document.nodes_with_value(node.label, node.value_pred)
            else:
                candidates = self.document.nodes_with_label(node.label)
                if node.label not in excluded_labels:
                    sources[node.name] = candidates
                    continue
                rows = candidates
            if excluded_ids:
                rows = [n for n in rows if n.id not in excluded_ids]
            sources[node.name] = rows
        return sources

    def _sources_current(self, pattern: Pattern) -> Sources:
        return self._sources_excluding(pattern, set())

    # -- propagation ------------------------------------------------------------

    def apply_update(self, statement: UpdateStatement) -> PropagationReport:
        """Propagate one statement: document update + all views."""
        if isinstance(statement, InsertUpdate):
            return self._apply_insert(statement)
        if isinstance(statement, DeleteUpdate):
            return self._apply_delete(statement)
        raise TypeError("unknown statement %r" % (statement,))

    # .. insertions ............................................................

    def _apply_insert(self, statement: InsertUpdate) -> PropagationReport:
        report = PropagationReport(statement)

        started = time.perf_counter()
        pul = compute_pul(self.document, statement)
        find_targets_seconds = time.perf_counter() - started
        report.pul_size = len(pul)
        target_ids = [op.target.id for op in pul.inserts()]

        watchlists = {
            name: self._watch_predicates(registered.pattern, target_ids)
            for name, registered in self.views.items()
        }

        applied = apply_pul(self.document, pul)
        report.apply_document_seconds = applied.apply_seconds
        inserted_ids = {
            node.id
            for root in applied.inserted_roots
            for node in root.self_and_descendants()
        }

        for name, registered in self.views.items():
            view_report = ViewReport(name)
            view_report.targets = len(target_ids)
            view_report.phases.find_target_nodes = find_targets_seconds
            pattern = registered.pattern

            if self._watch_changed(watchlists[name]):
                self._recompute(registered)
                view_report.predicate_fallback = True
                report.view_reports[name] = view_report
                continue

            started = time.perf_counter()
            deltas = compute_delta_plus(pattern, applied.inserted_roots)
            view_report.phases.compute_delta_tables = time.perf_counter() - started
            view_report.delta_sizes = {
                node_name: len(rows) for node_name, rows in deltas.tables.items()
            }

            started = time.perf_counter()
            terms, developed = surviving_insert_terms(
                pattern,
                deltas,
                target_ids,
                self.use_data_pruning,
                self.use_id_pruning,
            )
            view_report.phases.get_update_expression = time.perf_counter() - started
            view_report.terms_developed = developed
            view_report.terms_surviving = len(terms)

            started = time.perf_counter()
            view_report.tuples_modified = pimt(registered.view, self.document, target_ids)
            r_sources = self._sources_excluding(pattern, inserted_ids)
            view_report.derivations_added, view_report.term_eval_seconds = et_ins(
                registered.view, terms, r_sources, deltas, registered.lattice
            )
            view_report.phases.execute_update = time.perf_counter() - started

            started = time.perf_counter()
            additions = snowcap_additions(
                pattern,
                registered.lattice,
                r_sources,
                deltas,
                target_ids,
                self.use_data_pruning,
                self.use_id_pruning,
            )
            registered.lattice.apply_insert_additions(additions)
            view_report.phases.update_lattice = time.perf_counter() - started

            report.view_reports[name] = view_report
        return report

    # .. deletions ..............................................................

    def _apply_delete(self, statement: DeleteUpdate) -> PropagationReport:
        report = PropagationReport(statement)

        started = time.perf_counter()
        pul = compute_pul(self.document, statement)
        find_targets_seconds = time.perf_counter() - started
        report.pul_size = len(pul)
        targets = [op.target for op in pul.deletes()]
        target_ids = [node.id for node in targets]
        doomed = doomed_nodes(targets)
        doomed_ids = {node.id for node in doomed}

        watchlists = {
            name: self._watch_predicates(
                registered.pattern, target_ids, excluded_ids=doomed_ids
            )
            for name, registered in self.views.items()
        }

        # Per-view term evaluation happens against the *old* document.
        removals_by_view: Dict[str, Dict[tuple, int]] = {}
        for name, registered in self.views.items():
            view_report = ViewReport(name)
            view_report.targets = len(target_ids)
            view_report.phases.find_target_nodes = find_targets_seconds
            pattern = registered.pattern

            started = time.perf_counter()
            deltas = compute_delta_minus(pattern, doomed)
            view_report.phases.compute_delta_tables = time.perf_counter() - started
            view_report.delta_sizes = {
                node_name: len(rows) for node_name, rows in deltas.tables.items()
            }

            started = time.perf_counter()
            terms, developed = surviving_delete_terms(
                pattern,
                deltas,
                self.prune_even_terms,
                self.use_data_pruning,
                self.use_id_pruning,
            )
            view_report.phases.get_update_expression = time.perf_counter() - started
            view_report.terms_developed = developed
            view_report.terms_surviving = len(terms)

            started = time.perf_counter()
            r_sources = self._sources_current(pattern)
            removals, view_report.term_eval_seconds = et_del(
                registered.view, terms, r_sources, deltas, registered.lattice
            )
            tuples_removed, derivations_removed = pddt_apply(registered.view, removals)
            view_report.tuples_removed = tuples_removed
            view_report.derivations_removed = derivations_removed
            view_report.phases.execute_update = time.perf_counter() - started

            removals_by_view[name] = removals
            report.view_reports[name] = view_report

        applied = apply_pul(self.document, pul)
        report.apply_document_seconds = applied.apply_seconds

        for name, registered in self.views.items():
            view_report = report.view_reports[name]
            if self._watch_changed(watchlists[name]):
                self._recompute(registered)
                view_report.predicate_fallback = True
                continue
            started = time.perf_counter()
            view_report.tuples_modified = pdmt(registered.view, self.document, target_ids)
            view_report.phases.execute_update += time.perf_counter() - started

            started = time.perf_counter()
            registered.lattice.apply_delete(doomed_ids)
            view_report.phases.update_lattice = time.perf_counter() - started
        return report

    # -- sequences (Section 5) ------------------------------------------------

    def apply_sequence(
        self, statements: Sequence[UpdateStatement], optimize: bool = False
    ) -> List[PropagationReport]:
        """Propagate a sequence of statements, optionally PUL-optimized.

        With ``optimize=True`` the statements' atomic operations are
        first reduced by the rules of Section 5 (O1, O3, I5); the
        reduced sequence is then applied to document and views.
        """
        if not optimize:
            return [self.apply_update(statement) for statement in statements]
        from repro.optimizer.rules import reduce_statements

        reduced = reduce_statements(self.document, statements)
        return [self.apply_update(statement) for statement in reduced]

    # -- helpers -----------------------------------------------------------------

    def _watch_predicates(
        self,
        pattern: Pattern,
        target_ids: Sequence[DeweyID],
        excluded_ids: Optional[set] = None,
    ) -> List[Tuple[DeweyID, str, bool]]:
        """Snapshot (node, constant, satisfied) for flippable σ nodes.

        Only ancestors-or-self of the update targets can have their
        ``val`` flipped by the update, and the Dewey scheme encodes the
        whole ancestor chain in each target's ID -- so the watchlist is
        built from O(#targets × depth) ID-derived candidates instead of
        scanning every node of every σ label.
        """
        watch: List[Tuple[DeweyID, str, bool]] = []
        if not target_ids:
            return watch
        sigma_nodes = [node for node in pattern.nodes() if node.value_pred is not None]
        if not sigma_nodes:
            return watch
        seen: set = set()
        chain: List[Node] = []
        for target in target_ids:
            for candidate_id in list(target.ancestor_ids()) + [target]:
                if candidate_id in seen:
                    continue
                seen.add(candidate_id)
                if excluded_ids and candidate_id in excluded_ids:
                    continue
                candidate = self.document.node_by_id(candidate_id)
                if candidate is not None:
                    chain.append(candidate)
        chain.sort(key=lambda n: n.id)
        for node in sigma_nodes:
            for candidate in chain:
                if node.label == "*":
                    if candidate.kind != "element":
                        continue
                elif candidate.label != node.label:
                    continue
                watch.append(
                    (candidate.id, node.value_pred, candidate.val == node.value_pred)
                )
        return watch

    def _watch_changed(self, watch: List[Tuple[DeweyID, str, bool]]) -> bool:
        for node_id, constant, satisfied in watch:
            node = self.document.node_by_id(node_id)
            now = node is not None and node.val == constant
            if now != satisfied:
                return True
        return False

    def _recompute(self, registered: RegisteredView) -> None:
        """Predicate-flip fallback: rebuild extent and lattice."""
        fresh = MaterializedView.materialize(
            registered.pattern, self.document, name=registered.name
        )
        registered.view._store = fresh._store
        registered.lattice.materialize(self.document)
