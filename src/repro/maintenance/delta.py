"""Δ table computation: Algorithm 2 (CD+) and its deletion mirror (CD−).

For every view node ``n`` labeled ``l``, the Δ+ table collects the
``(ID, val, cont)`` tuples of the ``l``-labeled nodes among the newly
inserted subtrees (``extr-pattern(//l, t_i)`` over every inserted tree
``t_i``); the Δ− table collects the doomed nodes of that label.

Δ tables here hold node references (IDs plus lazily-derived val/cont),
filtered by the view node's σ value predicate up front -- the paper's
``σ_n(Δ+_n)`` push-down that powers Prop. 3.6/Example 3.5 pruning.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, List, Sequence

from repro.pattern.evaluate import filter_by_predicate
from repro.pattern.tree_pattern import Pattern
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Node


class DeltaTables:
    """Per-pattern-node Δ tables (insert or delete flavour)."""

    def __init__(self, pattern: Pattern, tables: Dict[str, List[Node]], sign: str):
        if sign not in ("+", "-"):
            raise ValueError("sign must be '+' or '-', got %r" % sign)
        self.pattern = pattern
        self.tables = tables
        self.sign = sign

    def nodes(self, name: str) -> List[Node]:
        return self.tables.get(name, [])

    def is_empty(self, name: str) -> bool:
        return not self.tables.get(name)

    def nonempty_names(self) -> List[str]:
        return [name for name, rows in self.tables.items() if rows]

    def all_ids(self) -> set:
        out = set()
        for rows in self.tables.values():
            for node in rows:
                out.add(node.id)
        return out

    def __repr__(self) -> str:
        sizes = {name: len(rows) for name, rows in self.tables.items() if rows}
        return "DeltaTables(Δ%s, %r)" % (self.sign, sizes)


class BatchCandidates:
    """Label-bucketed Δ candidates, built once and shared across views.

    The per-statement pipeline bucketed the inserted/doomed node set by
    label once *per view*; batching lifts the bucketing out so one
    sorted, label-indexed candidate set serves every registered view's
    σ-filtering (the candidates are view-independent -- only the σ
    push-down is per view).
    """

    __slots__ = ("nodes", "by_label")

    #: document-order key read via C-level dotted attrgetter (every
    #: candidate is attached or detached-with-ID, so ``dewey`` is set).
    _order = attrgetter("dewey._key")

    def __init__(self, nodes: Sequence[Node]):
        self.nodes: List[Node] = sorted(nodes, key=BatchCandidates._order)
        by_label: Dict[str, List[Node]] = {}
        for node in self.nodes:
            bucket = by_label.get(node.label)
            if bucket is None:
                by_label[node.label] = [node]
            else:
                bucket.append(node)
        self.by_label = by_label

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return "BatchCandidates(%d nodes, %d labels)" % (
            len(self.nodes),
            len(self.by_label),
        )


def _extract_for_pattern(pattern: Pattern, candidates: BatchCandidates) -> Dict[str, List[Node]]:
    # Each pattern node σ-filters its own label's bucket instead of
    # re-walking the whole candidate list (patterns share labels across
    # nodes); buckets are document-ordered already.
    tables: Dict[str, List[Node]] = {}
    for node in pattern.nodes():
        pool = candidates.nodes if node.label == "*" else candidates.by_label.get(node.label, [])
        tables[node.name] = filter_by_predicate(pool, node)
    return tables


def delta_from_candidates(
    pattern: Pattern, candidates: BatchCandidates, sign: str
) -> DeltaTables:
    """σ-filter a shared candidate set into one view's Δ tables."""
    return DeltaTables(pattern, _extract_for_pattern(pattern, candidates), sign)


def flip_delta(
    pattern: Pattern, name: str, nodes: Sequence[Node], sign: str
) -> DeltaTables:
    """Single-name Δ table for a σ-flip repair term.

    A flip's effect is bounded by the flipped candidates of one σ
    pattern node (they joined -- or now join -- the node's filtered
    relation without the document gaining or losing nodes), so the
    repair Δ± reads Δ at exactly that one name and the canonical
    relations everywhere else.  Candidates are sorted into document
    order so repair fragments are deterministic across workers.
    """
    ordered = sorted(nodes, key=BatchCandidates._order)
    return DeltaTables(pattern, {name: ordered}, sign)


def insert_candidates(inserted_roots: Sequence[Node]) -> BatchCandidates:
    """Candidate set of freshly inserted subtrees (document order)."""
    nodes: List[Node] = []
    for root in inserted_roots:
        nodes.extend(root.self_and_descendants())
    return BatchCandidates(nodes)


def compute_delta_plus(pattern: Pattern, inserted_roots: Sequence[Node]) -> DeltaTables:
    """CD+ (Algorithm 2): Δ+ tables from freshly inserted subtrees.

    ``inserted_roots`` are the copies produced by *apply-insert*, so
    their nodes already carry the Dewey IDs assigned in the document.
    """
    return delta_from_candidates(pattern, insert_candidates(inserted_roots), "+")


def compute_delta_minus(pattern: Pattern, removed_nodes: Sequence[Node]) -> DeltaTables:
    """CD−: Δ− tables from the doomed node set (targets + descendants)."""
    return delta_from_candidates(pattern, BatchCandidates(removed_nodes), "-")


def doomed_nodes(targets: Sequence[Node]) -> List[Node]:
    """Expand deletion targets to the full removed node set, pre-apply.

    XQuery delete semantics removes each target with its whole subtree;
    CD− needs the full set *before* the document is touched, so that
    term evaluation still sees the old canonical relations.
    """
    out: List[Node] = []
    seen: set = set()
    for target in targets:
        for node in target.self_and_descendants():
            if node.id not in seen:
                seen.add(node.id)
                out.append(node)
    out.sort(key=lambda n: n.id)
    return out
