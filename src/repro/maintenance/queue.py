"""Asynchronous batch application: the write path's persistence seam.

Document writers hand statements to :class:`ApplyQueue` and move on --
view maintenance happens on a background worker that drains the queue
in submission order, groups pending statements into
:class:`~repro.updates.language.UpdateBatch` units (bounded by
``max_batch_size``) and runs one
:meth:`~repro.maintenance.engine.MaintenanceEngine.apply_batch` round
per group.  The separation of update logic from the application layer
follows the DB-net reading of the paper's pipeline: the statement
stream is the transition log, the queue decides when its effects
become observable.

Consistency model: between submission and the completion of its batch,
a statement is invisible to the maintained views (the document too is
untouched -- statements are resolved by the worker, in order, so late
resolution sees every earlier effect exactly as sequential application
would).  ``flush()`` blocks until everything submitted so far is
applied; ``close()`` flushes, then stops the worker.  A statement that
fails poisons its whole batch: the engine restores view consistency by
recomputation and every ticket of the batch carries the error.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.obs import NULL_OBS
from repro.updates.language import UpdateBatch, UpdateStatement


class ApplyTicket:
    """A writer's handle on one submitted statement.

    ``result()`` blocks until the statement's batch has been applied
    and returns the :class:`~repro.maintenance.engine.BatchReport` of
    that batch (shared by every statement the batch contained), or
    re-raises the error that poisoned the batch.
    """

    __slots__ = ("statement", "_event", "_report", "_error", "_enqueued")

    def __init__(self, statement: UpdateStatement):
        self.statement = statement
        self._event = threading.Event()
        self._report = None
        self._error: Optional[BaseException] = None
        #: monotonic submission stamp feeding the enqueue-to-commit
        #: latency histogram.
        self._enqueued = time.perf_counter()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError("statement not yet applied")
        if self._error is not None:
            raise self._error
        return self._report

    def _resolve(self, report, error: Optional[BaseException]) -> None:
        self._report = report
        self._error = error
        self._event.set()

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return "ApplyTicket(%s, %s)" % (getattr(self.statement, "name", "?"), state)


class ApplyQueue:
    """Background batch applier over a maintenance engine.

    ``engine`` is anything exposing ``apply_batch`` (a
    :class:`~repro.maintenance.engine.MaintenanceEngine`) or ``apply``
    (a :class:`~repro.maintenance.engine.BatchEngine`).

    * ``max_batch_size`` caps how many statements one maintenance round
      merges;
    * ``flush_interval`` is how long the worker lingers for more
      arrivals before applying a non-full batch (seconds; ``0`` applies
      as soon as the queue is non-empty);
    * ``workers`` / ``shard_plan`` fan each maintenance round out
      through the sharded pipeline (passed through to
      :meth:`~repro.maintenance.engine.MaintenanceEngine.apply_batch`;
      ``None`` keeps the engine's own defaults).

    Usable as a context manager: leaving the block closes the queue
    (draining everything still pending).
    """

    def __init__(
        self,
        engine,
        max_batch_size: int = 64,
        flush_interval: float = 0.01,
        workers: Optional[int] = None,
        shard_plan=None,
        obs=None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        apply_batch = getattr(engine, "apply_batch", None) or getattr(engine, "apply", None)
        if apply_batch is None:
            raise TypeError("engine %r has no apply_batch/apply" % (engine,))
        self._apply_batch = apply_batch
        #: telemetry facade: explicit ``obs`` wins, else the engine's
        #: own (so a queue over an instrumented engine shares one
        #: registry), else the shared null facade.
        self.obs = obs if obs is not None else getattr(engine, "obs", None) or NULL_OBS
        metrics = self.obs.metrics
        self._depth_gauge = metrics.gauge(
            "repro_queue_depth", "statements submitted but not yet applied"
        )
        self._commit_histogram = metrics.histogram(
            "repro_queue_commit_seconds",
            "enqueue-to-commit latency per statement",
        )
        self._flushes_counter = metrics.counter(
            "repro_queue_flushes_total", "explicit flush() calls"
        )
        self._poison_counter = metrics.counter(
            "repro_queue_poison_batches_total",
            "batches poisoned by a failing statement",
        )
        self._queue_batches_counter = metrics.counter(
            "repro_queue_batches_total", "batches drained by the queue worker"
        )
        #: kwargs forwarded to every apply_batch call; only populated
        #: when given, so engines without sharding options keep working.
        self._apply_options = {}
        if workers is not None:
            self._apply_options["workers"] = workers
        if shard_plan is not None:
            self._apply_options["shard_plan"] = shard_plan
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._pending: List[ApplyTicket] = []
        self._submitted = 0
        self._completed = 0
        self._flush_upto = 0  # apply immediately up to this submission count
        self._closed = False
        self._batches_applied = 0
        self._worker = threading.Thread(
            target=self._run, name="repro-apply-queue", daemon=True
        )
        self._worker.start()

    # -- submission ----------------------------------------------------------

    def apply_async(self, statement: UpdateStatement) -> ApplyTicket:
        """Enqueue a statement; returns immediately with its ticket."""
        ticket = ApplyTicket(statement)
        with self._wake:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._pending.append(ticket)
            self._submitted += 1
            self._depth_gauge.set(float(self._submitted - self._completed))
            self._wake.notify()
        return ticket

    def extend_async(self, statements) -> List[ApplyTicket]:
        """Enqueue many statements (they may share batches)."""
        return [self.apply_async(statement) for statement in statements]

    # -- draining ------------------------------------------------------------

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every statement submitted so far is applied."""
        with self._drained:
            target = self._submitted
            self._flush_upto = max(self._flush_upto, target)
            self._flushes_counter.inc()
            self._wake.notify()
            if not self._drained.wait_for(
                lambda: self._completed >= target, timeout
            ):
                raise TimeoutError("flush timed out")

    def close(self, timeout: Optional[float] = None) -> None:
        """Flush, then stop the worker (idempotent)."""
        with self._wake:
            if self._closed and not self._worker.is_alive():
                return
            self._closed = True
            self._flush_upto = self._submitted
            self._wake.notify()
        self._worker.join(timeout)
        if self._worker.is_alive():
            raise TimeoutError("worker did not stop")
        # Durable engines checkpoint on close: buffered extent ops and
        # lattice snapshots land in sqlite so a clean shutdown leaves
        # no WAL tail to replay.
        sync = getattr(self.engine, "sync_durability", None)
        if sync is not None:
            sync()
        # The worker has stopped: every span it recorded is finished.
        # When the obs has a JSONL sink, write them out now so a close()
        # never strands buffered telemetry; without a sink the spans
        # stay buffered for the caller's own drain.
        if self.obs.trace_path is not None:
            self.obs.flush()

    def __enter__(self) -> "ApplyQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    @property
    def pending_count(self) -> int:
        with self._lock:
            return self._submitted - self._completed

    @property
    def batches_applied(self) -> int:
        with self._lock:
            return self._batches_applied

    # -- worker --------------------------------------------------------------

    def _rush(self) -> bool:
        return (
            self._closed
            or len(self._pending) >= self.max_batch_size
            or self._flush_upto > self._completed
            or self.flush_interval == 0
        )

    def _take_batch(self) -> Tuple[List[ApplyTicket], bool]:
        """Wait for work; returns (tickets, keep_running)."""
        with self._wake:
            while True:
                if self._pending:
                    # Linger until the flush interval elapses (or a rush
                    # condition fires) so live writers accumulate into
                    # real batches; each arrival notifies the condition,
                    # hence the deadline loop rather than a single wait.
                    deadline = time.monotonic() + self.flush_interval
                    while not self._rush():
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wake.wait(remaining)
                    taken = self._pending[: self.max_batch_size]
                    del self._pending[: len(taken)]
                    return taken, True
                if self._closed:
                    return [], False
                self._wake.wait()

    def _run(self) -> None:
        while True:
            tickets, keep_running = self._take_batch()
            if not tickets:
                if not keep_running:
                    return
                continue
            batch = UpdateBatch(
                [ticket.statement for ticket in tickets],
                name="async-batch-%d" % (self._batches_applied + 1),
            )
            report = None
            error: Optional[BaseException] = None
            try:
                report = self._apply_batch(batch, **self._apply_options)
            except BaseException as exc:  # poison batch, keep worker alive
                error = exc
            if error is not None:
                self._poison_counter.inc()
            self._queue_batches_counter.inc()
            committed = time.perf_counter()
            for ticket in tickets:
                self._commit_histogram.observe(committed - ticket._enqueued)
                ticket._resolve(report, error)
            with self._drained:
                self._completed += len(tickets)
                self._batches_applied += 1
                self._depth_gauge.set(float(self._submitted - self._completed))
                self._drained.notify_all()

    def __repr__(self) -> str:
        with self._lock:
            return "ApplyQueue(%d pending, %d applied in %d batches%s)" % (
                self._submitted - self._completed,
                self._completed,
                self._batches_applied,
                ", closed" if self._closed else "",
            )
