"""Insertion propagation: PINT (Alg. 1), ET-INS (Alg. 3), PIMT (Alg. 4).

The driver (:mod:`repro.maintenance.engine`) computes the PUL, applies
the document insert (obtaining the inserted subtrees' fresh Dewey IDs)
and calls CD+; this module contains the view-side work:

* :func:`et_ins` -- evaluate the surviving union terms and merge their
  projected tuples into the view with derivation counts (the two loops
  of Algorithm 3);
* :func:`pimt` -- rewrite the ``val`` / ``cont`` attributes of existing
  view tuples whose stored nodes gained new descendants (Algorithm 4);
* :func:`snowcap_additions` -- incremental upkeep of the materialized
  snowcaps (Prop. 3.13): each snowcap is itself a view whose surviving
  terms are evaluated from smaller snowcaps, the leaves, and Δ+.

As in the paper's implementation, the engine runs the combined PINT/MT:
one PUL computation, PIMT's rewrites, then ET-INS additions, then one
lattice update.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.relation import Relation
from repro.maintenance.delta import DeltaTables
from repro.maintenance.terms import (
    NodeSet,
    Term,
    evaluate_term,
    expand_insert_terms,
    prune_by_empty_delta,
    prune_insert_by_ids,
)
from repro.pattern.evaluate import Sources, project_bindings
from repro.pattern.tree_pattern import Pattern
from repro.views.lattice import SnowcapLattice
from repro.views.view import MaterializedView
from repro.xmldom.dewey import (
    DeweyID,
    has_descendant_or_self,
    has_strict_descendant,
)
from repro.xmldom.model import Document, Node


def surviving_insert_terms(
    pattern: Pattern,
    deltas: DeltaTables,
    target_ids: Sequence[DeweyID],
    use_data_pruning: bool = True,
    use_id_pruning: bool = True,
) -> Tuple[List[Term], int]:
    """Develop and prune the union terms; returns (survivors, developed).

    Development already embodies Prop. 3.3 (only snowcap-complement
    Δ-sets are generated); the optional prunings are Prop. 3.6
    (``use_data_pruning``) and Prop. 3.8 (``use_id_pruning``).
    """
    terms = expand_insert_terms(pattern)
    developed = len(terms)
    if use_data_pruning:
        terms = prune_by_empty_delta(terms, deltas)
    if use_id_pruning:
        terms = prune_insert_by_ids(terms, pattern, target_ids)
    return terms, developed


def collect_insert_additions(
    pattern: Pattern,
    terms: Sequence[Term],
    r_sources: Sources,
    deltas: DeltaTables,
    lattice: Optional[SnowcapLattice] = None,
) -> Tuple[Dict[tuple, int], float]:
    """The term-evaluation half of Algorithm 3.

    Returns ``({projected tuple: fresh derivations}, seconds)`` without
    touching any view -- the batch pipeline merges these Δ+ tuples with
    the deletion side and applies both in one store pass.
    """
    import time

    accumulated: Dict[tuple, int] = {}
    eval_seconds = 0.0
    for term in terms:
        started = time.perf_counter()
        bindings = evaluate_term(pattern, term, r_sources, deltas, lattice)
        eval_seconds += time.perf_counter() - started
        if not bindings.rows:
            continue
        projected = project_bindings(pattern, bindings)
        for row in projected.rows:
            accumulated[row] = accumulated.get(row, 0) + 1
    return accumulated, eval_seconds


def et_ins(
    view: MaterializedView,
    terms: Sequence[Term],
    r_sources: Sources,
    deltas: DeltaTables,
    lattice: Optional[SnowcapLattice] = None,
) -> Tuple[int, float]:
    """Algorithm 3: evaluate terms, add results to the view.

    Returns ``(derivations added, term-evaluation seconds)``; the
    latter isolates the (R) measurement of Section 6.7.  Tuples already
    present have their derivation count increased; new tuples enter
    with the count of their fresh derivations.
    """
    accumulated, eval_seconds = collect_insert_additions(
        view.pattern, terms, r_sources, deltas, lattice
    )
    added = 0
    for row, count in accumulated.items():
        view.add(row, count)
        added += count
    return added, eval_seconds


def collect_attribute_refreshes(
    view: MaterializedView,
    document: Document,
    insert_target_ids: Sequence[DeweyID],
    delete_target_ids: Sequence[DeweyID],
) -> List[Tuple[tuple, tuple]]:
    """The read-only half of the PIMT/PDMT rewrite loop.

    Scans the extent snapshot and returns the ``(old row, new row)``
    rewrite pairs without touching the view -- the sharded pipeline
    computes these on workers (the pairs are plain picklable tuples)
    and applies them on the owning process.
    """
    pattern = view.pattern
    cvn = pattern.content_nodes()
    if not cvn or (not insert_target_ids and not delete_target_ids):
        return []
    sorted_insert_targets = sorted(set(insert_target_ids))
    sorted_delete_targets = sorted(set(delete_target_ids))
    columns = pattern.return_columns()
    column_index = {pair: i for i, pair in enumerate(columns)}
    replacements: List[Tuple[tuple, tuple]] = []
    for row, _count in view.content():
        new_row = None
        for node in cvn:
            id_index = column_index[(node.name, "ID")]
            stored_id: DeweyID = row[id_index]
            touched = has_descendant_or_self(
                sorted_insert_targets, stored_id
            ) or has_strict_descendant(sorted_delete_targets, stored_id)
            if not touched:
                continue
            doc_node = document.node_by_id(stored_id)
            if doc_node is None:
                continue  # removed with its subtree; Δ− handles the tuple
            if new_row is None:
                new_row = list(row)
            if node.store_val:
                new_row[column_index[(node.name, "val")]] = doc_node.val
            if node.store_cont:
                new_row[column_index[(node.name, "cont")]] = doc_node.cont
        if new_row is not None and tuple(new_row) != row:
            replacements.append((row, tuple(new_row)))
    return replacements


def apply_attribute_refreshes(
    view: MaterializedView, replacements: Sequence[Tuple[tuple, tuple]]
) -> int:
    """Apply collected rewrite pairs; returns the number applied."""
    for old_row, fresh_row in replacements:
        view.replace(old_row, fresh_row)
    return len(replacements)


def refresh_stored_attributes(
    view: MaterializedView,
    document: Document,
    insert_target_ids: Sequence[DeweyID],
    delete_target_ids: Sequence[DeweyID],
) -> int:
    """The shared PIMT/PDMT rewrite loop: one snapshot pass.

    A surviving stored node's attributes changed iff it is an
    ancestor-or-self of an insertion target or a proper ancestor of a
    deletion target -- ID-only tests, merged over however many
    statements contributed targets (the batch pipeline passes both
    lists at once so the view extent is scanned a single time); target
    lists are deduplicated and sorted up front so each stored node is
    probed with one bisect per kind, not one comparison per target.
    Rewrites read the *final* document state, so candidate overshoot
    (e.g. targets whose effect was later cancelled) degrades to a no-op
    rewrite.  Returns the number of rewritten tuples.
    """
    return apply_attribute_refreshes(
        view,
        collect_attribute_refreshes(
            view, document, insert_target_ids, delete_target_ids
        ),
    )


def pimt(
    view: MaterializedView,
    document: Document,
    target_ids: Sequence[DeweyID],
) -> int:
    """Algorithm 4: rewrite stored val/cont affected by the insertion.

    A stored node's value or content changes iff the node is the target
    of an insert or an ancestor of one -- an ID-only test (``t.n = n_i``
    or ``t.n ≺≺ n_i``).  Returns the number of rewritten tuples.
    """
    return refresh_stored_attributes(view, document, target_ids, ())


def snowcap_additions(
    pattern: Pattern,
    lattice: SnowcapLattice,
    r_sources: Sources,
    deltas: DeltaTables,
    target_ids: Sequence[DeweyID],
    use_data_pruning: bool = True,
    use_id_pruning: bool = True,
) -> Dict[NodeSet, Relation]:
    """Rows to append to each materialized snowcap (Prop. 3.13).

    The proposition's constructive proof is followed literally: along
    the nested snowcap chain ``s_1 ⊂ s_2 ⊂ ...`` (``s_i`` extends
    ``s_{i-1}`` by one leaf ``n_i``),

        added(s_i) = added(s_{i-1}) ⋈ (R ∪ Δ+)_{n_i}
                   ∪ old(s_{i-1})   ⋈ Δ+_{n_i}

    -- two structural joins per snowcap instead of re-deriving each
    snowcap's own union terms.  ``old`` is the pre-update materialized
    content, so this must run before the lattice is extended.
    """
    from repro.algebra.structural import structural_join

    additions: Dict[NodeSet, Relation] = {}
    chain = sorted(lattice.materialized_sets(), key=len)
    if not chain:
        return additions
    names = [node.name for node in pattern.nodes()]

    previous_set: NodeSet = frozenset()
    previous_added: Optional[Relation] = None
    for subset in chain:
        extra = subset - previous_set
        if len(extra) != 1 or previous_set != subset - extra:
            # Not a nested chain (custom selection): fall back to the
            # generic term machinery for this snowcap.
            additions[subset] = _snowcap_additions_generic(
                pattern, subset, lattice, r_sources, deltas, target_ids,
                use_data_pruning, use_id_pruning,
            )
            previous_set, previous_added = subset, additions[subset]
            continue
        (new_name,) = extra
        node = pattern.node(new_name)
        delta_rows = deltas.nodes(new_name)
        if node.parent is None:
            # s_1 = {root}: only freshly inserted roots can be added,
            # and a child-axis root never is (inserts add children).
            rows = [] if node.axis == "child" else list(delta_rows)
            added = Relation((new_name,), [(n,) for n in rows])
        else:
            axis = "parent" if node.axis == "child" else "ancestor"
            pieces: List[Relation] = []
            if previous_added is not None and previous_added.rows:
                both = Relation.single_column(
                    new_name, list(r_sources[new_name]) + list(delta_rows)
                )
                pieces.append(
                    structural_join(previous_added, both, node.parent.name, new_name, axis)
                )
            old = lattice.relation_for(previous_set)
            if old is not None and old.rows and delta_rows:
                delta_rel = Relation.single_column(new_name, delta_rows)
                pieces.append(
                    structural_join(old, delta_rel, node.parent.name, new_name, axis)
                )
            order = [name for name in names if name in subset]
            added = Relation(order)
            for piece in pieces:
                added.extend(piece.reordered(order))
        additions[subset] = added
        previous_set, previous_added = subset, added
    return {subset: added for subset, added in additions.items() if added.rows}


def _snowcap_additions_generic(
    pattern: Pattern,
    subset: NodeSet,
    lattice: SnowcapLattice,
    r_sources: Sources,
    deltas: DeltaTables,
    target_ids: Sequence[DeweyID],
    use_data_pruning: bool,
    use_id_pruning: bool,
) -> Relation:
    """Union-of-terms additions for one snowcap (non-chain selections)."""
    sub = pattern.subpattern(subset)
    terms, _ = surviving_insert_terms(
        sub, deltas, target_ids, use_data_pruning, use_id_pruning
    )
    order = [node.name for node in sub.nodes()]
    collected = Relation(order)
    for term in terms:
        rows = evaluate_term(sub, term, r_sources, deltas, lattice)
        if rows.rows:
            collected.extend(rows.reordered(order))
    return collected
