"""Deletion propagation: PDDT (Alg. 5), ET-DEL, PDMT, PDDT/MT (Alg. 6).

Deletion terms are evaluated *before* the document delete is applied:
the difference expression of Section 4.1 reads the **old** canonical
relations (``R`` everywhere except the term's Δ−-set), and view keys
still carry pre-delete val/cont.  The engine therefore sequences:

    find targets → CD− (doomed set) → develop+prune terms →
    ET-DEL + derivation-count decrements → apply document delete →
    PDMT val/cont refresh → lattice cleanup

Counting semantics: doomed embeddings (bindings with at least one
deleted component) are collected as a *set* across terms -- the same
embedding surfaces in several difference terms because ``R`` denotes
the old relations -- and each distinct doomed embedding decrements its
projected tuple's derivation count by exactly one.  Under this reading
the paper's Prop. 4.3(ii) (dropping the even, add-back terms) is not an
approximation but exact, and Prop. 4.2's pruning removes terms that are
merely redundant with larger-Δ ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.maintenance.delta import DeltaTables
from repro.maintenance.insert import refresh_stored_attributes
from repro.maintenance.terms import (
    Term,
    evaluate_term,
    expand_delete_terms,
    prune_by_empty_delta,
    prune_delete_by_ids,
)
from repro.pattern.evaluate import Sources, project_bindings
from repro.pattern.tree_pattern import Pattern
from repro.views.lattice import SnowcapLattice
from repro.views.view import MaterializedView
from repro.xmldom.dewey import DeweyID
from repro.xmldom.model import Document


def surviving_delete_terms(
    pattern: Pattern,
    deltas: DeltaTables,
    prune_even_terms: bool = False,
    use_data_pruning: bool = True,
    use_id_pruning: bool = True,
) -> Tuple[List[Term], int]:
    """Develop and prune the deletion expression; (survivors, developed)."""
    terms = expand_delete_terms(pattern, prune_even_terms=prune_even_terms)
    developed = len(terms)
    if use_data_pruning:
        terms = prune_by_empty_delta(terms, deltas)
    if use_id_pruning:
        terms = prune_delete_by_ids(terms, pattern, deltas)
    return terms, developed


def collect_delete_embeddings(
    pattern: Pattern,
    terms: Sequence[Term],
    r_sources: Sources,
    deltas: DeltaTables,
    lattice: Optional[SnowcapLattice] = None,
) -> Tuple[Dict[tuple, tuple], float]:
    """Evaluate deletion terms into ``{binding ID key: projected row}``.

    The map keeps one entry per distinct doomed embedding, keyed by the
    embedding's binding IDs -- the representation the sharded pipeline
    merges across workers (cross-term duplicates collapse under dict
    union because projection is a function of the binding alone).
    Returns the map plus term-evaluation seconds.
    """
    import time

    embeddings: Dict[tuple, tuple] = {}
    eval_seconds = 0.0
    for term in terms:
        if term.sign < 0:
            continue  # add-back terms are subsumed under binding-set semantics
        started = time.perf_counter()
        bindings = evaluate_term(pattern, term, r_sources, deltas, lattice)
        eval_seconds += time.perf_counter() - started
        if not bindings.rows:
            continue
        fresh_rows = []
        fresh_keys = []
        for row in bindings.rows:
            key = tuple(cell.id for cell in row)
            if key in embeddings:
                continue
            embeddings[key] = ()  # reserve; projected below
            fresh_keys.append(key)
            fresh_rows.append(row)
        if not fresh_rows:
            continue
        projected = project_bindings(
            pattern, type(bindings)(bindings.schema, fresh_rows)
        )
        for key, row in zip(fresh_keys, projected.rows):
            embeddings[key] = row
    return embeddings, eval_seconds


def removals_from_embeddings(embeddings: Dict[tuple, tuple]) -> Dict[tuple, int]:
    """Count distinct doomed embeddings per projected view tuple.

    Iterates binding keys in Dewey order so the resulting dict is
    deterministic regardless of which worker produced which fragment.
    """
    removals: Dict[tuple, int] = {}
    for key in sorted(
        embeddings, key=lambda ids: tuple(node_id.sort_key for node_id in ids)
    ):
        row = embeddings[key]
        removals[row] = removals.get(row, 0) + 1
    return removals


def et_del(
    view: MaterializedView,
    terms: Sequence[Term],
    r_sources: Sources,
    deltas: DeltaTables,
    lattice: Optional[SnowcapLattice] = None,
) -> Tuple[Dict[tuple, int], float]:
    """Evaluate the deletion terms into Δ−_v.

    The difference expression reads the *old* canonical relations, so
    one doomed embedding (a binding with ≥ 1 deleted component) can
    surface in several terms; embeddings are therefore deduplicated by
    their binding IDs -- the set-level view of the expression under
    which dropping the even (add-back) terms, Prop. 4.3(ii), is exact.

    Returns ``({view tuple: distinct doomed embeddings projecting onto
    it}, term-evaluation seconds)``; the embedding counts are precisely
    the derivations to subtract.
    """
    embeddings, eval_seconds = collect_delete_embeddings(
        view.pattern, terms, r_sources, deltas, lattice
    )
    # Plain counting in first-occurrence order: both consumers
    # (pddt_apply decrements, apply_batch_delta's sorted store pass)
    # are order-independent, so the Dewey sort of
    # removals_from_embeddings would be pure overhead here.
    removals: Dict[tuple, int] = {}
    for row in embeddings.values():
        removals[row] = removals.get(row, 0) + 1
    return removals, eval_seconds


def pddt_apply(
    view: MaterializedView,
    removals: Dict[tuple, int],
    clamp: bool = False,
) -> Tuple[int, int]:
    """Decrement derivation counts; drop tuples reaching zero.

    Returns ``(tuples_removed, derivations_removed)``.  With ``clamp``
    (set-semantics mode) decrements larger than the stored count are
    truncated instead of rejected.
    """
    tuples_removed = 0
    derivations_removed = 0
    for row, count in removals.items():
        if clamp:
            current = view.count(row)
            if current == 0:
                continue
            count = min(count, current)
        if view.decrement(row, count):
            tuples_removed += 1
        derivations_removed += count
    return tuples_removed, derivations_removed


def pdmt(
    view: MaterializedView,
    document: Document,
    doomed_target_ids: Sequence[DeweyID],
) -> int:
    """Algorithm PDMT: refresh val/cont of surviving tuples.

    Runs after the document delete.  A surviving stored node's value or
    content changed iff the node is a proper ancestor of a deleted
    target (the target's subtree vanished from under it) -- again an
    ID-only structural test.  Returns the number of rewritten tuples.
    """
    return refresh_stored_attributes(view, document, (), doomed_target_ids)
