"""The ``repro-lint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 clean, 1 findings (or unanalyzable files), 2 usage /
bad-baseline errors.  ``--format=json`` emits one stable, sorted JSON
document on stdout -- the CI contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import baseline as baseline_mod
from repro.analysis import core

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-level checks for the engine's determinism, fork-safety, "
            "unit-purity, picklability and layering invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package tree)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids or families (repeatable, "
        "comma-separable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="report only findings absent from this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot current findings into FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _list_rules() -> int:
    for rule in core.all_rules():
        scope = (
            ", ".join(sorted(rule.packages)) if rule.packages else "all packages"
        )
        print("%-28s [%s] (%s)" % (rule.id, rule.family, scope))
        print("    %s" % rule.description)
    return EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        return _list_rules()

    select: Optional[List[str]] = None
    if options.select:
        select = [
            part.strip()
            for chunk in options.select
            for part in chunk.split(",")
            if part.strip()
        ]
    paths = options.paths or [core.default_target()]
    try:
        report = core.analyze_paths(paths, select=select)
    except KeyError as exc:
        print("repro-lint: %s" % (exc.args[0],), file=sys.stderr)
        return EXIT_USAGE

    if options.write_baseline:
        count = baseline_mod.write_baseline(options.write_baseline, report.findings)
        print(
            "repro-lint: wrote %d entr%s to %s"
            % (count, "y" if count == 1 else "ies", options.write_baseline),
            file=sys.stderr,
        )
        return EXIT_CLEAN

    stale: List[str] = []
    if options.baseline:
        try:
            fingerprints = baseline_mod.load_baseline(options.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("repro-lint: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
        new, baselined, stale_set = baseline_mod.split_against_baseline(
            report.findings, fingerprints
        )
        report.findings = new
        report.baselined = len(baselined)
        stale = sorted(stale_set)

    if options.format == "json":
        payload = report.as_dict()
        payload["stale_baseline_entries"] = stale
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for finding in report.errors + report.findings:
            print(finding.format_text())
        summary = "repro-lint: %d file(s), %d finding(s)" % (
            report.files_checked,
            len(report.findings),
        )
        if report.errors:
            summary += ", %d unanalyzable" % len(report.errors)
        if report.suppressed:
            summary += ", %d suppressed" % report.suppressed
        if report.baselined:
            summary += ", %d baselined" % report.baselined
        if stale:
            summary += ", %d stale baseline entr%s (fixed? prune the file)" % (
                len(stale),
                "y" if len(stale) == 1 else "ies",
            )
        print(summary, file=sys.stderr)

    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
