"""Baseline files: acknowledge legacy findings without silencing rules.

A baseline is a JSON snapshot of finding fingerprints (path + rule +
line text, line-number independent).  Runs with ``--baseline`` report
only findings *not* in the snapshot, so a rule can be introduced
strictly while old debt is paid down -- and the file doubles as the
debt list.  The repo's own policy (ISSUE 6) is a *zero-entry* baseline:
real violations get fixed, intentional exceptions get a line-level
suppression comment with a justification.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Snapshot the findings' fingerprints; returns the entry count."""
    entries = [
        {
            "fingerprint": finding.fingerprint(),
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.snippet,
        }
        for finding in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load_baseline(path: str) -> Set[str]:
    """The fingerprint set of a baseline file (``{}`` schema-checked)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError("%s: not a repro-lint baseline file" % path)
    fingerprints = set()
    for entry in payload["entries"]:
        fingerprint = entry.get("fingerprint") if isinstance(entry, dict) else None
        if not isinstance(fingerprint, str):
            raise ValueError("%s: malformed baseline entry %r" % (path, entry))
        fingerprints.add(fingerprint)
    return fingerprints


def split_against_baseline(
    findings: List[Finding], fingerprints: Set[str]
) -> Tuple[List[Finding], List[Finding], Set[str]]:
    """``(new, baselined, stale)`` relative to a fingerprint set.

    ``stale`` is the baseline debt that no longer matches anything --
    entries to delete from the file once their findings are fixed.
    """
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen: Set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in fingerprints:
            baselined.append(finding)
            seen.add(fingerprint)
        else:
            new.append(finding)
    return new, baselined, fingerprints - seen
