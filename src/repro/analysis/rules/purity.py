"""Unit-purity rule: shard work units compute, the parent applies.

``ShardWorkUnit.execute`` runs either in-process or inside a forked
worker; the contract (ROADMAP "Engine architecture") is that it *reads*
the engine/document/lattice state it captured and *returns* fragments
-- all application happens in the parent after the deterministic merge.
A ``self``-rooted write inside ``execute`` would be applied once in
serial mode but only in a worker's throwaway address space in fork
mode, breaking byte-identity exactly when parallelism is on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules._util import chain_root, walk_shallow
from repro.analysis.rules.forksafety import _MUTATING_METHODS, work_unit_classes

#: method names with the execute contract (``run`` kept for future units).
_EXECUTE_METHODS = {"execute", "run", "__call__"}


@register
class UnitImpureWriteRule(Rule):
    """``self``-rooted writes inside a work unit's execute method."""

    id = "unit-impure-write"
    family = "purity"
    description = (
        "shard work unit execute() assigning through self; units must "
        "return fragments, the parent applies them after the merge"
    )
    packages = frozenset({"sharding", "maintenance"})

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        units = work_unit_classes(module.tree)
        for class_node in module.tree.body:
            if not isinstance(class_node, ast.ClassDef) or class_node.name not in units:
                continue
            for item in class_node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in _EXECUTE_METHODS
                ):
                    yield from self._check_execute(module, class_node, item)

    def _check_execute(self, module, class_node, body) -> Iterator[Finding]:
        for node in walk_shallow(body):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if self._is_self_rooted(target):
                        yield self.finding(
                            module,
                            target,
                            "%s.%s() writes through self (engine/document/"
                            "lattice state); return the change as a fragment "
                            "instead" % (class_node.name, body.name),
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if self._is_self_rooted(target):
                        yield self.finding(
                            module,
                            target,
                            "%s.%s() deletes through self; units must not "
                            "mutate captured state" % (class_node.name, body.name),
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and self._is_self_rooted(func.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        "%s.%s() mutates captured state via .%s(); build the "
                        "result locally and return it as a fragment"
                        % (class_node.name, body.name, func.attr),
                    )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.finding(
                    module,
                    node,
                    "%s.%s() reaches for %s state; execute() must be pure"
                    % (
                        class_node.name,
                        body.name,
                        "global" if isinstance(node, ast.Global) else "nonlocal",
                    ),
                )

    @staticmethod
    def _is_self_rooted(target: ast.AST) -> bool:
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(
                UnitImpureWriteRule._is_self_rooted(element)
                for element in target.elts
            )
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return False
        root = chain_root(target)
        return root is not None and root.id == "self"
