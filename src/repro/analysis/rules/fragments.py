"""Fragment-picklability rule.

Whatever a shard work unit returns is pickled through a pipe in fork
mode, so fragment/stats classes in ``sharding/`` and ``obs/`` (span
fragments ride the same pipe) may only carry lean,
pickle-friendly fields: scalars, strings, containers of them, and
``DeweyID`` (whose ``__reduce__`` ships just the step tuple).  A raw
node, view or lattice reference would drag a subtree (or the whole
engine) through the pipe -- and worse, the unpickled copy would be
*detached* from the parent's document, so id-based application would
silently miss.  Ship DeweyIDs and let the parent resolve them.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules._util import dotted_name

#: type names (leaf of the dotted path) allowed in fragment fields.
_ALLOWED_TYPES = {
    "int",
    "float",
    "str",
    "bool",
    "bytes",
    "None",
    "tuple",
    "Tuple",
    "list",
    "List",
    "dict",
    "Dict",
    "Mapping",
    "Sequence",
    "Iterable",
    "Optional",
    "Union",
    "Any",
    "DeweyID",
}
_FRAGMENT_SUFFIXES = ("Fragment", "Stats")


def _is_fragment_class(node: ast.ClassDef) -> bool:
    return node.name.endswith(_FRAGMENT_SUFFIXES)


def _annotation_violations(annotation: ast.AST) -> Iterator[str]:
    """Type names in an annotation that fall outside the allowlist."""
    for node in ast.walk(annotation):
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant):
            if node.value is None:
                continue
            if isinstance(node.value, str):
                # String annotation: parse and recurse.
                try:
                    inner = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    continue
                yield from _annotation_violations(inner)
            continue
        if name is not None and name not in _ALLOWED_TYPES:
            yield name


def _literal_ok(value: ast.AST) -> bool:
    if isinstance(value, ast.Constant):
        return isinstance(value.value, (int, float, str, bool, bytes, type(None)))
    if isinstance(value, (ast.Dict, ast.List, ast.Tuple)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None and name.split(".")[-1] in (
            "dict",
            "list",
            "tuple",
            "int",
            "float",
            "str",
            "bool",
            "bytes",
            "DeweyID",
        ):
            return True
    if isinstance(value, ast.Name):
        # Parameter pass-through: trust the (checked) annotation if any;
        # an unannotated parameter is opaque, so treat it as ok here --
        # the annotation check is the enforcement point.
        return True
    return False


@register
class FragmentFieldRule(Rule):
    """Fragment/stats classes may only carry allowlisted field types."""

    id = "fragment-unpicklable-field"
    family = "picklability"
    description = (
        "fragment class field outside the pickle allowlist (scalars, "
        "containers, DeweyID); ship ids, not node/view references"
    )
    packages = frozenset({"sharding", "obs"})

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef) or not _is_fragment_class(
                class_node
            ):
                continue
            for item in class_node.body:
                if isinstance(item, ast.AnnAssign):
                    yield from self._check_annotation(
                        module, class_node, item.target, item.annotation
                    )
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(module, class_node, item)

    def _check_method(self, module, class_node, method) -> Iterator[Finding]:
        for node in ast.walk(method):
            target = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            if isinstance(node, ast.AnnAssign):
                yield from self._check_annotation(
                    module, class_node, target, node.annotation
                )
            elif method.name == "__init__" and not _literal_ok(node.value):
                yield self.finding(
                    module,
                    node,
                    "field '%s.%s' is assigned an unverifiable value; fragment "
                    "fields must be allowlisted picklable types (annotate the "
                    "field, ship DeweyIDs instead of nodes)"
                    % (class_node.name, target.attr),
                )

    def _check_annotation(
        self, module, class_node, target, annotation
    ) -> Iterator[Finding]:
        field = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else "?"
        )
        for bad in _annotation_violations(annotation):
            yield self.finding(
                module,
                annotation,
                "field '%s.%s' carries type '%s', outside the fragment "
                "allowlist; pickled fragments must ship scalars/containers/"
                "DeweyID only (resolve ids in the parent)"
                % (class_node.name, field, bad),
            )
