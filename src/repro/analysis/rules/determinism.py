"""Determinism rules: the extents must not depend on PYTHONHASHSEED,
wall clocks or entropy.

Sharded propagation is only byte-identical to serial propagation if
every ordered output is derived from deterministically ordered inputs.
The classic leak is iterating a ``set`` (string hashing is seed-salted,
so iteration order changes run to run) into a list, a joined string or
a loop that appends -- harmless for membership tests, fatal when it
feeds fragment assembly.  These rules flag the leak patterns at the
source level; ``tests/test_hashseed_determinism.py`` closes the same
gap dynamically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.core import ORDERED_OUTPUT_PACKAGES, Finding, ModuleInfo, Rule, register
from repro.analysis.rules._util import dotted_name, func_scopes, walk_shallow

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
#: builtins whose result is order-free, so feeding them a set is fine.
_NEUTRAL_CONSUMERS = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
    "bool",
}
_SET_PRESERVING_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    if name is None:
        return False
    return name.split(".")[-1] in _SET_ANNOTATIONS


class _ScopeSets:
    """Names that are set-typed throughout one scope.

    A name qualifies only when *every* binding in the scope produces a
    set (literal, comprehension, ``set()``/``frozenset()`` call, set
    operator, set-returning method, or another qualifying name) or its
    annotation says so; any other binding disqualifies it, keeping the
    rule conservative on reuse.  Resolved to a fixed point so chains
    (``b = a``) qualify too.
    """

    def __init__(self, scope: ast.AST):
        self.scope = scope
        self.names: Set[str] = set()
        previous = None
        for _round in range(10):
            self.names = self._compute(self.names)
            if self.names == previous:
                break
            previous = set(self.names)

    def _compute(self, known: Set[str]) -> Set[str]:
        bindings: Dict[str, bool] = {}
        bound_as_set: Set[str] = set()

        def bind(name: str, is_set: bool) -> None:
            bindings[name] = bindings.get(name, True) and is_set
            if is_set:
                bound_as_set.add(name)

        def bind_target(target: ast.AST, is_set: bool) -> None:
            if isinstance(target, ast.Name):
                bind(target.id, is_set)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    bind_target(element, False)
            elif isinstance(target, ast.Starred):
                bind_target(target.value, False)

        if isinstance(self.scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = self.scope.args
            for arg in (
                list(getattr(arguments, "posonlyargs", []))
                + arguments.args
                + arguments.kwonlyargs
                + [a for a in (arguments.vararg, arguments.kwarg) if a is not None]
            ):
                bind(arg.arg, _annotation_is_set(arg.annotation))

        for node in walk_shallow(self.scope):
            if isinstance(node, ast.Assign):
                is_set = self._is_set_expr(node.value, known)
                for target in node.targets:
                    bind_target(target, is_set)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                is_set = _annotation_is_set(node.annotation) or (
                    node.value is not None and self._is_set_expr(node.value, known)
                )
                bind(node.target.id, is_set)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                if not isinstance(node.op, _SET_PRESERVING_OPS):
                    bind(node.target.id, False)
            elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                bind(node.target.id, self._is_set_expr(node.value, known))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bind_target(node.target, False)
            elif isinstance(node, ast.comprehension):
                bind_target(node.target, False)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                bind_target(node.optional_vars, False)

        return {name for name, ok in bindings.items() if ok and name in bound_as_set}

    def _is_set_expr(self, node: ast.AST, known: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in known
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set_expr(func.value, known)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_PRESERVING_OPS):
            return self._is_set_expr(node.left, known) or self._is_set_expr(
                node.right, known
            )
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body, known) and self._is_set_expr(
                node.orelse, known
            )
        return False

    def is_set_expr(self, node: ast.AST) -> bool:
        return self._is_set_expr(node, self.names)


@register
class SetIterationRule(Rule):
    """Iterating a set into an ordered sink (loop, list, join, ...)."""

    id = "det-set-iter"
    family = "determinism"
    description = (
        "iteration over a set/frozenset feeding an ordered output; set "
        "iteration order varies with PYTHONHASHSEED"
    )
    packages = ORDERED_OUTPUT_PACKAGES

    _MESSAGE = (
        "iterating a set here has PYTHONHASHSEED-dependent order; sort it "
        "(sorted(...)) or keep an insertion-ordered dict instead"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        parents = module.parent_map()
        for scope in func_scopes(module.tree):
            sets = _ScopeSets(scope)
            if not sets.names and not self._has_set_literal(scope):
                continue
            for node in walk_shallow(scope):
                yield from self._check_node(module, node, sets, parents)

    @staticmethod
    def _has_set_literal(scope: ast.AST) -> bool:
        for node in walk_shallow(scope):
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _SET_CONSTRUCTORS:
                    return True
        return False

    def _check_node(self, module, node, sets, parents) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if sets.is_set_expr(node.iter):
                yield self.finding(module, node.iter, self._MESSAGE)
            return
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if not sets.is_set_expr(generator.iter):
                    continue
                if isinstance(node, ast.GeneratorExp) and self._consumed_neutrally(
                    node, parents
                ):
                    continue
                yield self.finding(module, generator.iter, self._MESSAGE)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "enumerate", "iter")
                and node.args
                and sets.is_set_expr(node.args[0])
            ):
                yield self.finding(
                    module,
                    node.args[0],
                    "%s() over a set has PYTHONHASHSEED-dependent order; "
                    "sort the set first" % func.id,
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("join", "extend")
                and node.args
                and sets.is_set_expr(node.args[0])
            ):
                yield self.finding(
                    module,
                    node.args[0],
                    ".%s(<set>) has PYTHONHASHSEED-dependent order; sort the "
                    "set first" % func.attr,
                )

    @staticmethod
    def _consumed_neutrally(node: ast.GeneratorExp, parents) -> bool:
        parent = parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _NEUTRAL_CONSUMERS
        )


_BANNED_ENTROPY_CALLS = {
    "os.urandom": "os.urandom is entropy; propagation must be replayable",
    "uuid.uuid1": "uuid1 mixes clock and MAC state into results",
    "uuid.uuid4": "uuid4 is entropy; derive ids from document state instead",
}


@register
class RandomRule(Rule):
    """Unseeded randomness anywhere in the engine tree."""

    id = "det-random"
    family = "determinism"
    description = (
        "unseeded randomness; only explicitly seeded random.Random "
        "instances are reproducible"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    module,
                    node,
                    "import the random module and construct a seeded "
                    "random.Random(seed) instead of using module-level state",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed is entropy-backed; "
                        "pass an explicit seed",
                    )
                continue
            if name.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    "module-level random.%s() shares unseeded global state; "
                    "use a seeded random.Random instance" % name.split(".", 1)[1],
                )
            elif name in _BANNED_ENTROPY_CALLS or name.startswith("secrets."):
                yield self.finding(
                    module,
                    node,
                    _BANNED_ENTROPY_CALLS.get(
                        name, "secrets-module entropy is not replayable"
                    ),
                )


_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """Wall-clock reads; durations must come from ``time.perf_counter``."""

    id = "det-wallclock"
    family = "determinism"
    description = (
        "wall-clock read; results that embed timestamps differ run to run"
    )

    def applies(self, module: ModuleInfo) -> bool:
        # repro.obs has its own, stricter clock discipline (the
        # obs-clock rule below): export.py alone may stamp capture
        # times, everything else is perf_counter-only.
        return module.top_package != "obs"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALLCLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    "%s() reads the wall clock; use time.perf_counter() for "
                    "durations or pass timestamps in explicitly" % name,
                )


@register
class ObsClockRule(Rule):
    """Clock discipline inside ``repro.obs``: spans carry monotonic
    (``perf_counter``/``monotonic``) readings only; the one place
    allowed to stamp wall-clock capture times is ``obs/export.py``."""

    id = "obs-clock"
    family = "determinism"
    description = (
        "wall-clock read inside repro.obs outside export.py; spans must "
        "carry perf_counter/monotonic readings only"
    )
    packages = frozenset({"obs"})

    _EXPORT_MODULE = ("obs", "export")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.package == self._EXPORT_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALLCLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    "%s() stamps wall-clock time into trace data; only "
                    "repro/obs/export.py may do that (at export time) -- "
                    "use time.perf_counter()/time.monotonic() here" % name,
                )


def _sort_key_exprs(tree: ast.Module) -> Iterator[ast.AST]:
    """The ``key=`` expressions of sorted()/min()/max()/.sort() calls."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_sort = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_sort:
            continue
        for keyword in node.keywords:
            if keyword.arg == "key":
                yield keyword.value


def _calls_to(expr: ast.AST, builtin: str) -> Iterator[ast.Call]:
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == builtin
        ):
            yield node


_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


@register
class IdOrderRule(Rule):
    """Ordering by ``id()`` -- CPython addresses change run to run."""

    id = "det-id-order"
    family = "determinism"
    description = "ordering by id(); object addresses are not reproducible"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for key_expr in _sort_key_exprs(module.tree):
            if isinstance(key_expr, ast.Name) and key_expr.id == "id":
                yield self.finding(
                    module, key_expr, "sorting by the id() builtin orders by "
                    "object address; sort by a stable key (e.g. DeweyID)"
                )
                continue
            for call in _calls_to(key_expr, "id"):
                yield self.finding(
                    module, call, "id() inside a sort key orders by object "
                    "address; sort by a stable key (e.g. DeweyID)"
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, _ORDERING_OPS) for op in node.ops):
                continue
            for side in [node.left] + list(node.comparators):
                for call in _calls_to(side, "id"):
                    yield self.finding(
                        module, call, "comparing id() values imposes an "
                        "address-based order; compare stable keys instead"
                    )
                    break


@register
class HashOrderRule(Rule):
    """Ordering or bucketing by ``hash()`` -- str hashing is seed-salted."""

    id = "det-hash-order"
    family = "determinism"
    description = (
        "hash()-derived ordering or bucketing; str/bytes hashing varies "
        "with PYTHONHASHSEED"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        flagged = set()
        for key_expr in _sort_key_exprs(module.tree):
            for call in _calls_to(key_expr, "hash"):
                flagged.add(id(call))
                yield self.finding(
                    module, call, "hash() inside a sort key varies with "
                    "PYTHONHASHSEED for strings; sort by the value itself"
                )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                for call in _calls_to(node.left, "hash"):
                    if id(call) not in flagged:
                        flagged.add(id(call))
                        yield self.finding(
                            module, call, "hash(x) % n bucketing varies with "
                            "PYTHONHASHSEED; use zlib.crc32 like the shard "
                            "planner"
                        )
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, _ORDERING_OPS) for op in node.ops
            ):
                for side in [node.left] + list(node.comparators):
                    for call in _calls_to(side, "hash"):
                        if id(call) not in flagged:
                            flagged.add(id(call))
                            yield self.finding(
                                module, call, "ordering hash() values varies "
                                "with PYTHONHASHSEED; compare stable keys"
                            )
