"""Layering rule: the import DAG admits no upward edge.

The repo's layer order (ROADMAP "Engine architecture", bottom-up)::

    xmldom -> algebra / obs -> pattern -> updates -> views
           -> schema / optimizer / workloads
           -> maintenance -> sharding / baselines -> bench / analysis

A package may import strictly *lower* layers (and itself).  Upward
imports are how the maintenance/sharding cycle crept in historically;
the sanctioned escape hatch is dependency inversion -- the lower layer
exposes a registration seam (``maintenance.engine.register_shard_backend``)
and the higher layer plugs itself in at import time, wired by the
``repro`` package ``__init__`` (which, as the aggregator, is exempt).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Rule, register

#: layer rank per top-level repro package (higher = closer to the app).
LAYER_RANKS = {
    "xmldom": 0,
    "algebra": 1,
    "obs": 1,
    "pattern": 2,
    "updates": 3,
    "views": 4,
    "storage": 5,
    "schema": 5,
    "optimizer": 5,
    "workloads": 5,
    "maintenance": 6,
    "sharding": 7,
    "baselines": 7,
    "bench": 8,
    "analysis": 8,
}

#: modules exempt from the rule: the aggregator ``repro/__init__`` (it
#: exists to wire the layers together) and ``__main__`` entry points.
_EXEMPT_PACKAGES = ((), ("__main__",))


@register
class UpwardImportRule(Rule):
    """``repro.<lower>`` importing ``repro.<higher>`` (or a same-rank
    sibling), at any scope -- deferred imports don't launder the edge."""

    id = "layer-upward-import"
    family = "layering"
    description = (
        "import against the layer DAG (xmldom -> ... -> sharding); "
        "invert the dependency instead of importing upward"
    )

    def applies(self, module: ModuleInfo) -> bool:
        if module.package in _EXEMPT_PACKAGES:
            return False
        return module.top_package in LAYER_RANKS

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        own = module.top_package
        own_rank = LAYER_RANKS[own]
        for node in ast.walk(module.tree):
            targets = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative: stays inside the package
                if node.module == "repro":
                    # ``from repro import sharding`` names the subpackage
                    # in the alias list, not the module path.
                    targets = ["repro." + alias.name for alias in node.names]
                elif node.module is not None:
                    targets = [node.module]
            for target in targets:
                imported = self._imported_package(target)
                if imported is None or imported == own:
                    continue
                rank = LAYER_RANKS.get(imported)
                if rank is None:
                    continue
                if rank > own_rank:
                    yield self.finding(
                        module,
                        node,
                        "repro.%s (layer %d) must not import repro.%s "
                        "(layer %d); register a backend/callback from the "
                        "higher layer instead" % (own, own_rank, imported, rank),
                    )
                elif rank == own_rank:
                    yield self.finding(
                        module,
                        node,
                        "repro.%s and repro.%s share layer %d and must stay "
                        "independent; move shared code to a lower layer"
                        % (own, imported, rank),
                    )

    @staticmethod
    def _imported_package(target: str) -> Optional[str]:
        parts = target.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None
        return parts[1]
