"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def chain_root(node: ast.AST) -> Optional[ast.Name]:
    """The leftmost Name of an Attribute/Subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def func_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (async) function definition, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_shallow(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's body without descending into nested functions.

    Lambdas and comprehensions are traversed (they share the enclosing
    scope's data for our purposes); ``def``/``class`` bodies are not.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
