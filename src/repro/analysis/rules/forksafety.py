"""Fork-safety rules for the shard executor / session worker model.

Workers are forked (COW) and talk to the parent over pipes or pickled
fragments.  Two contracts keep that sound:

* worker entry points -- functions handed to ``Process(target=...)``
  or a pool ``map``/``apply_async``, and the ``execute`` methods of
  shard work units -- must treat module globals as read-only.  The
  parent publishes state *before* forking (``_FORK_STATE``,
  ``_ACTIVE_ROUND``); a worker-side write would silently diverge from
  the parent and from sibling workers.
* objects that cross the fork/pickle boundary must not capture
  fork-hostile resources: held locks deadlock in the child, shared
  file descriptors interleave writes, generators don't pickle at all.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules._util import chain_root, dotted_name, walk_shallow

_POOL_DISPATCH_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "apply_async",
    "map_async",
    "starmap_async",
}
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}
_WORK_UNIT_BASES = {"ShardWorkUnit"}


def module_level_names(tree: ast.Module) -> Set[str]:
    """Names assigned (not just imported) at module scope."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.update(
                    element.id
                    for element in target.elts
                    if isinstance(element, ast.Name)
                )
    return names


def work_unit_classes(tree: ast.Module) -> Set[str]:
    """Class names reachable (within the module) from ShardWorkUnit."""
    bases = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {
                dotted_name(base) or "" for base in node.bases
            }
    known = set(_WORK_UNIT_BASES)
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name in known:
                continue
            if any(parent.split(".")[-1] in known for parent in parents):
                known.add(name)
                changed = True
    return known - _WORK_UNIT_BASES


def worker_entry_functions(tree: ast.Module) -> Set[str]:
    """Function names dispatched into child processes in this module."""
    entries: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if callee == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                    entries.add(keyword.value.id)
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_DISPATCH_METHODS
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            entries.add(node.args[0].id)
    return entries


def _worker_bodies(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every function body that runs inside a forked worker."""
    entries = worker_entry_functions(tree)
    units = work_unit_classes(tree)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in entries:
                yield node
        elif isinstance(node, ast.ClassDef) and node.name in units:
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "execute"
                ):
                    yield item


@register
class WorkerGlobalWriteRule(Rule):
    """Worker-side writes to module globals diverge after fork."""

    id = "fork-worker-global-write"
    family = "fork-safety"
    description = (
        "module-level state mutated inside a fork-worker entry point; "
        "workers must treat globals as read-only COW snapshots"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        globals_here = module_level_names(module.tree)
        for body in _worker_bodies(module.tree):
            for node in walk_shallow(body):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        module,
                        node,
                        "worker '%s' declares globals %s; publish state from "
                        "the parent before forking instead"
                        % (body.name, ", ".join(node.names)),
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        yield from self._flag_global_target(
                            module, body, target, globals_here
                        )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        yield from self._flag_global_target(
                            module, body, target, globals_here
                        )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATING_METHODS
                    ):
                        root = chain_root(func.value)
                        if (
                            root is not None
                            and root.id in globals_here
                            and not self._is_local(body, root.id)
                        ):
                            yield self.finding(
                                module,
                                node,
                                "worker '%s' mutates module-level '%s' via "
                                ".%s(); workers may only read fork-published "
                                "state" % (body.name, root.id, func.attr),
                            )

    def _flag_global_target(
        self, module, body, target, globals_here
    ) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._flag_global_target(
                    module, body, element, globals_here
                )
            return
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            # Plain assignment creates a local unless declared global --
            # the Global statement branch already covers that case.
            return
        if isinstance(target, ast.Subscript):
            root = chain_root(target)
            name = root.id if root is not None else None
        if name is not None and name in globals_here and not self._is_local(body, name):
            yield self.finding(
                module,
                body if not hasattr(target, "lineno") else target,
                "worker '%s' writes through module-level '%s'; workers may "
                "only read fork-published state" % (body.name, name),
            )

    @staticmethod
    def _is_local(body: ast.FunctionDef, name: str) -> bool:
        """Name shadowed by a parameter or plain local binding."""
        arguments = body.args
        for arg in (
            list(getattr(arguments, "posonlyargs", []))
            + arguments.args
            + arguments.kwonlyargs
            + [a for a in (arguments.vararg, arguments.kwarg) if a is not None]
        ):
            if arg.arg == name:
                return True
        # Globals first: a declared-global name is never local no matter
        # how many assignments walk_shallow happens to visit before the
        # Global statement (walk order is not source order).
        for node in walk_shallow(body):
            if isinstance(node, ast.Global) and name in node.names:
                return False
        for node in walk_shallow(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return True
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name) and node.target.id == name:
                    return True
        return False


_LOCK_CONSTRUCTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}


@register
class UnsafeCaptureRule(Rule):
    """Fork-hostile resources captured on instances in sharding classes."""

    id = "fork-unsafe-capture"
    family = "fork-safety"
    description = (
        "lock/file/generator stored on an instance that may cross the "
        "fork or pickle boundary"
    )
    packages = frozenset({"sharding", "storage"})

    #: defining any of these declares the class's boundary behaviour
    #: explicitly (typically ``__getstate__`` raising TypeError so the
    #: resource can never cross silently) -- the rule's concern is the
    #: *silent* capture, so such classes are exempt.
    _BOUNDARY_DUNDERS = frozenset(
        {"__getstate__", "__reduce__", "__reduce_ex__"}
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            declares_boundary = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in self._BOUNDARY_DUNDERS
                for item in class_node.body
            )
            if declares_boundary:
                continue
            for node in ast.walk(class_node):
                if not isinstance(node, ast.Assign):
                    continue
                stores_on_self = any(
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    for target in node.targets
                )
                if not stores_on_self:
                    continue
                problem = self._fork_hostile(node.value)
                if problem is not None:
                    yield self.finding(
                        module,
                        node,
                        "%s stored on an instance in class '%s'; objects here "
                        "cross the fork/pickle boundary -- keep such "
                        "resources module-level in the parent, recreate them "
                        "per process, or declare the boundary explicitly "
                        "with a __getstate__ that refuses to pickle"
                        % (problem, class_node.name),
                    )

    @staticmethod
    def _fork_hostile(value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.GeneratorExp):
            return "a generator (unpicklable, state lost on fork)"
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        leaf = name.split(".")[-1]
        if leaf in _LOCK_CONSTRUCTORS and (
            "." not in name or name.split(".")[0] in ("threading", "multiprocessing")
        ):
            return "a %s" % name
        if name == "open":
            return "an open file handle"
        if name == "sqlite3.connect" or name == "sqlite3.Connection":
            return "a sqlite connection"
        return None
