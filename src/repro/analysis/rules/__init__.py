"""Rule modules; importing this package registers every rule.

Five families, one module each:

* :mod:`~repro.analysis.rules.determinism` -- hash-seed / wall-clock /
  randomness hazards in packages whose iteration feeds ordered output,
  plus the ``repro.obs`` clock discipline (wall-clock stamps live in
  ``obs/export.py`` alone; spans carry monotonic readings);
* :mod:`~repro.analysis.rules.forksafety` -- module-global writes in
  fork-worker entry points and fork-hostile captures;
* :mod:`~repro.analysis.rules.purity` -- shard work units must return
  fragments, never write engine state through ``self``;
* :mod:`~repro.analysis.rules.fragments` -- fragment/stats classes
  carry only pickle-lean allowlisted field types;
* :mod:`~repro.analysis.rules.layering` -- the import DAG
  (xmldom -> algebra/pattern -> ... -> sharding) admits no upward edge.
"""

from repro.analysis.rules import (  # noqa: F401 (registration side effects)
    determinism,
    forksafety,
    fragments,
    layering,
    purity,
)
