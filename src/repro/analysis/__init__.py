"""repro-lint: static checks for the engine's correctness invariants.

The scale-out contract -- sharded and sessioned propagation byte-
identical to serial -- reduces to source-level invariants this package
enforces on every commit (CI ``lint`` job):

====================  ==================================================
family                protects
====================  ==================================================
``determinism``       no PYTHONHASHSEED / wall-clock / entropy
                      dependence in ordered outputs
``fork-safety``       globals read-only in forked workers; no locks,
                      files or generators across fork/pickle
``purity``            work units return fragments, never write state
``picklability``      fragments carry scalars/containers/DeweyID only
``layering``          the import DAG has no upward edge
====================  ==================================================

Run ``python -m repro.analysis`` (or the ``repro-lint`` script); see
``--list-rules`` and the README "Static analysis" section.
"""

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    analyze_paths,
    default_target,
    register,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "analyze_paths",
    "default_target",
    "register",
]
