"""repro-lint core: findings, module model, rule base and the driver.

The engine's scale-out contract -- sharded/sessioned propagation stays
byte-identical to serial propagation -- decomposes into a handful of
source-level invariants (deterministic iteration, fork-safe state
handling, pure work units, picklable fragments, a layered import DAG).
This module is the machinery that checks them: it parses each target
file once, hands the tree to every registered :class:`Rule`, filters
``# repro-lint: disable=...`` suppressions, and aggregates the
surviving :class:`Finding`\\ s into a report the CLI renders as text or
JSON.

The analyzer is deliberately self-contained (stdlib ``ast`` only) and
imports nothing from the engine packages, keeping it at the top of the
layering DAG it enforces.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Engine packages whose iteration order feeds ordered outputs; the
#: determinism family scopes itself to these by default.
ORDERED_OUTPUT_PACKAGES = frozenset(
    {"sharding", "maintenance", "updates", "views", "obs"}
)


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "family", "path", "line", "col", "message", "snippet")

    def __init__(
        self,
        rule: str,
        family: str,
        path: str,
        line: int,
        col: int,
        message: str,
        snippet: str = "",
    ):
        self.rule = rule
        self.family = family
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        #: stripped source text of the offending line (fingerprint input).
        self.snippet = snippet

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def fingerprint(self) -> str:
        """Stable identity for baselining: path, rule and line *text*.

        Keyed on the line's stripped text rather than its number so a
        baseline survives unrelated edits above the finding.
        """
        payload = "%s::%s::%s" % (self.path, self.rule, self.snippet)
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def format_text(self) -> str:
        return "%s:%d:%d: %s: %s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.message,
        )

    def __repr__(self) -> str:
        return "Finding(%s)" % self.format_text()


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([\w\-*,\s]+)"
)


class Suppressions:
    """Per-line and per-file rule suppressions parsed from comments.

    ``# repro-lint: disable=<rule>[,<rule>...]`` silences the named
    rules (or families, or ``*``) on its own line;
    ``# repro-lint: disable-file=<rule>`` silences them for the whole
    file.  Suppressions are honored by the driver, not the rules, so
    every rule gets them for free.
    """

    def __init__(self, source: str):
        self.by_line: Dict[int, Set[str]] = {}
        self.file_level: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            names = {part.strip() for part in match.group(2).split(",")}
            names.discard("")
            if match.group(1) == "disable-file":
                self.file_level |= names
            else:
                self.by_line.setdefault(lineno, set()).update(names)

    def is_suppressed(self, finding: Finding) -> bool:
        for names in (self.file_level, self.by_line.get(finding.line, ())):
            if not names:
                continue
            if "*" in names or finding.rule in names or finding.family in names:
                return True
        return False


class ModuleInfo:
    """A parsed target file plus the package context rules key on."""

    def __init__(self, path: str, source: str, tree: ast.Module, display_path: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = Suppressions(source)
        #: dotted parts after the last ``repro`` path component, module
        #: stem last and ``__init__`` dropped -- e.g.
        #: ``src/repro/sharding/units.py`` -> ``("sharding", "units")``.
        #: Files outside a ``repro`` tree get their bare stem.
        self.package = _package_of(path)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def top_package(self) -> str:
        return self.package[0] if self.package else ""

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent over the whole tree (built once, on demand)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents


def _package_of(path: str) -> Tuple[str, ...]:
    parts = list(os.path.normpath(os.path.abspath(path)).split(os.sep))
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    indices = [i for i, part in enumerate(parts) if part == "repro"]
    if not indices:
        return (stem,)
    rel = parts[indices[-1] + 1 : -1]
    if stem != "__init__":
        rel.append(stem)
    return tuple(rel)


class Rule:
    """Base class: one invariant, one stable id, one ``check`` visitor."""

    id: str = ""
    family: str = ""
    description: str = ""
    #: top-level repro packages the rule applies to (None = every file).
    packages: Optional[frozenset] = None

    def applies(self, module: ModuleInfo) -> bool:
        if self.packages is None:
            return True
        return bool(module.package) and module.top_package in self.packages

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            self.id,
            self.family,
            module.display_path,
            line,
            col,
            message,
            snippet=module.line_text(line),
        )


_RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule (instantiated once) to the registry."""
    rule = cls()
    if not rule.id or not rule.family:
        raise ValueError("rule %r needs a non-empty id and family" % cls)
    if rule.id in _RULES:
        raise ValueError("duplicate rule id %r" % rule.id)
    _RULES[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, importing the rule modules on first use."""
    from repro.analysis import rules as _rules  # noqa: F401 (registration side effect)

    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    rules = all_rules()
    if not select:
        return rules
    wanted = set(select)
    chosen = [r for r in rules if r.id in wanted or r.family in wanted]
    unknown = wanted - {r.id for r in rules} - {r.family for r in rules}
    if unknown:
        raise KeyError("unknown rule(s): %s" % ", ".join(sorted(unknown)))
    return chosen


class AnalysisReport:
    """The outcome of one analyzer run over a set of files."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.files_checked = 0
        self.suppressed = 0
        self.baselined = 0
        self.errors: List[Finding] = []

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def finalize(self) -> "AnalysisReport":
        self.findings.sort(key=Finding.sort_key)
        self.errors.sort(key=Finding.sort_key)
        return self

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.errors) else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "errors": [f.as_dict() for f in self.errors],
            "counts": self.counts_by_rule(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


def display_path(path: str) -> str:
    """Posix-style path, relative to the working directory when under it."""
    absolute = os.path.abspath(path)
    cwd = os.getcwd()
    if absolute == cwd or absolute.startswith(cwd + os.sep):
        absolute = absolute[len(cwd) + 1 :] or "."
    return absolute.replace(os.sep, "/")


def load_module(path: str) -> ModuleInfo:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    return ModuleInfo(path, source, tree, display_path(path))


def iter_target_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(root, filename)
        else:
            yield path


def analyze_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> AnalysisReport:
    """Run the (selected) rules over every ``.py`` file under ``paths``."""
    rules = select_rules(select)
    report = AnalysisReport()
    for path in iter_target_files(paths):
        try:
            module = load_module(path)
        except (SyntaxError, OSError, UnicodeDecodeError) as exc:
            report.errors.append(
                Finding(
                    "parse-error",
                    "analysis",
                    display_path(path),
                    getattr(exc, "lineno", None) or 1,
                    0,
                    "could not analyze file: %s" % exc,
                )
            )
            continue
        report.files_checked += 1
        for rule in rules:
            if not rule.applies(module):
                continue
            for finding in rule.check(module):
                if module.suppressions.is_suppressed(finding):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    return report.finalize()


def default_target() -> str:
    """The repro package root (``src/repro``), wherever it is installed."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
