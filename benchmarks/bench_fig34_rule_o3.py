"""Figure 34: reduction rule O3 (ancestor-shadowed operations) benefit."""

from repro.bench.experiments import run_reduction_rule

from conftest import rows_to_table

PERCENTS = (20, 40, 60, 80, 100)


def test_fig34_rule_o3(benchmark, save_table):
    rows = run_reduction_rule("O3", scale=1, percents=PERCENTS, repeats=2)
    save_table(
        "fig34_rule_o3.txt",
        rows_to_table(
            rows,
            ("percent", "optimized_s", "unoptimized_s", "ops_optimized",
             "ops_unoptimized", "saving"),
            "Figure 34: rule O3, optimised vs unoptimised",
        ),
    )
    assert all(row["ops_optimized"] <= row["ops_unoptimized"] for row in rows)
    # The gap widens with overlap: the 100% saving beats the 20% one.
    assert rows[-1]["ops_unoptimized"] - rows[-1]["ops_optimized"] >= (
        rows[0]["ops_unoptimized"] - rows[0]["ops_optimized"]
    )

    benchmark.pedantic(
        lambda: run_reduction_rule("O3", scale=1, percents=(100,), repeats=1,
                                   verify=False),
        rounds=2,
    )
