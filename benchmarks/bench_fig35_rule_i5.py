"""Figure 35: reduction rule I5 (merged same-target insertions) benefit."""

from repro.bench.experiments import run_reduction_rule

from conftest import rows_to_table

PERCENTS = (20, 40, 60, 80, 100)


def test_fig35_rule_i5(benchmark, save_table):
    rows = run_reduction_rule("I5", scale=1, percents=PERCENTS, repeats=2)
    save_table(
        "fig35_rule_i5.txt",
        rows_to_table(
            rows,
            ("percent", "optimized_s", "unoptimized_s", "ops_optimized",
             "ops_unoptimized", "saving"),
            "Figure 35: rule I5, optimised vs unoptimised",
        ),
    )
    assert all(row["ops_optimized"] <= row["ops_unoptimized"] for row in rows)

    benchmark.pedantic(
        lambda: run_reduction_rule("I5", scale=1, percents=(100,), repeats=1,
                                   verify=False),
        rounds=2,
    )
