"""Figure 25: scalability with document size (view Q1, update A6_A).

Paper shape: all phases grow gracefully; Execute-Update follows the
Find-Target-Nodes trend; the paper's 500 KB -> 50 MB ratios (1:2:20:100)
are kept as generator scales.
"""

from repro.bench.experiments import run_scalability
from repro.bench.harness import run_maintenance_pair

from conftest import rows_to_table

SCALES = (1, 2, 20, 100)


def test_fig25_scalability(benchmark, save_table):
    rows = run_scalability(scales=SCALES)
    columns = (
        "kind",
        "scale",
        "doc_bytes",
        "find_target_nodes",
        "compute_delta_tables",
        "get_update_expression",
        "execute_update",
        "update_lattice",
        "total_s",
    )
    save_table(
        "fig25_scalability.txt",
        rows_to_table(rows, columns, "Figure 25: Q1 x A6_A across document sizes"),
    )
    inserts = [row for row in rows if row["kind"] == "insert"]
    assert inserts[-1]["doc_bytes"] > 50 * inserts[0]["doc_bytes"]

    benchmark.pedantic(
        lambda: run_maintenance_pair(2, "Q1", "A6_A", "insert", verify=False),
        rounds=2,
    )
