"""Shared infrastructure for the per-figure benchmark modules.

Every module regenerates one figure of Section 6: it runs the
corresponding driver from :mod:`repro.bench.experiments` (each run is
correctness-verified against recomputation), prints the paper-style
series, saves it under ``benchmarks/out/`` and benchmarks a
representative propagation with pytest-benchmark.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Sequence

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: generator scales standing in for the paper's document sizes
#: (see DESIGN.md's substitution table): ~30 KB per unit scale.
SCALE_SMALL = 1
SCALE_MEDIUM = 2


def rows_to_table(rows: Sequence[Mapping], columns: Sequence[str], title: str) -> str:
    lines = [title, "  ".join("%-18s" % c for c in columns)]
    for row in rows:
        lines.append("  ".join("%-18s" % (row.get(c, ""),) for c in columns))
    return "\n".join(lines)


def traced_propagation(obs) -> float:
    """Drain ``obs`` and return the traced propagation seconds.

    The benches' single timing source: phase / net-effects /
    shard-round spans recorded by the engine add up to exactly what
    ``report.propagation_seconds()`` accumulated (same floats, same
    intervals), so modules no longer re-time locally what the tracer
    already measured.
    """
    from repro.obs.export import propagation_from_records, span_records

    return propagation_from_records(span_records(obs.flush()))


@pytest.fixture(scope="session")
def save_table():
    os.makedirs(OUT_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(OUT_DIR, name)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print("\n" + text)
        return path

    return _save
