"""Figure 28: bulk PINT/PIMT vs node-at-a-time IVMA (view Q1, 100 KB).

Paper shape: the bulk algebraic approach outperforms IVMA by at least
one order of magnitude (each 5-node statement costs five IVMA calls).
"""

from repro.bench.experiments import run_vs_ivma
from repro.baselines.ivma import IVMAMaintainer
from repro.updates.pul import apply_pul, compute_pul
from repro.views.view import MaterializedView
from repro.workloads.queries import view_pattern
from repro.workloads.updates import insert_update
from repro.workloads.xmark import generate_document

from conftest import rows_to_table


def test_fig28_vs_ivma(benchmark, save_table):
    rows = run_vs_ivma(1, "Q1")
    save_table(
        "fig28_vs_ivma.txt",
        rows_to_table(
            rows,
            ("update", "bulk_exec_s", "ivma_exec_s", "ivma_calls", "slowdown"),
            "Figure 28: bulk propagation vs IVMA (view Q1)",
        ),
    )
    # The paper reports >= one order of magnitude on X1_L-style updates.
    assert max(row["slowdown"] for row in rows) >= 10

    def setup():
        document = generate_document(scale=1)
        view = MaterializedView.materialize(view_pattern("Q1"), document)
        pul = compute_pul(document, insert_update("X1_L"))
        applied = apply_pul(document, pul)
        maintainer = IVMAMaintainer(view, document)
        return (maintainer, applied.inserted_roots), {}

    benchmark.pedantic(
        lambda maintainer, roots: maintainer.propagate_insert_nodes(roots),
        setup=setup,
        rounds=2,
    )
