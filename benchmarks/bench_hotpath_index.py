"""Hot-path index regression benchmark (not a paper figure).

Measures end-to-end update propagation -- document apply + maintenance
of σ-predicate views -- on a 10k+ node XMark document, against a
*seed-path* configuration that reinstates the original quadratic
behaviour: per-node key-list rebuilds in the canonical-relation index
and uncached ``val``/``cont``/σ evaluation.  The indexed path must be
at least ``MIN_SPEEDUP``× faster, and every maintained view must still
equal fresh re-evaluation after the full update sequence.
"""

from __future__ import annotations

import bisect
import time

from repro.maintenance.engine import MaintenanceEngine
from repro.workloads.queries import view_pattern
from repro.workloads.updates import delete_variant, insert_update
from repro.workloads.xmark import generate_document
from repro.xmldom.model import set_hot_path_caches

SCALE = 6  # ~10.8k nodes, comfortably past the 10k floor
VIEWS = ("Q1", "Q3", "Q4")  # Q3/Q4 carry σ value predicates
MIN_SPEEDUP = 5.0

#: update-heavy sequence: bulk inserts into bidders/people, then a
#: sweeping delete, then more inserts (names are Appendix A entries).
UPDATE_SEQUENCE = (
    ("insert", "X2_L"),
    ("insert", "B3_LB"),
    ("insert", "X1_L"),
    ("delete", "X2_L"),
    ("insert", "X3_A"),
    ("insert", "A6_A"),
)


class _SeedLabelIndex:
    """The seed's canonical-relation index, kept verbatim for baseline
    measurement: ``add``/``remove`` rebuild the full per-label key list
    on every call (the quadratic hot path this PR removes)."""

    def __init__(self, rows):
        self._by_label = rows

    def labels(self):
        return iter(self._by_label)

    def nodes(self, label):
        return self._by_label.get(label, [])

    def add(self, node):
        row = self._by_label.setdefault(node.label, [])
        keys = [n.id for n in row]
        position = bisect.bisect(keys, node.id)
        row.insert(position, node)

    def remove(self, node):
        row = self._by_label.get(node.label)
        if not row:
            return
        keys = [n.id for n in row]
        position = bisect.bisect_left(keys, node.id)
        if position < len(row) and row[position] is node:
            row.pop(position)

    def add_bulk(self, nodes):
        for node in nodes:
            self._by_label.setdefault(node.label, []).append(node)
        for row in self._by_label.values():
            row.sort(key=lambda n: n.id)

    def copy_label(self, label):
        return list(self._by_label.get(label, []))


def _statements():
    return [
        insert_update(name) if kind == "insert" else delete_variant(name)
        for kind, name in UPDATE_SEQUENCE
    ]


def _build_engine(seed_path: bool) -> MaintenanceEngine:
    document = generate_document(scale=SCALE)
    assert document.size_in_nodes() >= 10_000
    if seed_path:
        from repro.xmldom.index import ValueIndex

        rows = {label: list(document.nodes_with_label(label)) for label in document.labels()}
        document._index = _SeedLabelIndex(rows)
        # Rebind the value index to the swapped-in index so lookups
        # could never read the orphaned original (caches are off in
        # seed mode, but don't leave the trap armed).
        document._values = ValueIndex(document._index)
    engine = MaintenanceEngine(document)
    for name in VIEWS:
        engine.register_view(view_pattern(name), name)
    return engine


def _propagate_all(engine: MaintenanceEngine) -> float:
    started = time.perf_counter()
    for statement in _statements():
        engine.apply_update(statement)
    return time.perf_counter() - started


def _run(seed_path: bool) -> float:
    previous = set_hot_path_caches(not seed_path)
    try:
        engine = _build_engine(seed_path)
        elapsed = _propagate_all(engine)
        for name in VIEWS:
            assert engine.views[name].view.equals_fresh_evaluation(engine.document), (
                "maintained view %s diverged (seed_path=%s)" % (name, seed_path)
            )
        return elapsed
    finally:
        set_hot_path_caches(previous)


def test_hotpath_index_speedup(save_table):
    indexed = min(_run(seed_path=False) for _ in range(2))
    seed = _run(seed_path=True)
    speedup = seed / indexed
    save_table(
        "hotpath_index.txt",
        "Hot-path index: update propagation, scale %d (%d statements)\n"
        "seed-path %.3fs  indexed %.3fs  speedup %.1fx (floor %.1fx)"
        % (SCALE, len(UPDATE_SEQUENCE), seed, indexed, speedup, MIN_SPEEDUP),
    )
    assert speedup >= MIN_SPEEDUP, (
        "hot-path indexing regressed: %.1fx < %.1fx (seed %.3fs, indexed %.3fs)"
        % (speedup, MIN_SPEEDUP, seed, indexed)
    )


def test_hotpath_representative_propagation(benchmark):
    engine = _build_engine(seed_path=False)
    statement = insert_update("X2_L")
    benchmark.pedantic(lambda: engine.apply_update(statement), rounds=3)
    for name in VIEWS:
        assert engine.views[name].view.equals_fresh_evaluation(engine.document)
