"""Figure 20: total PINT time for all XMark views x their update groups."""

from repro.bench.experiments import run_breakdown_matrix
from repro.bench.harness import format_rows, fresh_engine
from repro.workloads.updates import insert_update

from conftest import SCALE_MEDIUM

ALL_VIEWS = ("Q1", "Q2", "Q3", "Q4", "Q6", "Q13", "Q17")


def test_fig20_all_views_insert(benchmark, save_table):
    rows = run_breakdown_matrix(SCALE_MEDIUM, "insert", views=ALL_VIEWS)
    save_table(
        "fig20_all_views_insert.txt",
        format_rows(rows, "Figure 20: PINT total time, all views (ms)"),
    )

    def setup():
        return (fresh_engine(SCALE_MEDIUM, ALL_VIEWS),), {}

    benchmark.pedantic(
        lambda engine: engine.apply_update(insert_update("X2_L")),
        setup=setup,
        rounds=2,
    )
