"""Rebalance gate: adaptive vs frozen ShardSession under drift.

Both sessions fork with LPT weights profiled on a short people-only
warm-up stream -- the honest fork-time knowledge.  The gated stream
then rotates its hot Appendix-A update family through three drift
phases (auctions -> regions -> auctions, the pure-rotation limit of the
lifecycle 95/4/1 shape) over three tenants of the seven XMark views.
At fork time the auction views are near-idle, so their profiled weights
are tiny against the people-view bucket gaps and LPT piles them onto
one worker -- exactly the stranding ROADMAP item 2 describes: when the
auction family goes hot, the frozen session's makespan degrades toward
the single-worker time while the other replicas idle.  The adaptive
session (``rebalance=`` enabled) sees the same fork but migrates view
ownership off the hot worker within a few batches.

The gate requires

* **byte-identical extents** -- after the stream, frozen and adaptive
  extents both equal the ``workers=0`` serial run's and match fresh
  re-evaluation, on every repeat and any machine;
* **>= MIN_SPEEDUP x propagation for adaptive over frozen** across
  the drifted stream.  On hosts with at least 4 usable CPUs this is
  the measured ratio of summed per-batch propagation seconds.  On
  smaller hosts the ratio is *projected* from measured quantities
  only, in the spirit of ``bench_shard_pipeline.py``: migration
  decisions are a pure function of recorded timings, so the policy is
  replayed offline against the serial run's per-batch per-view times;
  both sides' makespans come from those times grouped by their (frozen
  resp. replayed) ownership, a ``workers=1`` sequential-send
  calibration run prices the transport/store overhead both sessions
  share, and the adaptive side is additionally charged the
  live-measured per-move migration cost;
* **post-migration imbalance high-water <= MAX_HIGH_WATER** -- from
  the first repair on, the policy's smoothed imbalance ratio (the
  ``lpt_imbalance_ratio`` gauge's EWMA view, measured after each
  batch's migrations) must stay at or under the ceiling for the whole
  remaining stream -- holding balance under sustained drift, not
  merely ending on a good batch -- while the frozen assignment drifts
  far above it.

Run directly (exit 1 on failure) or via
``PYTHONPATH=../src python -m pytest bench_rebalance.py``.
"""

from __future__ import annotations

import gc
import os

from repro.maintenance.engine import MaintenanceEngine
from repro.sharding.planner import imbalance_ratio
from repro.sharding.rebalance import RebalancePolicy
from repro.updates.language import UpdateBatch
from repro.workloads.drift import drift_batches, drift_phase_families
from repro.workloads.queries import VIEW_TEXTS, view_pattern
from repro.workloads.xmark import generate_document

#: document scale: large enough that per-batch view maintenance (which
#: scales with extent size) dominates the scale-invariant transport and
#: migration costs -- the regime the speedup ratio is meaningful in.
SCALE = 48
#: people-only warm-up batches that supply the fork-time LPT weights.
PROFILE_BATCHES = 4
#: gated drift stream: PHASES equal phases, hot family rotating
#: auctions -> regions -> auctions.  Phases are long relative to the
#: migration protocol's cost (shipping a hot trio is ~10^2 ms of real
#: snapshot/pickle/install work) so a rebalanced assignment has room to
#: amortize -- the regime drifting workloads actually live in.
GATE_BATCHES = 72
BATCH_SIZE = 96
PHASES = 3
#: tenants x 7 XMark views = 28 registered views (>= 16 per the gate).
#: Four tenants keep every single view's cost well under the ceiling
#: fraction of a worker's mean load, so balance is always *achievable*
#: and the high-water criterion judges the policy, not the workload.
TENANTS = 4
WORKERS = 4
MIN_SPEEDUP = 1.3
MAX_HIGH_WATER = 1.25
#: timing repeats; extents are asserted on every repeat, the speedup is
#: the best observed (as in the sibling gates' min-of-N).
REPEATS = 2
#: profiled weights below this fraction of the heaviest view's cost are
#: floored to zero: they are inside the profile's noise floor, so the
#: fork-time planner has no information to spread them -- and LPT parks
#: indistinguishable views together, which is exactly the stranding the
#: adaptive session exists to undo.  Both sessions fork from the same
#: floored weights.
FLOOR_FRACTION = 0.12
VIEW_NAMES = tuple(sorted(VIEW_TEXTS))


def _policy() -> RebalancePolicy:
    """Tuned for the gate's drift rate: the stranding signal is a ratio
    above 2 (far over the 1.2 trigger) so one-batch patience is enough,
    and a heavily smoothed model (alpha 0.3) plus the high trigger
    supply the anti-thrash hysteresis, so the cooldown can drop to
    zero: every over-trigger batch is repaired in the *same* batch,
    which keeps the audited post-decision imbalance ratio bounded by
    the trigger (no drift window where repair is blocked).  The ship
    budget covers every view's state so migrations ship rather than
    recompute."""
    return RebalancePolicy(
        trigger_ratio=1.2,
        target_ratio=1.1,
        patience=1,
        cooldown=0,
        budget=6,
        alpha=0.3,
        ship_rows=50_000,
    )


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _build_engine():
    document = generate_document(scale=SCALE)
    engine = MaintenanceEngine(document)
    registered = {}
    for tenant in range(TENANTS):
        for name in VIEW_NAMES:
            view_name = name if tenant == 0 else "%s_t%d" % (name, tenant)
            registered[view_name] = engine.register_view(
                view_pattern(name), view_name
            )
    return document, engine, registered


def _streams():
    """(profile batches, gated drift batches) -- one statement stream.

    The profile segment is people-family traffic only; the gate segment
    rotates families that were cold while the profile ran, so the fork
    weights mis-rank every gated phase.
    """
    document = generate_document(scale=SCALE)
    people, auctions, regions = drift_phase_families()
    profile_rows = drift_batches(
        document,
        PROFILE_BATCHES,
        batch_size=BATCH_SIZE,
        seed=5,
        insert_ratio=1.0,
        families=[people],
        hot_share=1.0,
        warm_share=0.0,
    )
    gate_rows = drift_batches(
        document,
        GATE_BATCHES,
        batch_size=BATCH_SIZE,
        seed=11,
        insert_ratio=0.75,
        families=[auctions, regions, auctions],
        hot_share=1.0,
        warm_share=0.0,
    )
    return (
        [UpdateBatch(rows) for rows in profile_rows],
        [UpdateBatch(rows) for rows in gate_rows],
    )


def _run_serial(batches):
    """Serial baseline: extents + the per-batch per-view timing matrix.

    The collector is paused while batches run: a generational sweep
    landing inside one view's phase timer would fake a 100ms-class
    hot view and poison both the fork weights and the replay.
    """
    document, engine, registered = _build_engine()
    gc.collect()
    timing_rows = []
    propagations = []
    gc.disable()
    try:
        for batch in batches:
            report = engine.apply_batch(batch)
            propagations.append(report.propagation_seconds())
            timing_rows.append(
                {
                    name: view_report.phases.total()
                    - view_report.phases.find_target_nodes
                    for name, view_report in report.view_reports.items()
                }
            )
    finally:
        gc.enable()
        gc.collect()
    return document, registered, propagations, timing_rows


def _run_session(batches, workers, weights, rebalance=None, sequential=False):
    document, engine, registered = _build_engine()
    gc.collect()
    session = engine.session(workers=workers, weights=weights, rebalance=rebalance)
    session.sequential_send = sequential
    initial_assignment = [list(owned) for owned in session._assignment]
    propagations = []
    rounds = []
    gc.disable()
    try:
        for batch in batches:
            report = session.apply_batch(batch)
            propagations.append(report.propagation_seconds())
            rounds.append(report.shard_rounds[0])
    finally:
        gc.enable()
        gc.collect()
        session.close()
    return document, registered, propagations, rounds, initial_assignment


def _assert_identical(serial_views, session_views, session_doc):
    for name in serial_views:
        if serial_views[name].view.content() != session_views[name].view.content():
            raise AssertionError("view %s extents diverge under sharding" % name)
    for name in (VIEW_NAMES[0], VIEW_NAMES[-1]):
        if not session_views[name].view.equals_fresh_evaluation(session_doc):
            raise AssertionError("sharded view %s != fresh evaluation" % name)


def _profile_weights(timing_rows):
    """Per-view LPT weights as measured over the profile segment -- all
    either session ever learns before the drift begins.  Views under
    ``FLOOR_FRACTION`` of the heaviest view's cost floor to zero (see
    the constant's note); the relative floor keeps the split
    machine-speed independent."""
    weights = {}
    for row in timing_rows:
        for name, seconds in row.items():
            weights[name] = weights.get(name, 0.0) + seconds
    floor = FLOOR_FRACTION * max(weights.values())
    return {
        name: (seconds if seconds >= floor else 0.0)
        for name, seconds in weights.items()
    }


def _replay(timing_rows, assignment):
    """Replay the migration policy offline against recorded timings.

    Returns per-batch makespans for the frozen assignment and for the
    replayed adaptive trajectory, the replayed move count, and the
    post-migration high-water of the policy's smoothed imbalance ratio:
    the max over every batch from the first repair on, each measured
    *after* that batch's migrations -- i.e. under sustained drift the
    policy must hold the smoothed ratio at or under the ceiling for the
    rest of the stream, not merely end on a good batch (plus the frozen
    model's high-water for contrast).  Pure function of the timing
    matrix -- the same property that makes live sessions auditable
    makes this projection valid.
    """
    frozen = [list(owned) for owned in assignment]
    adaptive = [list(owned) for owned in assignment]
    policy = _policy()
    frozen_model = _policy().model
    frozen_makespans = []
    adaptive_makespans = []
    adaptive_ratios = []
    frozen_high = 0.0
    first_move_batch = None
    moves_total = 0
    for index, row in enumerate(timing_rows):
        frozen_makespans.append(
            max(sum(row.get(name, 0.0) for name in owned) for owned in frozen)
        )
        adaptive_makespans.append(
            max(sum(row.get(name, 0.0) for name in owned) for owned in adaptive)
        )
        frozen_model.observe_batch(row)
        frozen_high = max(
            frozen_high,
            imbalance_ratio([frozen_model.load_of(owned) for owned in frozen]),
        )
        moves = policy.observe(adaptive, row)
        for name, source, target in moves:
            adaptive[source].remove(name)
            adaptive[target].append(name)
        if moves:
            if first_move_batch is None:
                first_move_batch = index
            moves_total += len(moves)
        adaptive_ratios.append(
            imbalance_ratio([policy.model.load_of(owned) for owned in adaptive])
        )
    if first_move_batch is None:
        settled = adaptive_ratios[-1:]
    else:
        settled = adaptive_ratios[first_move_batch + 1 :] or adaptive_ratios[-1:]
    return {
        "frozen_makespans": frozen_makespans,
        "adaptive_makespans": adaptive_makespans,
        "moves": moves_total,
        "high_water": max(settled),
        "frozen_high_water": frozen_high,
    }


def _support_seconds(calibration_rounds):
    """Transport/store seconds shared by both sessions, priced from the
    1-worker sequential-send calibration exactly as in
    ``bench_shard_pipeline._projected_speedup``: payload building and
    result pickling divide across workers, pipe transit and the owner's
    store replay are serial and charge in full."""
    worker_extra = 0.0
    overhead = 0.0
    for shard_round in calibration_rounds:
        worker_extra += max(
            0.0,
            shard_round["worker_s"]
            - shard_round["worker_apply_s"]
            - shard_round["worker_propagation_s"],
        )
        overhead += max(
            0.0,
            shard_round["wall_s"]
            - shard_round["worker_s"]
            - shard_round["owner_prep_s"],
        )
    return worker_extra / WORKERS + overhead


def _live_migration_stats(rounds):
    migrations = sum(len(shard_round.get("migrations", ())) for shard_round in rounds)
    seconds = sum(shard_round.get("migration_s", 0.0) for shard_round in rounds)
    return migrations, seconds


def run_gate() -> dict:
    profile, gate = _streams()
    stream = profile + gate
    cpus = _usable_cpus()

    serial_doc, serial_views, _serial_props, timing_rows = _run_serial(stream)
    weights = _profile_weights(timing_rows[:PROFILE_BATCHES])
    gate_timings = timing_rows[PROFILE_BATCHES:]

    support = None
    if cpus < WORKERS:
        # The transport/store support price is identical across repeats;
        # calibrate it once (1 worker, sequential send, contention-free).
        (
            calib_doc,
            calib_views,
            _calib_props,
            calib_rounds,
            _calib_assignment,
        ) = _run_session(stream, 1, weights, sequential=True)
        _assert_identical(serial_views, calib_views, calib_doc)
        support = _support_seconds(calib_rounds[PROFILE_BATCHES:])

    best = None
    for _ in range(REPEATS):
        (
            frozen_doc,
            frozen_views,
            frozen_props,
            _frozen_rounds,
            assignment,
        ) = _run_session(stream, WORKERS, weights)
        (
            adaptive_doc,
            adaptive_views,
            adaptive_props,
            adaptive_rounds,
            _adaptive_assignment,
        ) = _run_session(stream, WORKERS, weights, rebalance=_policy())
        # Hard invariant, machine-independent: both sessions == serial.
        _assert_identical(serial_views, frozen_views, frozen_doc)
        _assert_identical(serial_views, adaptive_views, adaptive_doc)

        frozen_prop = sum(frozen_props[PROFILE_BATCHES:])
        adaptive_prop = sum(adaptive_props[PROFILE_BATCHES:])
        live_moves, live_migration_s = _live_migration_stats(
            adaptive_rounds[PROFILE_BATCHES:]
        )
        replay = _replay(gate_timings, assignment)

        if cpus >= WORKERS:
            mode = "measured"
            speedup = frozen_prop / adaptive_prop
        else:
            mode = "projected_%d_cpu_host" % cpus
            per_move = live_migration_s / live_moves if live_moves else 0.0
            migration_charge = per_move * replay["moves"]
            speedup = (sum(replay["frozen_makespans"]) + support) / (
                sum(replay["adaptive_makespans"]) + support + migration_charge
            )
        candidate = {
            "statements": GATE_BATCHES * BATCH_SIZE,
            "batches": GATE_BATCHES,
            "phases": PHASES,
            "views": len(serial_views),
            "workers": WORKERS,
            "cpus": cpus,
            "mode": mode,
            "frozen_propagation_s": round(frozen_prop, 6),
            "adaptive_propagation_s": round(adaptive_prop, 6),
            "live_migrations": live_moves,
            "replay_migrations": replay["moves"],
            "speedup": round(speedup, 3),
            "floor": MIN_SPEEDUP,
            "imbalance_high_water": round(replay["high_water"], 4),
            "frozen_high_water": round(replay["frozen_high_water"], 4),
            "high_water_ceiling": MAX_HIGH_WATER,
            "extents_identical": True,
        }
        if best is None or candidate["speedup"] > best["speedup"]:
            best = candidate
    return best


def _passes(row: dict) -> bool:
    return (
        row["speedup"] >= MIN_SPEEDUP
        and row["imbalance_high_water"] <= MAX_HIGH_WATER
    )


def _summary(row: dict) -> str:
    lines = [
        "adaptive rebalancing under drift: %d statements in %d batches x "
        "%d phases, %d views, %d resident workers:"
        % (
            row["statements"],
            row["batches"],
            row["phases"],
            row["views"],
            row["workers"],
        ),
        "  frozen session propagation %8.2fms, adaptive %8.2fms "
        "(%d live migrations)"
        % (
            row["frozen_propagation_s"] * 1000,
            row["adaptive_propagation_s"] * 1000,
            row["live_migrations"],
        ),
        "  extents: byte-identical to serial for both sessions, verified "
        "against fresh evaluation",
        "  post-migration imbalance high-water %.3f (ceiling %.2f; frozen "
        "drifts to %.3f)"
        % (
            row["imbalance_high_water"],
            row["high_water_ceiling"],
            row["frozen_high_water"],
        ),
    ]
    if row["mode"] == "measured":
        lines.append(
            "  measured speedup %.2fx adaptive over frozen (floor %.1fx)"
            % (row["speedup"], row["floor"])
        )
    else:
        lines.append(
            "  host has %d usable CPU(s): speedup projected by replaying the "
            "policy offline over the serial per-batch view times (%d replayed "
            "moves, live-measured migration cost charged) -> %.2fx "
            "(floor %.1fx)"
            % (row["cpus"], row["replay_migrations"], row["speedup"], row["floor"])
        )
    return "\n".join(lines)


def _write_step_summary(row: dict, passed: bool) -> None:
    """Append the gate numbers to the GitHub Actions job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Adaptive rebalancing gate",
        "",
        "| metric | value | gate |",
        "| --- | --- | --- |",
        "| adaptive vs frozen speedup (%s) | %.2fx | >= %.1fx |"
        % (row["mode"], row["speedup"], row["floor"]),
        "| post-migration imbalance high-water | %.3f | <= %.2f |"
        % (row["imbalance_high_water"], row["high_water_ceiling"]),
        "| frozen imbalance high-water | %.3f | recorded |"
        % (row["frozen_high_water"],),
        "| live migrations / %d drift batches | %d | recorded |"
        % (row["batches"], row["live_migrations"]),
        "| extents vs serial | %s | identical |"
        % ("identical" if row["extents_identical"] else "DIVERGED"),
        "| result | %s | |" % ("PASS" if passed else "FAIL"),
        "",
    ]
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def test_rebalance_speedup(save_table):
    row = run_gate()
    save_table("rebalance.txt", _summary(row))
    assert _passes(row), row


def main() -> int:
    row = run_gate()
    passed = _passes(row)
    print(_summary(row))
    print("-> %s" % ("PASS" if passed else "FAIL"))
    _write_step_summary(row, passed)
    return 0 if passed else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
