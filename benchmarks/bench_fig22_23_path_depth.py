"""Figures 22/23: deletion path depth sweep against view Q1.

Paper shape: maintenance time decreases as the update path lengthens
(shorter paths doom more nodes).  Figure 22 uses a ~100 KB document,
Figure 23 a ~10 MB one; we keep the small/large pairing.
"""

from repro.bench.experiments import run_path_depth
from repro.bench.harness import run_maintenance_pair
from repro.updates.language import DeleteUpdate

from conftest import SCALE_MEDIUM, rows_to_table


def test_fig22_23_path_depth(benchmark, save_table):
    small = run_path_depth(1)
    large = run_path_depth(4)
    columns = ("path", "depth", "total_s", "derivations_removed")
    save_table(
        "fig22_23_path_depth.txt",
        rows_to_table(small, columns, "Figure 22 (small doc): X1_L depth sweep vs Q1")
        + "\n\n"
        + rows_to_table(large, columns, "Figure 23 (large doc): X1_L depth sweep vs Q1"),
    )
    # The headline shape: the shallowest path is at least as expensive
    # as the deepest (it dooms strictly more nodes).
    assert small[0]["derivations_removed"] >= small[-1]["derivations_removed"]

    benchmark.pedantic(
        lambda: run_maintenance_pair(
            SCALE_MEDIUM,
            "Q1",
            "X1_L_depth",
            "delete",
            statement=DeleteUpdate("/site/people/person", name="X1_L_depth"),
        ),
        rounds=2,
    )
