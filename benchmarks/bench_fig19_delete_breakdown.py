"""Figure 19: time breakdown of delete propagation (views Q1/Q3/Q6).

Paper shape: Get-Update-Expression is cheaper than for insertions
(pruning the deletion expression is faster); Update-Lattice is costlier
than for insertions (the lattice must be searched for doomed rows).
"""

from repro.bench.experiments import run_breakdown_matrix
from repro.bench.harness import format_rows, fresh_engine
from repro.workloads.updates import delete_variant

from conftest import SCALE_MEDIUM


def test_fig19_delete_breakdown(benchmark, save_table):
    rows = run_breakdown_matrix(SCALE_MEDIUM, "delete", views=("Q1", "Q3", "Q6"))
    save_table(
        "fig19_delete_breakdown.txt",
        format_rows(rows, "Figure 19: delete propagation breakdown (ms)"),
    )

    def setup():
        return (fresh_engine(SCALE_MEDIUM, ("Q1",)),), {}

    benchmark.pedantic(
        lambda engine: engine.apply_update(delete_variant("A6_A")),
        setup=setup,
        rounds=3,
    )
