"""Shard pipeline gate: 4-worker sharded maintenance vs serial.

Streams the Appendix-A XMark update family (the workload behind the
Fig-18 experiments) as a sequence of batches -- the shape
``ApplyQueue`` produces -- through three tenants of the seven XMark
views, twice from the same starting document:

* ``workers=0``: each batch propagated by the serial shard plan;
* ``workers=4``: a resident :class:`~repro.sharding.ShardSession`
  (fork-once replica workers, view-sharded, extent deltas shipped back
  to the owner).

The gate requires

* **byte-identical extents** -- after the whole stream, every view's
  stored content under the session must equal the serial run's and
  match fresh re-evaluation (always asserted, on any machine); and
* **>= MIN_SPEEDUP x propagation speedup at 4 workers.**  On hosts
  with at least 4 usable CPUs this is the measured ratio of summed
  per-batch propagation seconds.  On smaller hosts four CPU-bound
  workers only time-share one core, so the gate evaluates a
  *projected* ratio built from measured quantities only: the serial
  run's per-view propagation times (grouped by the session's actual
  view->worker assignment into a makespan), plus the payload-building
  and transport/store overhead of a ``workers=1`` session run in
  sequential-send calibration mode, where owner and worker phases
  never overlap and every component is clean of time-slicing (see
  ``_projected_speedup`` for the exact accounting).  Replica document
  application is excluded only because the owner's measured, identical
  apply runs concurrently with it.  The report says which mode
  produced the number.

Run directly (exit 1 on failure) or via
``PYTHONPATH=../src python -m pytest bench_shard_pipeline.py``.
"""

from __future__ import annotations

import gc
import os

from repro.maintenance.engine import MaintenanceEngine
from repro.updates.language import UpdateBatch
from repro.workloads.queries import VIEW_TEXTS, view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document

SCALE = 48
STREAM_LENGTH = 2048
BATCH_SIZE = 256
#: tenants x 7 XMark views = 21 registered views, the multi-view load
#: the session shards across workers.
TENANTS = 3
WORKERS = 4
MIN_SPEEDUP = 2.0
#: timing repeats; extents are asserted on every repeat, the speedup is
#: the best observed (as in the sibling gates' min-of-N).
REPEATS = 2
VIEW_NAMES = tuple(sorted(VIEW_TEXTS))


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _build_engine():
    document = generate_document(scale=SCALE)
    engine = MaintenanceEngine(document)
    registered = {}
    for tenant in range(TENANTS):
        for name in VIEW_NAMES:
            view_name = name if tenant == 0 else "%s_t%d" % (name, tenant)
            registered[view_name] = engine.register_view(
                view_pattern(name), view_name
            )
    return document, engine, registered


def _batches(stream):
    return [
        UpdateBatch(stream[index : index + BATCH_SIZE])
        for index in range(0, len(stream), BATCH_SIZE)
    ]


def _run_serial(batches):
    document, engine, registered = _build_engine()
    gc.collect()
    propagation = 0.0
    view_propagation = {name: 0.0 for name in registered}
    for batch in batches:
        report = engine.apply_batch(batch)
        propagation += report.propagation_seconds()
        for name, view_report in report.view_reports.items():
            view_propagation[name] += (
                view_report.phases.total() - view_report.phases.find_target_nodes
            )
    return document, registered, propagation, view_propagation


def _run_session(batches, workers, sequential=False, weights=None):
    document, engine, registered = _build_engine()
    gc.collect()
    session = engine.session(workers=workers, weights=weights)
    session.sequential_send = sequential
    propagation = 0.0
    rounds = []
    try:
        for batch in batches:
            report = session.apply_batch(batch)
            if report.fallbacks:
                raise AssertionError("unexpected fallbacks: %r" % report.fallbacks)
            propagation += report.propagation_seconds()
            rounds.append(report.shard_rounds[0])
    finally:
        session.close()
    assignment = {
        name: index
        for index, owned in enumerate(session._assignment)
        for name in owned
    }
    return document, registered, propagation, rounds, assignment


def _assert_identical(serial_views, session_views, session_doc):
    for name in serial_views:
        if serial_views[name].view.content() != session_views[name].view.content():
            raise AssertionError("view %s extents diverge under sharding" % name)
    for name in (VIEW_NAMES[0], VIEW_NAMES[-1]):
        if not session_views[name].view.equals_fresh_evaluation(session_doc):
            raise AssertionError("sharded view %s != fresh evaluation" % name)


def _projected_speedup(serial_prop, view_prop, assignment, session1_rounds):
    """>=4-CPU ratio from measured pieces (no concurrency on this host).

    The projected parallel propagation is the sum of three measured
    parts:

    * **makespan** -- the serial run's per-view propagation times,
      grouped by the session's real view->worker assignment; the
      slowest worker's sum bounds the concurrent maintenance wall;
    * **worker extra / WORKERS** -- payload building and result
      pickling measured inside the 1-worker session's workers (their
      wall minus replica apply minus maintenance); it runs on the
      workers, so it divides;
    * **overhead** -- everything left of the 1-worker session's batch
      walls after the worker wall and the owner's own prep (statement
      send + document apply + net bookkeeping) are removed: pipe
      transit, result unpickling and the owner's store replay, all
      serial on the owner, charged in full.

    Replica document application is *not* projected away: it appears
    inside the worker wall and cancels only against the owner prep the
    1-worker measurement shows it overlapping.
    """
    worker_load = {}
    for name, seconds in view_prop.items():
        worker_load[assignment[name]] = worker_load.get(assignment[name], 0.0) + seconds
    makespan = max(worker_load.values())
    worker_extra = 0.0
    overhead = 0.0
    for shard_round in session1_rounds:
        worker_extra += max(
            0.0,
            shard_round["worker_s"]
            - shard_round["worker_apply_s"]
            - shard_round["worker_propagation_s"],
        )
        overhead += max(
            0.0,
            shard_round["wall_s"]
            - shard_round["worker_s"]
            - shard_round["owner_prep_s"],
        )
    projected_parallel = makespan + worker_extra / WORKERS + overhead
    return serial_prop / projected_parallel, makespan, overhead + worker_extra / WORKERS


def run_gate() -> dict:
    stream = statement_stream(
        generate_document(scale=SCALE),
        STREAM_LENGTH,
        seed=7,
        insert_ratio=1.0,
    )
    batches = _batches(stream)
    cpus = _usable_cpus()

    best = None
    for _ in range(REPEATS):
        serial_doc, serial_views, serial_prop, view_prop = _run_serial(batches)
        (
            session_doc,
            session_views,
            session_prop,
            session_rounds,
            assignment,
        ) = _run_session(batches, WORKERS, weights=view_prop)
        # Hard invariant, machine-independent: session == serial, exactly.
        _assert_identical(serial_views, session_views, session_doc)

        if cpus >= WORKERS:
            mode = "measured"
            speedup = serial_prop / session_prop
            makespan = overhead = None
        else:
            mode = "projected_%d_cpu_host" % cpus
            # The overhead measurement needs un-overlapped phases: run
            # the same stream through a one-worker session that
            # sequences the owner's apply before the broadcast, so
            # every component is clean of time-slicing.
            (
                s1_doc,
                s1_views,
                _s1_prop,
                s1_rounds,
                _s1_assignment,
            ) = _run_session(batches, 1, sequential=True)
            _assert_identical(serial_views, s1_views, s1_doc)
            speedup, makespan, overhead = _projected_speedup(
                serial_prop, view_prop, assignment, s1_rounds
            )
        candidate = {
            "statements": STREAM_LENGTH,
            "batches": len(batches),
            "views": len(serial_views),
            "workers": WORKERS,
            "cpus": cpus,
            "mode": mode,
            "serial_propagation_s": round(serial_prop, 6),
            "session_propagation_s": round(session_prop, 6),
            "makespan_s": None if makespan is None else round(makespan, 6),
            "overhead_s": None if overhead is None else round(overhead, 6),
            "speedup": round(speedup, 3),
            "floor": MIN_SPEEDUP,
            "extents_identical": True,
        }
        if best is None or candidate["speedup"] > best["speedup"]:
            best = candidate
    return best


def _summary(row: dict) -> str:
    lines = [
        "sharded maintenance: %d statements in %d batches x %d views, "
        "%d resident workers:"
        % (row["statements"], row["batches"], row["views"], row["workers"]),
        "  serial (workers=0) propagation %8.2fms over the stream"
        % (row["serial_propagation_s"] * 1000),
        "  extents: byte-identical to serial, verified against fresh evaluation",
    ]
    if row["mode"] == "measured":
        lines.append(
            "  measured speedup %.2fx (session propagation %8.2fms; floor %.1fx)"
            % (
                row["speedup"],
                row["session_propagation_s"] * 1000,
                row["floor"],
            )
        )
    else:
        lines.append(
            "  host has %d usable CPU(s): speedup projected from the serial "
            "per-view times over the session's view->worker assignment "
            "(makespan %6.2fms) + measured 1-worker-session transport/store "
            "overhead (%6.2fms) -> %.2fx (floor %.1fx)"
            % (
                row["cpus"],
                (row["makespan_s"] or 0.0) * 1000,
                (row["overhead_s"] or 0.0) * 1000,
                row["speedup"],
                row["floor"],
            )
        )
    return "\n".join(lines)


def test_shard_pipeline_speedup(save_table):
    row = run_gate()
    save_table("shard_pipeline.txt", _summary(row))
    assert row["speedup"] >= MIN_SPEEDUP, row


def main() -> int:
    row = run_gate()
    passed = row["speedup"] >= MIN_SPEEDUP
    print(_summary(row))
    print("-> %s" % ("PASS" if passed else "FAIL"))
    return 0 if passed else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
