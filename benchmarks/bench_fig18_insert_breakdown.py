"""Figure 18: time breakdown of insert propagation (views Q1/Q3/Q6).

Paper shape: Find-Target-Nodes dominates the Δ-table / expression /
execute phases; Update-Lattice tracks view complexity, not the update.
"""

from repro.bench.experiments import run_breakdown_matrix
from repro.bench.harness import format_rows, fresh_engine
from repro.workloads.updates import insert_update

from conftest import SCALE_MEDIUM


def test_fig18_insert_breakdown(benchmark, save_table):
    rows = run_breakdown_matrix(SCALE_MEDIUM, "insert", views=("Q1", "Q3", "Q6"))
    save_table(
        "fig18_insert_breakdown.txt",
        format_rows(rows, "Figure 18: insert propagation breakdown (ms)"),
    )

    def setup():
        return (fresh_engine(SCALE_MEDIUM, ("Q1",)),), {}

    benchmark.pedantic(
        lambda engine: engine.apply_update(insert_update("X1_L")),
        setup=setup,
        rounds=3,
    )
