"""Batch pipeline gate: batch-of-N propagation vs N sequential rounds.

Propagates a 64-statement single-target XMark insert stream (the
write-stream shape the async queue produces) to the Fig-18 views at the
figure's document scale (``SCALE_MEDIUM``), twice from the same
starting document: once statement-at-a-time through
``MaintenanceEngine.apply_update`` and once as a single ``UpdateBatch``
through ``BatchEngine.apply``.  The batch side must

* leave final view extents **byte-identical** to sequential
  application (the updated documents are identical by construction --
  the batch resolves and applies statements sequentially), and
* spend at least ``MIN_SPEEDUP``× less *propagation* time -- the
  five maintenance phases of Section 6, the same metric the smoke gate
  uses.  Target resolution and the document write are excluded: the
  batch performs them statement-at-a-time on purpose, so they are
  identical on both sides and would only dilute the ratio the
  refactor actually changes.  End-to-end wall clock is reported
  alongside.

Run directly (exit 1 on failure) or via
``PYTHONPATH=../src python -m pytest bench_batch_pipeline.py``.
"""

from __future__ import annotations

import time

from conftest import traced_propagation

from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.obs import Observability
from repro.updates.language import UpdateBatch
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document

SCALE = 2  # the Fig-18/19 configuration of the figure benchmarks
VIEWS = ("Q1", "Q3", "Q6")
STREAM_LENGTH = 64
MIN_SPEEDUP = 3.0
REPEATS = 3
#: names whose single-target inserts the stream draws from.
STREAM_NAMES = ("X1_L", "X2_L", "X3_A", "A6_A", "B3_LB", "E6_L")


def _run_sequential(stream):
    document = generate_document(scale=SCALE)
    obs = Observability()
    engine = MaintenanceEngine(document, obs=obs)
    registered = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
    started = time.perf_counter()
    for statement in stream:
        engine.apply_update(statement)
    wall = time.perf_counter() - started
    # Propagation comes from the tracer, not local re-timing: the phase
    # spans carry the same floats the reports accumulated.
    return document, registered, traced_propagation(obs), wall


def _run_batched(stream):
    document = generate_document(scale=SCALE)
    obs = Observability()
    engine = BatchEngine(document, obs=obs)
    registered = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
    started = time.perf_counter()
    report = engine.apply(UpdateBatch(stream))
    wall = time.perf_counter() - started
    return document, registered, traced_propagation(obs), wall, report


def run_gate() -> dict:
    stream = statement_stream(generate_document(scale=SCALE), STREAM_LENGTH, seed=7,
                              insert_ratio=1.0, names=STREAM_NAMES)
    sequential_s = batched_s = sequential_wall = batched_wall = float("inf")
    for _ in range(REPEATS):
        seq_doc, seq_views, seq_prop, seq_wall = _run_sequential(stream)
        batch_doc, batch_views, batch_prop, batch_wall, report = _run_batched(stream)
        for name in VIEWS:
            if seq_views[name].view.content() != batch_views[name].view.content():
                raise AssertionError("view %s extents diverge" % name)
            if not batch_views[name].view.equals_fresh_evaluation(batch_doc):
                raise AssertionError("batched view %s != fresh evaluation" % name)
        if report.fallbacks:
            raise AssertionError("unexpected fallbacks: %r" % report.fallbacks)
        sequential_s = min(sequential_s, seq_prop)
        batched_s = min(batched_s, batch_prop)
        sequential_wall = min(sequential_wall, seq_wall)
        batched_wall = min(batched_wall, batch_wall)
    return {
        "statements": STREAM_LENGTH,
        "views": list(VIEWS),
        "sequential_propagation_s": round(sequential_s, 6),
        "batched_propagation_s": round(batched_s, 6),
        "speedup": round(sequential_s / batched_s, 3),
        "sequential_wall_s": round(sequential_wall, 6),
        "batched_wall_s": round(batched_wall, 6),
        "wall_speedup": round(sequential_wall / batched_wall, 3),
        "floor": MIN_SPEEDUP,
    }


def _summary(row: dict) -> str:
    return (
        "batch-of-%d vs sequential on %s:\n"
        "  propagation %8.2fms vs %8.2fms -> %5.2fx (floor %.1fx)\n"
        "  wall clock  %8.2fms vs %8.2fms -> %5.2fx (includes identical "
        "per-statement target resolution + document writes)"
        % (
            row["statements"],
            "+".join(row["views"]),
            row["batched_propagation_s"] * 1000,
            row["sequential_propagation_s"] * 1000,
            row["speedup"],
            row["floor"],
            row["batched_wall_s"] * 1000,
            row["sequential_wall_s"] * 1000,
            row["wall_speedup"],
        )
    )


def test_batch_pipeline_speedup(save_table):
    row = run_gate()
    save_table("batch_pipeline.txt", _summary(row))
    assert row["speedup"] >= MIN_SPEEDUP, row


def main() -> int:
    row = run_gate()
    passed = row["speedup"] >= MIN_SPEEDUP
    print(_summary(row))
    print("-> %s" % ("PASS" if passed else "FAIL"))
    return 0 if passed else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
