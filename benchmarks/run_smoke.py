"""Benchmark smoke gate: reduced Fig-18/19 configuration.

Runs a minimal insert/delete propagation matrix (views Q1 and Q3,
single-target statements derived from X1_L / X2_L at a small scale),
verifies every maintained extent against recomputation, and compares
propagation time against the full-recompute baseline of Section 6.5.

Emits ``benchmarks/out/BENCH_hotpath.json`` -- a trajectory file with
one entry per (view, kind) cell plus the aggregate speedup -- and
exits non-zero if the maintenance-vs-recompute speedup falls below
``SPEEDUP_FLOOR``.

The seed measured ~5x on this configuration; the floor is set well
below that so timing noise never trips the gate, while a genuine
asymptotic regression (maintenance going O(document) again) lands far
under it.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py
"""

from __future__ import annotations

import json
import os
import sys

from repro.baselines.recompute import full_recompute
from repro.maintenance.engine import MaintenanceEngine
from repro.updates.language import ResolvedDeleteUpdate, ResolvedInsertUpdate
from repro.updates.pul import compute_pul
from repro.views.lattice import SnowcapLattice
from repro.workloads.queries import view_pattern
from repro.workloads.updates import insert_update
from repro.workloads.xmark import generate_document

SCALE = 3
REPEATS = 3
SPEEDUP_FLOOR = 2.0
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "BENCH_hotpath.json")

#: view -> the Appendix-A statement its single-target updates derive from.
CELLS = (("Q1", "X1_L"), ("Q3", "X2_L"))


def _measure_cell(view_name: str, base_update: str, kind: str) -> dict:
    """One (view, kind) cell: propagation vs recompute seconds (min of
    REPEATS fresh runs), with the maintained extent verified each run."""
    propagation = recompute = float("inf")
    for _ in range(REPEATS):
        document = generate_document(scale=SCALE)
        engine = MaintenanceEngine(document)
        registered = engine.register_view(view_pattern(view_name), view_name)
        base = insert_update(base_update)
        target_id = compute_pul(document, base).inserts()[0].target.id
        if kind == "insert":
            statement = ResolvedInsertUpdate([target_id], base.forest, name="smoke")
        else:
            statement = ResolvedDeleteUpdate([target_id], name="smoke")
        report = engine.apply_update(statement)
        view_report = report.report_for(view_name)
        if not registered.view.equals_fresh_evaluation(document):
            raise AssertionError(
                "maintained view %s diverged (%s)" % (view_name, kind)
            )
        propagation = min(
            propagation,
            view_report.phases.total() - view_report.phases.find_target_nodes,
        )
        _, recompute_seconds = full_recompute(
            registered.pattern, document, SnowcapLattice(registered.pattern)
        )
        recompute = min(recompute, recompute_seconds)
    return {
        "view": view_name,
        "kind": kind,
        "base_update": base_update,
        "propagation_s": round(propagation, 6),
        "recompute_s": round(recompute, 6),
        "ratio": round(recompute / propagation, 3),
    }


def main() -> int:
    rows = []
    total_propagation = total_recompute = 0.0
    for view_name, base_update in CELLS:
        for kind in ("insert", "delete"):
            row = _measure_cell(view_name, base_update, kind)
            rows.append(row)
            total_propagation += row["propagation_s"]
            total_recompute += row["recompute_s"]
            print(
                "%-4s %-6s  propagation %8.3fms  recompute %8.3fms  ratio %5.1fx"
                % (
                    row["view"],
                    row["kind"],
                    row["propagation_s"] * 1000,
                    row["recompute_s"] * 1000,
                    row["ratio"],
                )
            )
    speedup = total_recompute / total_propagation
    passed = speedup >= SPEEDUP_FLOOR
    trajectory = {
        "config": {"scale": SCALE, "repeats": REPEATS, "cells": list(CELLS)},
        "trajectory": rows,
        "propagation_s": round(total_propagation, 6),
        "recompute_s": round(total_recompute, 6),
        "speedup": round(speedup, 3),
        "floor": SPEEDUP_FLOOR,
        "passed": passed,
    }
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(
        "maintenance-vs-recompute speedup %.2fx (floor %.1fx) -> %s  [%s]"
        % (speedup, SPEEDUP_FLOOR, "PASS" if passed else "FAIL", OUT_PATH)
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
