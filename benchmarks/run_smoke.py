"""Benchmark smoke gate: reduced Fig-18/19 configuration.

Runs a minimal insert/delete propagation matrix (views Q1 and Q3,
single-target statements derived from X1_L / X2_L at a small scale),
verifies every maintained extent against recomputation, compares
propagation time against the full-recompute baseline of Section 6.5,
and checks the batch pipeline invariant: a mixed statement stream
propagated as one ``UpdateBatch`` must leave extents byte-identical to
sequential per-statement application.

Appends one run entry -- keyed by git SHA + timestamp -- to the
trajectory list in ``benchmarks/out/BENCH_hotpath.json`` (CI trend
tracking: the file accumulates across runs instead of being
overwritten), and exits non-zero if the maintenance-vs-recompute
speedup falls below ``SPEEDUP_FLOOR`` or the batch equivalence check
fails.

The seed measured ~5x on this configuration; the floor is set well
below that so timing noise never trips the gate, while a genuine
asymptotic regression (maintenance going O(document) again) lands far
under it.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys

from repro.baselines.recompute import full_recompute
from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.updates.language import ResolvedDeleteUpdate, ResolvedInsertUpdate, UpdateBatch
from repro.updates.pul import compute_pul
from repro.views.lattice import SnowcapLattice
from repro.workloads.queries import view_pattern
from repro.workloads.updates import insert_update, statement_stream
from repro.workloads.xmark import generate_document

SCALE = 3
REPEATS = 3
SPEEDUP_FLOOR = 2.0
BATCH_STREAM_LENGTH = 16
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "BENCH_hotpath.json")

#: view -> the Appendix-A statement its single-target updates derive from.
CELLS = (("Q1", "X1_L"), ("Q3", "X2_L"))


def _measure_cell(view_name: str, base_update: str, kind: str) -> dict:
    """One (view, kind) cell: propagation vs recompute seconds (min of
    REPEATS fresh runs), with the maintained extent verified each run."""
    propagation = recompute = float("inf")
    for _ in range(REPEATS):
        document = generate_document(scale=SCALE)
        engine = MaintenanceEngine(document)
        registered = engine.register_view(view_pattern(view_name), view_name)
        base = insert_update(base_update)
        target_id = compute_pul(document, base).inserts()[0].target.id
        if kind == "insert":
            statement = ResolvedInsertUpdate([target_id], base.forest, name="smoke")
        else:
            statement = ResolvedDeleteUpdate([target_id], name="smoke")
        report = engine.apply_update(statement)
        view_report = report.report_for(view_name)
        if not registered.view.equals_fresh_evaluation(document):
            raise AssertionError(
                "maintained view %s diverged (%s)" % (view_name, kind)
            )
        propagation = min(
            propagation,
            view_report.phases.total() - view_report.phases.find_target_nodes,
        )
        _, recompute_seconds = full_recompute(
            registered.pattern, document, SnowcapLattice(registered.pattern)
        )
        recompute = min(recompute, recompute_seconds)
    return {
        "view": view_name,
        "kind": kind,
        "base_update": base_update,
        "propagation_s": round(propagation, 6),
        "recompute_s": round(recompute, 6),
        "ratio": round(recompute / propagation, 3),
    }


def _git_sha() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
    except Exception:
        return "unknown"


def _check_batch_equivalence() -> dict:
    """Batch == sequential on a mixed stream (part of the smoke gate)."""
    views = ("Q1", "Q3")
    stream = statement_stream(
        generate_document(scale=SCALE), BATCH_STREAM_LENGTH, seed=11, insert_ratio=0.7
    )
    sequential_doc = generate_document(scale=SCALE)
    sequential = MaintenanceEngine(sequential_doc)
    sequential_views = {
        name: sequential.register_view(view_pattern(name), name) for name in views
    }
    for statement in stream:
        sequential.apply_update(statement)
    batch_doc = generate_document(scale=SCALE)
    batched = BatchEngine(batch_doc)
    batched_views = {
        name: batched.register_view(view_pattern(name), name) for name in views
    }
    report = batched.apply(UpdateBatch(stream))
    equal = all(
        sequential_views[name].view.content() == batched_views[name].view.content()
        and batched_views[name].view.equals_fresh_evaluation(batch_doc)
        for name in views
    )
    return {
        "statements": BATCH_STREAM_LENGTH,
        "views": list(views),
        "net_inserted": report.net_inserted,
        "net_removed": report.net_removed,
        "fallbacks": dict(report.fallbacks),
        "extents_identical": equal,
    }


def _append_run(run: dict) -> None:
    """Record one run entry in the trajectory file.

    Pre-trajectory files (a single run dict) are migrated into the
    first entry of the ``runs`` list.  One entry per commit: re-running
    at the same git SHA replaces the earlier entry for that SHA instead
    of appending a duplicate (unknown SHAs always append, so local
    tarball runs still accumulate).
    """
    history: dict = {"runs": []}
    if os.path.exists(OUT_PATH):
        try:
            with open(OUT_PATH) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            if isinstance(existing.get("runs"), list):
                history = existing
            elif existing:
                existing.setdefault("git_sha", "pre-trajectory")
                history["runs"] = [existing]
    sha = run.get("git_sha")
    if sha and sha != "unknown":
        history["runs"] = [
            entry for entry in history["runs"] if entry.get("git_sha") != sha
        ]
    history["runs"].append(run)
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main() -> int:
    rows = []
    total_propagation = total_recompute = 0.0
    for view_name, base_update in CELLS:
        for kind in ("insert", "delete"):
            row = _measure_cell(view_name, base_update, kind)
            rows.append(row)
            total_propagation += row["propagation_s"]
            total_recompute += row["recompute_s"]
            print(
                "%-4s %-6s  propagation %8.3fms  recompute %8.3fms  ratio %5.1fx"
                % (
                    row["view"],
                    row["kind"],
                    row["propagation_s"] * 1000,
                    row["recompute_s"] * 1000,
                    row["ratio"],
                )
            )
    speedup = total_recompute / total_propagation
    batch_check = _check_batch_equivalence()
    passed = speedup >= SPEEDUP_FLOOR and batch_check["extents_identical"]
    run = {
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now().isoformat(timespec="seconds"),
        "config": {"scale": SCALE, "repeats": REPEATS, "cells": list(CELLS)},
        "trajectory": rows,
        "propagation_s": round(total_propagation, 6),
        "recompute_s": round(total_recompute, 6),
        "speedup": round(speedup, 3),
        "floor": SPEEDUP_FLOOR,
        "batch_equivalence": batch_check,
        "passed": passed,
    }
    _append_run(run)
    print(
        "batch-vs-sequential extents on %d mixed statements -> %s"
        % (
            batch_check["statements"],
            "IDENTICAL" if batch_check["extents_identical"] else "DIVERGED",
        )
    )
    print(
        "maintenance-vs-recompute speedup %.2fx (floor %.1fx) -> %s  [%s]"
        % (speedup, SPEEDUP_FLOOR, "PASS" if passed else "FAIL", OUT_PATH)
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
