"""Benchmark smoke gate: reduced Fig-18/19 configuration.

Runs a minimal insert/delete propagation matrix (views Q1 and Q3,
single-target statements derived from X1_L / X2_L at a small scale),
verifies every maintained extent against recomputation, compares
propagation time against the full-recompute baseline of Section 6.5,
and checks the batch pipeline invariant: a mixed statement stream
propagated as one ``UpdateBatch`` must leave extents byte-identical to
sequential per-statement application.

Also drives a mixed-churn stream (σ-value rewrites and round-trips,
:func:`repro.workloads.churn.churn_batches`) through the repair engine
and records the *fallback rate* -- fallback-bearing batches over
flip-bearing batches.  The σ-flip repair keeps it at 0.0; the gate
fails above ``FALLBACK_RATE_CEILING``.

Appends one run entry -- keyed by git SHA + timestamp -- to the
trajectory list in ``benchmarks/out/BENCH_hotpath.json`` (CI trend
tracking: the file accumulates across runs instead of being
overwritten).  Run entries are schema-checked against ``RUN_KEYS``
before writing, so stale metrics can never silently accrete in the
trajectory; unknown keys in *historical* entries are dropped on
migration.  Exits non-zero if the maintenance-vs-recompute speedup
falls below ``SPEEDUP_FLOOR``, the fallback rate exceeds its ceiling,
or the batch equivalence check fails.  When ``GITHUB_STEP_SUMMARY`` is
set (GitHub Actions), the gate metrics are appended there as a
markdown table.

The seed measured ~5x on this configuration; the floor is set well
below that so timing noise never trips the gate, while a genuine
asymptotic regression (maintenance going O(document) again) lands far
under it.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys

from repro.baselines.recompute import full_recompute
from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.updates.language import ResolvedDeleteUpdate, ResolvedInsertUpdate, UpdateBatch
from repro.updates.pul import compute_pul
from repro.views.lattice import SnowcapLattice
from repro.workloads.queries import view_pattern
from repro.workloads.updates import insert_update, statement_stream
from repro.workloads.xmark import generate_document

SCALE = 3
REPEATS = 3
SPEEDUP_FLOOR = 2.0
BATCH_STREAM_LENGTH = 16
CHURN_BATCHES = 8
SESSION_BATCHES = 8
FALLBACK_RATE_CEILING = 0.05
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "BENCH_hotpath.json")
TRACE_PATH = os.path.join(os.path.dirname(__file__), "out", "trace.jsonl")

#: view -> the Appendix-A statement its single-target updates derive from.
CELLS = (("Q1", "X1_L"), ("Q3", "X2_L"))

#: the full schema of one trajectory run entry; _append_run rejects
#: anything else so retired metrics cannot silently accrete.
RUN_KEYS = frozenset(
    {
        "git_sha",
        "timestamp",
        "config",
        "trajectory",
        "propagation_s",
        "recompute_s",
        "speedup",
        "floor",
        "batch_equivalence",
        "fallback_rate",
        "durability",
        "metrics",
        "passed",
    }
)


def _measure_cell(view_name: str, base_update: str, kind: str) -> dict:
    """One (view, kind) cell: propagation vs recompute seconds (min of
    REPEATS fresh runs), with the maintained extent verified each run."""
    propagation = recompute = float("inf")
    for _ in range(REPEATS):
        document = generate_document(scale=SCALE)
        engine = MaintenanceEngine(document)
        registered = engine.register_view(view_pattern(view_name), view_name)
        base = insert_update(base_update)
        target_id = compute_pul(document, base).inserts()[0].target.id
        if kind == "insert":
            statement = ResolvedInsertUpdate([target_id], base.forest, name="smoke")
        else:
            statement = ResolvedDeleteUpdate([target_id], name="smoke")
        report = engine.apply_update(statement)
        view_report = report.report_for(view_name)
        if not registered.view.equals_fresh_evaluation(document):
            raise AssertionError(
                "maintained view %s diverged (%s)" % (view_name, kind)
            )
        propagation = min(
            propagation,
            view_report.phases.total() - view_report.phases.find_target_nodes,
        )
        _, recompute_seconds = full_recompute(
            registered.pattern, document, SnowcapLattice(registered.pattern)
        )
        recompute = min(recompute, recompute_seconds)
    return {
        "view": view_name,
        "kind": kind,
        "base_update": base_update,
        "propagation_s": round(propagation, 6),
        "recompute_s": round(recompute, 6),
        "ratio": round(recompute / propagation, 3),
    }


def _git_sha() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
    except Exception:
        return "unknown"


def _check_batch_equivalence() -> dict:
    """Batch == sequential on a mixed stream (part of the smoke gate)."""
    views = ("Q1", "Q3")
    stream = statement_stream(
        generate_document(scale=SCALE), BATCH_STREAM_LENGTH, seed=11, insert_ratio=0.7
    )
    sequential_doc = generate_document(scale=SCALE)
    sequential = MaintenanceEngine(sequential_doc)
    sequential_views = {
        name: sequential.register_view(view_pattern(name), name) for name in views
    }
    for statement in stream:
        sequential.apply_update(statement)
    batch_doc = generate_document(scale=SCALE)
    batched = BatchEngine(batch_doc)
    batched_views = {
        name: batched.register_view(view_pattern(name), name) for name in views
    }
    report = batched.apply(UpdateBatch(stream))
    equal = all(
        sequential_views[name].view.content() == batched_views[name].view.content()
        and batched_views[name].view.equals_fresh_evaluation(batch_doc)
        for name in views
    )
    return {
        "statements": BATCH_STREAM_LENGTH,
        "views": list(views),
        "net_inserted": report.net_inserted,
        "net_removed": report.net_removed,
        "fallbacks": dict(report.fallbacks),
        "extents_identical": equal,
    }


def _measure_fallback_rate() -> dict:
    """Fallback rate of the repair engine on a mixed-churn stream.

    A batch is *flip-bearing* when it σ-flipped some view candidate
    (``report.repairs`` non-empty, or a ``predicate_flip`` fallback
    fired); the rate is fallback-bearing over flip-bearing batches.
    The historical recompute fallback scored ~1.0 here by construction;
    the σ-flip repair keeps it at 0.0.
    """
    from repro.workloads.churn import churn_batches

    views = ("Q1", "Q3")
    batches = churn_batches(
        generate_document(scale=SCALE), CHURN_BATCHES, seed=17
    )
    document = generate_document(scale=SCALE)
    engine = BatchEngine(document)
    registered = {
        name: engine.register_view(view_pattern(name), name) for name in views
    }
    flip_bearing = 0
    fallback_bearing = 0
    for batch in batches:
        report = engine.apply(list(batch))
        flipped = bool(report.repairs) or any(
            entry.get("reason") == "predicate_flip"
            for entry in report.fallbacks.values()
        )
        if flipped:
            flip_bearing += 1
            if report.fallbacks:
                fallback_bearing += 1
    for name in views:
        if not registered[name].view.equals_fresh_evaluation(document):
            raise AssertionError("churn-maintained view %s diverged" % name)
    rate = (fallback_bearing / flip_bearing) if flip_bearing else 0.0
    return {
        "churn_batches": CHURN_BATCHES,
        "flip_bearing_batches": flip_bearing,
        "fallback_bearing_batches": fallback_bearing,
        "rate": round(rate, 3),
        "ceiling": FALLBACK_RATE_CEILING,
    }



def _check_durability() -> dict:
    """Smoke slice of the durability gate (the full crash matrix and
    the timing gates live in ``bench_durability.py``): one SIGKILLed
    crash point must recover to the uninterrupted run's digests, and a
    cleanly closed database must reopen by adoption alone -- every
    extent and lattice taken verbatim, nothing rematerialized."""
    import tempfile

    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests")
    )
    from harness import crashkit
    from repro.storage.recovery import reopen

    expected = crashkit.reference_digests()
    with tempfile.TemporaryDirectory() as tmp:
        crash_db = os.path.join(tmp, "smoke_crash.db")
        status = crashkit.run_crashing_fork(crash_db, "serial", "mid_bulk_apply", 2)
        sigkilled = crashkit.died_by_sigkill(status)
        engine, report = crashkit.recover_and_finish(crash_db)
        identical = (
            crashkit.extent_digest(engine.views),
            crashkit.lattice_digest(engine.views),
        ) == expected
        engine.backend.close()

        clean_db = os.path.join(tmp, "smoke_clean.db")
        crashkit.run_workload(clean_db, "serial").backend.close()
        recovered, clean_report = reopen(
            clean_db, crashkit.build_document(), crashkit.view_sources()
        )
        adopted = (
            clean_report.lattices_rematerialized == 0
            and crashkit.extent_digest(recovered.views) == expected[0]
        )
        recovered.backend.close()
    return {
        "crash_point": "mid_bulk_apply",
        "sigkilled": sigkilled,
        "replayed_batches": report.replayed_batches,
        "recovered_identical": identical,
        "clean_reopen_adopted": adopted,
        "ok": sigkilled and identical and adopted,
    }


def _counter_total(counter) -> float:
    return sum(value for _labels, value in counter.samples())


def _collect_obs_metrics() -> dict:
    """Drive a queued stream over an instrumented engine; distill the
    registry into the run entry's ``metrics`` block and leave the full
    JSONL trace at ``TRACE_PATH`` (uploaded as a CI artifact).

    This is the rebalancing input ROADMAP item 2 asks for: per-batch
    propagation latency quantiles, queue backpressure and
    fallback/repair counts, captured by ``repro.obs`` instead of ad-hoc
    re-timing.
    """
    from repro.maintenance.queue import ApplyQueue
    from repro.obs import Observability

    os.makedirs(os.path.dirname(TRACE_PATH), exist_ok=True)
    obs = Observability(trace_path=TRACE_PATH)
    engine = BatchEngine(generate_document(scale=SCALE), obs=obs)
    for name in ("Q1", "Q3"):
        engine.register_view(view_pattern(name), name)
    stream = statement_stream(
        generate_document(scale=SCALE), BATCH_STREAM_LENGTH, seed=23, insert_ratio=0.7
    )
    with ApplyQueue(engine, max_batch_size=4) as queue:
        queue.extend_async(stream)
        queue.flush()
    # close() wrote every span the queue worker recorded to TRACE_PATH.
    propagation = obs.metrics.get("repro_propagation_seconds")
    depth = obs.metrics.get("repro_queue_depth")
    return {
        "propagation_p50_ms": round(propagation.quantile(0.5) * 1e3, 3),
        "propagation_p95_ms": round(propagation.quantile(0.95) * 1e3, 3),
        "propagation_batches": propagation.count(),
        "queue_depth_max": depth.max_value(),
        "queue_commit_p95_ms": round(
            obs.metrics.get("repro_queue_commit_seconds").quantile(0.95) * 1e3, 3
        ),
        "fallbacks_total": _counter_total(obs.metrics.get("repro_fallbacks_total")),
        "repairs_total": _counter_total(obs.metrics.get("repro_repairs_total")),
        "trace_path": os.path.relpath(TRACE_PATH, os.path.dirname(os.path.dirname(TRACE_PATH))),
    }


def _collect_session_metrics() -> dict:
    """Drive a short drift stream through a resident rebalancing
    session and distill its telemetry: per-batch makespan skew, the
    observed LPT imbalance high-water and the migrations the policy
    executed.  Fork weights deliberately strand every non-Q1 view on
    one worker (one heavy weight plus exact ties -- LPT parks
    indistinguishable views together), so the drift stream forces the
    policy to migrate within a few batches; extents are then verified
    against a serial engine, covering the migration protocol's
    identity in the smoke gate.
    """
    from repro.obs import Observability
    from repro.sharding.rebalance import RebalancePolicy
    from repro.workloads.drift import drift_batches, drift_phase_families

    views = ("Q1", "Q2", "Q3", "Q4", "Q6")
    _people, auctions, _regions = drift_phase_families()
    batches = [
        UpdateBatch(rows)
        for rows in drift_batches(
            generate_document(scale=SCALE),
            SESSION_BATCHES,
            batch_size=8,
            seed=29,
            families=[auctions],
        )
        if rows
    ]
    serial_doc = generate_document(scale=SCALE)
    serial = MaintenanceEngine(serial_doc)
    serial_views = {
        name: serial.register_view(view_pattern(name), name) for name in views
    }
    for batch in batches:
        serial.apply_batch(batch)

    obs = Observability()
    document = generate_document(scale=SCALE)
    engine = MaintenanceEngine(document, obs=obs)
    registered = {
        name: engine.register_view(view_pattern(name), name) for name in views
    }
    weights = {name: 1e-9 for name in views}
    weights["Q1"] = 1.0
    policy = RebalancePolicy(
        trigger_ratio=1.2,
        target_ratio=1.1,
        patience=1,
        cooldown=0,
        budget=4,
        alpha=0.5,
        ship_rows=50_000,
    )
    session = engine.session(workers=2, weights=weights, rebalance=policy)
    try:
        for batch in batches:
            session.apply_batch(batch)
    finally:
        session.close()
    for name in views:
        if serial_views[name].view.content() != registered[name].view.content():
            raise AssertionError(
                "rebalancing session view %s diverged from serial" % name
            )
        if not registered[name].view.equals_fresh_evaluation(document):
            raise AssertionError(
                "rebalancing session view %s != fresh evaluation" % name
            )
    metrics = obs.metrics
    return {
        "session_batches": len(batches),
        "session_skew_seconds": round(
            metrics.get("repro_session_skew_seconds").max_value(), 6
        ),
        "lpt_imbalance_ratio": round(
            metrics.get("repro_session_lpt_imbalance_ratio").value(), 4
        ),
        "lpt_imbalance_high_water": round(
            metrics.get("repro_session_lpt_imbalance_ratio").max_value(), 4
        ),
        "migrations_total": int(
            _counter_total(metrics.get("repro_session_migrations_total"))
        ),
        "extents_identical": True,
    }


def _write_step_summary(run: dict) -> None:
    """Append the gate metrics to the GitHub Actions job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    fallback = run["fallback_rate"]
    lines = [
        "### Benchmark smoke gate",
        "",
        "| metric | value | gate |",
        "| --- | --- | --- |",
        "| maintenance vs recompute speedup | %.2fx | >= %.1fx |"
        % (run["speedup"], run["floor"]),
        "| fallback rate (flip-bearing churn batches) | %.3f | <= %.2f |"
        % (fallback["rate"], fallback["ceiling"]),
        "| batch vs sequential extents | %s | identical |"
        % (
            "identical"
            if run["batch_equivalence"]["extents_identical"]
            else "DIVERGED"
        ),
        "| crash recovery (%s) + clean reopen | %s | identical + adopted |"
        % (
            run["durability"]["crash_point"],
            "OK" if run["durability"]["ok"] else "FAIL",
        ),
        "| propagation p50 / p95 | %.3f / %.3f ms | recorded |"
        % (
            run["metrics"]["propagation_p50_ms"],
            run["metrics"]["propagation_p95_ms"],
        ),
        "| queue depth max | %d | recorded |" % run["metrics"]["queue_depth_max"],
        "| session skew high-water | %.3f ms | recorded |"
        % (run["metrics"]["session_skew_seconds"] * 1e3),
        "| session imbalance ratio (last / high-water) | %.3f / %.3f | recorded |"
        % (
            run["metrics"]["lpt_imbalance_ratio"],
            run["metrics"]["lpt_imbalance_high_water"],
        ),
        "| session migrations | %d | recorded |"
        % run["metrics"]["migrations_total"],
        "| result | %s | |" % ("PASS" if run["passed"] else "FAIL"),
        "",
    ]
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")
        try:
            from repro.obs.cli import render_markdown
            from repro.obs.export import read_jsonl

            handle.write("\n### Observability trace\n\n")
            handle.write(render_markdown(read_jsonl(TRACE_PATH)) + "\n")
        except OSError:
            pass  # no trace captured; the gate table above still stands


def _append_run(run: dict) -> None:
    """Record one run entry in the trajectory file.

    Pre-trajectory files (a single run dict) are migrated into the
    first entry of the ``runs`` list.  One entry per commit: re-running
    at the same git SHA replaces the earlier entry for that SHA instead
    of appending a duplicate (unknown SHAs always append, so local
    tarball runs still accumulate).  The new entry must match
    ``RUN_KEYS`` exactly; unknown keys in historical entries (metrics
    since retired) are dropped rather than carried forward.
    """
    unknown = set(run) - RUN_KEYS
    if unknown:
        raise ValueError(
            "run entry carries unknown keys %s; update RUN_KEYS if the "
            "schema really grew" % sorted(unknown)
        )
    history: dict = {"runs": []}
    if os.path.exists(OUT_PATH):
        try:
            with open(OUT_PATH) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            if isinstance(existing.get("runs"), list):
                history = existing
            elif existing:
                existing.setdefault("git_sha", "pre-trajectory")
                history["runs"] = [existing]
    history["runs"] = [
        {key: value for key, value in entry.items() if key in RUN_KEYS}
        for entry in history["runs"]
    ]
    sha = run.get("git_sha")
    if sha and sha != "unknown":
        history["runs"] = [
            entry for entry in history["runs"] if entry.get("git_sha") != sha
        ]
    history["runs"].append(run)
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main() -> int:
    rows = []
    total_propagation = total_recompute = 0.0
    for view_name, base_update in CELLS:
        for kind in ("insert", "delete"):
            row = _measure_cell(view_name, base_update, kind)
            rows.append(row)
            total_propagation += row["propagation_s"]
            total_recompute += row["recompute_s"]
            print(
                "%-4s %-6s  propagation %8.3fms  recompute %8.3fms  ratio %5.1fx"
                % (
                    row["view"],
                    row["kind"],
                    row["propagation_s"] * 1000,
                    row["recompute_s"] * 1000,
                    row["ratio"],
                )
            )
    speedup = total_recompute / total_propagation
    batch_check = _check_batch_equivalence()
    fallback = _measure_fallback_rate()
    durability = _check_durability()
    obs_metrics = _collect_obs_metrics()
    obs_metrics.update(_collect_session_metrics())
    passed = (
        speedup >= SPEEDUP_FLOOR
        and batch_check["extents_identical"]
        and fallback["rate"] <= FALLBACK_RATE_CEILING
        and durability["ok"]
    )
    run = {
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now().isoformat(timespec="seconds"),
        "config": {"scale": SCALE, "repeats": REPEATS, "cells": list(CELLS)},
        "trajectory": rows,
        "propagation_s": round(total_propagation, 6),
        "recompute_s": round(total_recompute, 6),
        "speedup": round(speedup, 3),
        "floor": SPEEDUP_FLOOR,
        "batch_equivalence": batch_check,
        "fallback_rate": fallback,
        "durability": durability,
        "metrics": obs_metrics,
        "passed": passed,
    }
    _append_run(run)
    _write_step_summary(run)
    print(
        "batch-vs-sequential extents on %d mixed statements -> %s"
        % (
            batch_check["statements"],
            "IDENTICAL" if batch_check["extents_identical"] else "DIVERGED",
        )
    )
    print(
        "fallback rate %.3f over %d flip-bearing churn batches (ceiling %.2f)"
        % (fallback["rate"], fallback["flip_bearing_batches"], fallback["ceiling"])
    )
    print(
        "durability: crash at %s sigkill=%s replayed=%d recovered=%s "
        "clean-reopen-adopted=%s -> %s"
        % (
            durability["crash_point"],
            durability["sigkilled"],
            durability["replayed_batches"],
            "IDENTICAL" if durability["recovered_identical"] else "DIVERGED",
            durability["clean_reopen_adopted"],
            "OK" if durability["ok"] else "FAIL",
        )
    )
    print(
        "queued propagation p50 %.3fms  p95 %.3fms  queue depth max %d  "
        "fallbacks %d  repairs %d  [%s]"
        % (
            obs_metrics["propagation_p50_ms"],
            obs_metrics["propagation_p95_ms"],
            obs_metrics["queue_depth_max"],
            obs_metrics["fallbacks_total"],
            obs_metrics["repairs_total"],
            obs_metrics["trace_path"],
        )
    )
    print(
        "rebalancing session over %d drift batches: skew high-water %.3fms  "
        "imbalance %.3f (high-water %.3f)  migrations %d  extents identical"
        % (
            obs_metrics["session_batches"],
            obs_metrics["session_skew_seconds"] * 1e3,
            obs_metrics["lpt_imbalance_ratio"],
            obs_metrics["lpt_imbalance_high_water"],
            obs_metrics["migrations_total"],
        )
    )
    print(
        "maintenance-vs-recompute speedup %.2fx (floor %.1fx) -> %s  [%s]"
        % (speedup, SPEEDUP_FLOOR, "PASS" if passed else "FAIL", OUT_PATH)
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
