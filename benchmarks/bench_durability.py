"""Durability gate: reopen speedup, hot-path overhead, crash identity.

Three gates, all against the sqlite + batch-WAL backend
(:mod:`repro.storage`):

1. **Reopen speedup** -- recovering an engine via :func:`repro.storage.
   recovery.reopen` (extent adoption + lattice snapshots) must beat
   rebuilding the same views from scratch (pattern evaluation +
   snowcap materialization) by at least ``REOPEN_SPEEDUP_FLOOR``.
2. **Hot-path overhead** -- pushing the workload through a durable
   engine (WAL append + journaled sqlite txn per batch) must cost at
   most ``OVERHEAD_CEILING`` times the pure in-memory engine.
3. **Crash identity** -- for every named crash point, SIGKILLing the
   workload mid-protocol, recovering, and finishing must produce
   extent *and* lattice digests identical to an uninterrupted run.

Writes one entry to ``benchmarks/out/BENCH_durability.json`` and, when
``GITHUB_STEP_SUMMARY`` is set, appends a markdown table.  Exits
non-zero when any gate fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_durability.py
"""

from __future__ import annotations

import contextlib
import datetime
import gc
import json
import os
import statistics
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests"))  # for the harness

from harness import crashkit  # noqa: E402
from repro.maintenance.engine import MaintenanceEngine  # noqa: E402
from repro.storage.crashpoints import CRASH_POINTS  # noqa: E402
from repro.storage.recovery import reopen  # noqa: E402
from repro.updates.language import UpdateBatch  # noqa: E402
from repro.workloads.updates import statement_stream  # noqa: E402
from repro.workloads.xmark import generate_document  # noqa: E402

#: timing gates run a larger workload than the crash harness: at test
#: scale the document is so small that sqlite's per-open constants
#: drown the asymptotic difference the gates are about.
SCALE = 16
BATCHES = 40
BATCH_SIZE = 6
SEED = 13
REPEATS = 5
REOPEN_SPEEDUP_FLOOR = 5.0
OVERHEAD_CEILING = 1.10
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "BENCH_durability.json")


def _build_document():
    return generate_document(scale=SCALE)


def _build_batches(document):
    stream = statement_stream(
        document, BATCHES * BATCH_SIZE, seed=SEED, insert_ratio=0.7
    )
    return [stream[i : i + BATCH_SIZE] for i in range(0, len(stream), BATCH_SIZE)]


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:
        return "unknown"


@contextlib.contextmanager
def _quiet_gc():
    """Collect up front, then keep the collector out of the timed
    region: a generation-2 pass landing mid-measurement scans every
    live document graph and dwarfs the durability costs under test."""
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _workload(backend=None):
    """Build a document, register the views, apply every batch; returns
    (engine, per-batch apply seconds)."""
    document = _build_document()
    batches = _build_batches(document)
    engine = MaintenanceEngine(document, backend=backend)
    for name, source in crashkit.view_sources().items():
        engine.register_view(source, name)
    per_batch = []
    with _quiet_gc():
        for batch in batches:
            started = time.perf_counter()
            engine.apply_batch(UpdateBatch(batch))
            per_batch.append(time.perf_counter() - started)
    if backend is not None:
        engine.sync_durability()
    return engine, per_batch


def measure_overhead(tmp: str) -> dict:
    """Gate 2: durable batch application vs in-memory.

    An in-memory and a durable engine evolve in lockstep over identical
    documents and statement streams, so batch ``i`` of either engine
    applies the same work to the same state and the two modes compare
    cell by cell.  The engines are interleaved at *batch* granularity
    -- each durable apply is timed milliseconds after its in-memory
    twin, not a whole run later -- which is the scale on which machine
    drift (frequency scaling, a neighbour stealing the core) actually
    cancels; the order within a pair alternates per repetition to kill
    any warm-up bias.  The remaining noise is one-sided (interference
    only ever adds time), so each cell's closest observation to its
    true cost is the minimum across repetitions, and the gate compares
    the summed per-cell floors.
    """
    memory_runs, durable_runs = [], []
    for index in range(REPEATS):
        lockstep = []
        for db_path in (None, os.path.join(tmp, "overhead_%d.db" % index)):
            document = _build_document()
            batches = _build_batches(document)
            engine = MaintenanceEngine(document, backend=db_path)
            for name, source in crashkit.view_sources().items():
                engine.register_view(source, name)
            lockstep.append((engine, batches, []))
        pair = lockstep if index % 2 == 0 else lockstep[::-1]
        with _quiet_gc():
            for i in range(BATCHES):
                for engine, batches, per_batch in pair:
                    started = time.perf_counter()
                    engine.apply_batch(UpdateBatch(batches[i]))
                    per_batch.append(time.perf_counter() - started)
        durable_engine = lockstep[1][0]
        durable_engine.sync_durability()
        durable_engine.backend.close()
        memory_runs.append(lockstep[0][2])
        durable_runs.append(lockstep[1][2])
    memory = sum(min(run[i] for run in memory_runs) for i in range(BATCHES))
    durable = sum(min(run[i] for run in durable_runs) for i in range(BATCHES))
    return {
        "memory_s": round(memory, 6),
        "durable_s": round(durable, 6),
        "overhead": round(durable / memory, 4),
        "ceiling": OVERHEAD_CEILING,
    }


def measure_reopen(tmp: str) -> dict:
    """Gate 1: adopt-from-sqlite reopen vs full-history rematerialization.

    The alternative to durable extents is replaying the *entire* batch
    history through a fresh engine -- view maintenance per batch, cost
    proportional to how long the engine has been alive.  Reopen adopts
    the extents verbatim and replays at most one batch, so its cost is
    bounded by the document replay + extent size regardless of history.
    Both paths start from the same base document and end in the same
    state (digest-checked).
    """
    db_path = os.path.join(tmp, "reopen.db")
    engine, _ = _workload(backend=db_path)
    engine.backend.close()
    expected = crashkit.extent_digest(engine.views)

    rematerialize_runs, reopen_runs, ratios = [], [], []
    for _ in range(REPEATS):
        document = _build_document()
        batches = _build_batches(document)
        with _quiet_gc():
            started = time.perf_counter()
            cold = MaintenanceEngine(document)
            for name, source in crashkit.view_sources().items():
                cold.register_view(source, name)
            for batch in batches:
                cold.apply_batch(UpdateBatch(batch))
            rematerialize = time.perf_counter() - started
        assert crashkit.extent_digest(cold.views) == expected

        # Reopen: document replay (statements only, no view work) +
        # verbatim extent/lattice adoption.  Timed back to back with
        # the rematerialization above, so the per-iteration ratio is
        # immune to machine drift across iterations.
        base = _build_document()
        with _quiet_gc():
            started = time.perf_counter()
            recovered, report = reopen(db_path, base, crashkit.view_sources())
            reopened = time.perf_counter() - started
        assert report.lattices_rematerialized == 0, report
        assert crashkit.extent_digest(recovered.views) == expected
        recovered.backend.close()
        rematerialize_runs.append(rematerialize)
        reopen_runs.append(reopened)
        ratios.append(rematerialize / reopened)
    return {
        "rematerialize_s": round(statistics.median(rematerialize_runs), 6),
        "reopen_s": round(statistics.median(reopen_runs), 6),
        "speedup": round(statistics.median(ratios), 3),
        "floor": REOPEN_SPEEDUP_FLOOR,
    }


def measure_crash_identity(tmp: str) -> dict:
    """Gate 3: every crash point recovers to the uninterrupted digests."""
    expected = crashkit.reference_digests()
    cells = []
    for point in CRASH_POINTS:
        db_path = os.path.join(tmp, "crash_%s.db" % point)
        status = crashkit.run_crashing_fork(db_path, "serial", point, 2)
        killed = crashkit.died_by_sigkill(status)
        engine, report = crashkit.recover_and_finish(db_path)
        digests = (
            crashkit.extent_digest(engine.views),
            crashkit.lattice_digest(engine.views),
        )
        engine.backend.close()
        cells.append(
            {
                "point": point,
                "sigkilled": killed,
                "identical": digests == expected,
                "replayed_batches": report.replayed_batches,
                "truncated_bytes": report.truncated_bytes,
            }
        )
    return {"cells": cells, "identical": all(c["identical"] and c["sigkilled"] for c in cells)}


def _write_step_summary(run: dict) -> None:
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    reopen_row = run["reopen"]
    overhead_row = run["overhead"]
    lines = [
        "## Durability gate",
        "",
        "| metric | value | gate |",
        "|---|---|---|",
        "| reopen speedup vs full-history rematerialization | %.2fx | >= %.1fx |"
        % (reopen_row["speedup"], reopen_row["floor"]),
        "| durable hot-path overhead | %.3fx | <= %.2fx |"
        % (overhead_row["overhead"], overhead_row["ceiling"]),
        "| crash points byte-identical | %d/%d | all |"
        % (
            sum(c["identical"] for c in run["crash_identity"]["cells"]),
            len(run["crash_identity"]["cells"]),
        ),
        "| result | %s | |" % ("PASS" if run["passed"] else "FAIL"),
        "",
    ]
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def _append_run(run: dict) -> None:
    history = {"runs": []}
    if os.path.exists(OUT_PATH):
        try:
            with open(OUT_PATH) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
            history = existing
    sha = run.get("git_sha")
    if sha and sha != "unknown":
        history["runs"] = [
            entry for entry in history["runs"] if entry.get("git_sha") != sha
        ]
    history["runs"].append(run)
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def _timing_dir() -> str:
    """Base directory for the timing databases.

    Prefers tmpfs: the gates measure the *compute* cost of the
    durability protocol, and on small machines ext4 writeback competes
    with the timed workload for the CPU, drowning the signal.  Crash
    identity runs on the default temp dir regardless -- recovery
    correctness must not depend on the filesystem.
    """
    shm = "/dev/shm"
    if os.path.isdir(shm) and os.access(shm, os.W_OK):
        return shm
    import tempfile

    return tempfile.gettempdir()


def main() -> int:
    import tempfile

    with tempfile.TemporaryDirectory(dir=_timing_dir()) as timing_tmp, \
            tempfile.TemporaryDirectory() as crash_tmp:
        overhead = measure_overhead(timing_tmp)
        reopen_metrics = measure_reopen(timing_tmp)
        identity = measure_crash_identity(crash_tmp)
    passed = (
        reopen_metrics["speedup"] >= REOPEN_SPEEDUP_FLOOR
        and overhead["overhead"] <= OVERHEAD_CEILING
        and identity["identical"]
    )
    run = {
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now().isoformat(timespec="seconds"),
        "config": {
            "scale": SCALE,
            "batches": BATCHES,
            "batch_size": BATCH_SIZE,
            "crash_scale": crashkit.SCALE,
            "repeats": REPEATS,
        },
        "reopen": reopen_metrics,
        "overhead": overhead,
        "crash_identity": identity,
        "passed": passed,
    }
    _append_run(run)
    _write_step_summary(run)
    print(
        "reopen %0.3fms vs full-history rematerialization %0.3fms -> "
        "speedup %.2fx (floor %.1fx)"
        % (
            reopen_metrics["reopen_s"] * 1e3,
            reopen_metrics["rematerialize_s"] * 1e3,
            reopen_metrics["speedup"],
            REOPEN_SPEEDUP_FLOOR,
        )
    )
    print(
        "durable batches %0.3fms vs in-memory %0.3fms -> overhead %.3fx "
        "(ceiling %.2fx)"
        % (
            overhead["durable_s"] * 1e3,
            overhead["memory_s"] * 1e3,
            overhead["overhead"],
            OVERHEAD_CEILING,
        )
    )
    for cell in identity["cells"]:
        print(
            "crash %-21s sigkill=%s replayed=%d truncated=%dB -> %s"
            % (
                cell["point"],
                cell["sigkilled"],
                cell["replayed_batches"],
                cell["truncated_bytes"],
                "IDENTICAL" if cell["identical"] else "DIVERGED",
            )
        )
    print("durability gate -> %s  [%s]" % ("PASS" if passed else "FAIL", OUT_PATH))
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
