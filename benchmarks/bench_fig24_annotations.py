"""Figure 24: annotation placement (Q1 variants, fixed delete X1_L).

Paper shape: the closer val/cont sit to the view root, the costlier
PDDT/PDMT (bigger stored values to search and rewrite); IDs-only and
VC-Leaf are the cheapest variants.
"""

from repro.bench.experiments import run_annotation_variants

from conftest import SCALE_MEDIUM, rows_to_table


def test_fig24_annotations(benchmark, save_table):
    rows = run_annotation_variants(SCALE_MEDIUM)
    save_table(
        "fig24_annotations.txt",
        rows_to_table(
            rows,
            ("variant", "total_s", "execute_update", "tuples_modified"),
            "Figure 24: X1_L delete vs Q1 annotation variants",
        ),
    )
    by_variant = {row["variant"]: row["total_s"] for row in rows}
    assert by_variant["VC Root"] >= by_variant["VC Leaf"]

    benchmark.pedantic(lambda: run_annotation_variants(1, verify=False), rounds=2)
