"""Observability overhead gate: tracing on must be (nearly) free.

Runs the ``bench_batch_pipeline`` workload -- a 64-statement
single-target XMark insert stream batched to the Fig-18 views at
``SCALE_MEDIUM`` -- twice per repeat from identical starting documents:
once with the default null observability and once with a live
:class:`repro.obs.Observability` (metrics registry + tracer).  The
gate:

* enabled-vs-disabled *propagation* time (min over interleaved
  repeats) must stay within ``OVERHEAD_CEILING`` (1.05x);
* the trace must reproduce ``BatchReport.propagation_seconds()``
  exactly -- phase/net-effects/shard-round spans carry the *same*
  floats the report accumulated (the single-timing-source contract);
* with ``workers=2`` the instrumented run must leave extents
  byte-identical to the instrumented serial run (telemetry must never
  perturb propagation), and the trace must contain the shard-round
  spans with their stitched per-unit children.

Run directly (exit 1 on failure) or via
``PYTHONPATH=../src python -m pytest bench_observability.py``.
"""

from __future__ import annotations

from repro.maintenance.engine import BatchEngine
from repro.obs import Observability
from repro.obs.export import propagation_from_records, span_records
from repro.updates.language import UpdateBatch
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document

SCALE = 2  # the bench_batch_pipeline configuration
VIEWS = ("Q1", "Q3", "Q6")
STREAM_LENGTH = 64
REPEATS = 5
OVERHEAD_CEILING = 1.05
#: names whose single-target inserts the stream draws from.
STREAM_NAMES = ("X1_L", "X2_L", "X3_A", "A6_A", "B3_LB", "E6_L")


def _run_once(stream, obs=None, workers=None):
    document = generate_document(scale=SCALE)
    options = {} if obs is None else {"obs": obs}
    engine = BatchEngine(document, **options)
    views = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
    report = engine.apply(UpdateBatch(stream), workers=workers)
    return document, views, report


def _assert_trace_matches_report(obs, report) -> None:
    traced = propagation_from_records(span_records(obs.flush()))
    reported = report.propagation_seconds()
    if abs(traced - reported) > 1e-9 + 1e-6 * max(traced, reported):
        raise AssertionError(
            "trace propagation %.9fs != report propagation %.9fs"
            % (traced, reported)
        )


def run_gate() -> dict:
    stream = statement_stream(
        generate_document(scale=SCALE),
        STREAM_LENGTH,
        seed=7,
        insert_ratio=1.0,
        names=STREAM_NAMES,
    )
    disabled_s = enabled_s = float("inf")
    for _ in range(REPEATS):
        # Interleaved so both variants see the same thermal/cache drift.
        _, _, off_report = _run_once(stream)
        disabled_s = min(disabled_s, off_report.propagation_seconds())
        obs = Observability()
        _, _, on_report = _run_once(stream, obs=obs)
        enabled_s = min(enabled_s, on_report.propagation_seconds())
        _assert_trace_matches_report(obs, on_report)
    overhead = enabled_s / disabled_s
    return {
        "statements": STREAM_LENGTH,
        "views": list(VIEWS),
        "disabled_propagation_s": round(disabled_s, 6),
        "enabled_propagation_s": round(enabled_s, 6),
        "overhead": round(overhead, 4),
        "ceiling": OVERHEAD_CEILING,
    }


def check_sharded_identity() -> dict:
    """Instrumented serial vs instrumented workers=2: byte-identical
    extents, and shard-round spans present with stitched unit children."""
    stream = statement_stream(
        generate_document(scale=SCALE),
        STREAM_LENGTH,
        seed=13,
        insert_ratio=1.0,
        names=STREAM_NAMES,
    )
    serial_obs = Observability()
    serial_doc, serial_views, serial_report = _run_once(stream, obs=serial_obs)
    _assert_trace_matches_report(serial_obs, serial_report)
    shard_obs = Observability()
    shard_doc, shard_views, shard_report = _run_once(stream, obs=shard_obs, workers=2)
    records = span_records(shard_obs.flush())
    for name in VIEWS:
        if serial_views[name].view.content() != shard_views[name].view.content():
            raise AssertionError("view %s extents diverge under telemetry" % name)
        if not shard_views[name].view.equals_fresh_evaluation(shard_doc):
            raise AssertionError("sharded view %s != fresh evaluation" % name)
    round_rows = [row for row in records if row["name"] == "shard_round"]
    if not round_rows:
        raise AssertionError("no shard_round spans in the workers=2 trace")
    round_ids = {row["id"] for row in round_rows}
    stitched_units = [
        row
        for row in records
        if row["name"] == "unit" and row["parent"] in round_ids
    ]
    if not stitched_units:
        raise AssertionError("no stitched unit spans under shard_round")
    return {
        "shard_rounds": len(round_rows),
        "stitched_units": len(stitched_units),
        "modes": sorted({str(row["attrs"].get("mode")) for row in round_rows}),
    }


def _summary(row: dict, sharded: dict) -> str:
    return (
        "observability overhead on batch-of-%d (%s):\n"
        "  propagation %8.2fms disabled vs %8.2fms enabled -> %.4fx "
        "(ceiling %.2fx)\n"
        "  workers=2 extents identical; %d shard_round span(s), %d "
        "stitched unit span(s), modes %s"
        % (
            row["statements"],
            "+".join(row["views"]),
            row["disabled_propagation_s"] * 1000,
            row["enabled_propagation_s"] * 1000,
            row["overhead"],
            row["ceiling"],
            sharded["shard_rounds"],
            sharded["stitched_units"],
            ",".join(sharded["modes"]),
        )
    )


def test_observability_overhead(save_table):
    row = run_gate()
    sharded = check_sharded_identity()
    save_table("observability.txt", _summary(row, sharded))
    assert row["overhead"] <= OVERHEAD_CEILING, row


def main() -> int:
    row = run_gate()
    sharded = check_sharded_identity()
    passed = row["overhead"] <= OVERHEAD_CEILING
    print(_summary(row, sharded))
    print("-> %s" % ("PASS" if passed else "FAIL"))
    return 0 if passed else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
