"""Figure 33: reduction rule O1 (duplicate deletions) benefit.

Paper shape: optimised <= unoptimised, improving as the overlap
percentage grows (atomic-operation mode, Section 6.8).
"""

from repro.bench.experiments import run_reduction_rule

from conftest import rows_to_table

PERCENTS = (20, 40, 60, 80, 100)


def test_fig33_rule_o1(benchmark, save_table):
    rows = run_reduction_rule("O1", scale=1, percents=PERCENTS, repeats=2)
    save_table(
        "fig33_rule_o1.txt",
        rows_to_table(
            rows,
            ("percent", "optimized_s", "unoptimized_s", "ops_optimized",
             "ops_unoptimized", "saving"),
            "Figure 33: rule O1, optimised vs unoptimised",
        ),
    )
    assert all(row["ops_optimized"] <= row["ops_unoptimized"] for row in rows)

    benchmark.pedantic(
        lambda: run_reduction_rule("O1", scale=1, percents=(100,), repeats=1,
                                   verify=False),
        rounds=2,
    )
