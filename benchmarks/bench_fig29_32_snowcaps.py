"""Figures 29-32: Snowcaps vs Leaves materialization (views Q4, Q6).

Paper shape: materialized snowcaps reduce the (R) evaluate-terms time
at the price of an (U) lattice-upkeep time; the benefit shrinks as
snowcap/tuple counts grow.  With the cost-based (update-profile-driven)
snowcap selection of Section 3.5, Q4 -- whose R-parts are large joins --
shows the gain clearly; Q6's R-parts are two tiny prefix nodes in our
transcription, so the strategies tie there (see EXPERIMENTS.md).
"""

from repro.bench.experiments import run_snowcaps_vs_leaves
from repro.bench.harness import run_maintenance_pair

from conftest import rows_to_table

SCALES = (1, 2, 4, 8)


def test_fig29_32_snowcaps_vs_leaves(benchmark, save_table):
    q4 = run_snowcaps_vs_leaves("Q4", scales=SCALES)
    q6 = run_snowcaps_vs_leaves("Q6", scales=SCALES)
    columns = (
        "view",
        "scale",
        "doc_bytes",
        "strategy",
        "evaluate_terms_s",
        "update_lattice_s",
        "total_s",
    )
    save_table(
        "fig29_32_snowcaps_vs_leaves.txt",
        rows_to_table(q4, columns, "Figures 29/31: Q4 snowcaps vs leaves")
        + "\n\n"
        + rows_to_table(q6, columns, "Figures 30/32: Q6 snowcaps vs leaves"),
    )
    # Q4's (R) benefit at the largest scale.
    largest = [row for row in q4 if row["scale"] == SCALES[-1]]
    by_strategy = {row["strategy"]: row["evaluate_terms_s"] for row in largest}
    assert by_strategy["snowcaps"] <= by_strategy["leaves"]

    benchmark.pedantic(
        lambda: run_maintenance_pair(
            2, "Q4", "X2_L", "insert", strategy="snowcaps",
            verify=False, use_update_profile=True,
        ),
        rounds=2,
    )
