"""Figure 27: PDDT/PDMT vs full recomputation (views Q1/Q2/Q4).

Paper shape: incremental wins, with an even larger margin than for
insertions.
"""

from repro.bench.experiments import run_vs_full
from repro.bench.harness import run_maintenance_pair

from conftest import SCALE_MEDIUM, rows_to_table


def test_fig27_vs_full_delete(benchmark, save_table):
    selective = run_vs_full(SCALE_MEDIUM, "delete", selectivity=0.1)
    bulk = run_vs_full(SCALE_MEDIUM, "delete")
    columns = ("view", "update", "incremental_s", "full_s", "speedup")
    save_table(
        "fig27_vs_full_delete.txt",
        rows_to_table(
            selective,
            columns,
            "Figure 27: incremental delete vs full recomputation "
            "(selective deletions, 10% of targets)",
        )
        + "\n\n"
        + rows_to_table(
            bulk,
            columns,
            "Worst case: bulk deletions wiping entire target populations",
        ),
    )
    wins = sum(1 for row in selective if row["incremental_s"] < row["full_s"])
    assert wins >= len(selective) * 2 // 3

    benchmark.pedantic(
        lambda: run_maintenance_pair(SCALE_MEDIUM, "Q2", "X2_L", "delete", verify=False),
        rounds=2,
    )
