"""Figure 26: PINT/PIMT vs full recomputation (views Q1/Q2/Q4).

Paper shape: incremental maintenance beats recomputation broadly.
"""

from repro.bench.experiments import run_vs_full
from repro.bench.harness import run_maintenance_pair

from conftest import SCALE_MEDIUM, rows_to_table


def test_fig26_vs_full_insert(benchmark, save_table):
    rows = run_vs_full(SCALE_MEDIUM, "insert")
    save_table(
        "fig26_vs_full_insert.txt",
        rows_to_table(
            rows,
            ("view", "update", "incremental_s", "full_s", "speedup"),
            "Figure 26: incremental insert propagation vs full recomputation",
        ),
    )
    wins = sum(1 for row in rows if row["incremental_s"] < row["full_s"])
    assert wins >= len(rows) * 2 // 3

    benchmark.pedantic(
        lambda: run_maintenance_pair(SCALE_MEDIUM, "Q2", "X2_L", "insert", verify=False),
        rounds=2,
    )
