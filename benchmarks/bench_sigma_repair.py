"""σ-flip repair gate: in-place repair vs whole-view recompute fallback.

Registers eight Q3-variant σ views (one per increase amount the
generator emits, so every amount is σ-watched) and drives a mixed-churn
stream -- σ-value rewrites, flip round-trips, dirty pairs, skewed
background churn (:func:`repro.workloads.churn.churn_batches`) -- twice
from the same starting document:

* once on the default engine, whose σ-flip repair synthesizes bounded
  Δ± for the flipped candidates, and
* once with ``sigma_repair=False``, restoring the historical
  whole-view recompute fallback on every flip-bearing batch.

The repair side must

* leave every extent **byte-identical** to the fallback side (and to
  fresh evaluation) after every batch,
* cut the *fallback rate* -- fallback-bearing batches over
  flip-bearing batches -- from ~1.0 to ``MAX_FALLBACK_RATE``, and
* spend at least ``MIN_SPEEDUP``× less *propagation* time (the
  maintenance phases, including fallback recompute time; document
  application is statement-identical on both sides and excluded): the
  recompute fallback pays O(document × views) per flip-bearing batch,
  the repair pays O(flipped candidates).  End-to-end wall clock is
  reported alongside.

Run directly (exit 1 on failure) or via
``PYTHONPATH=../src python -m pytest bench_sigma_repair.py``.
"""

from __future__ import annotations

import time

from repro.maintenance.engine import BatchEngine
from repro.workloads.churn import churn_batches
from repro.workloads.queries import view_pattern
from repro.workloads.xmark import generate_document

SCALE = 4
#: every increase amount the generator emits; one σ view each.
SIGMA_VALUES = ("1.50", "3.00", "4.50", "6.00", "7.50", "9.00", "12.00", "15.00")
BATCHES = 12
BATCH_SIZE = 4
SEED = 13
MIN_SPEEDUP = 3.0
MAX_FALLBACK_RATE = 0.05
REPEATS = 3


def _sigma_views():
    """Eight Q3 variants, σ-filtering one increase amount each."""
    views = {}
    for amount in SIGMA_VALUES:
        pattern = view_pattern("Q3")
        for node in pattern.nodes():
            if node.value_pred is not None:
                node.value_pred = amount
        views["Q3_%s" % amount.replace(".", "_")] = pattern
    return views


def _run(sigma_repair: bool, batches):
    document = generate_document(scale=SCALE)
    engine = BatchEngine(document, sigma_repair=sigma_repair)
    registered = {
        name: engine.register_view(pattern, name)
        for name, pattern in _sigma_views().items()
    }
    wall = 0.0
    propagation = 0.0
    fallback_batches = []
    flip_batches = []
    for batch in batches:
        started = time.perf_counter()
        report = engine.apply(list(batch))
        wall += time.perf_counter() - started
        propagation += report.propagation_seconds()
        fallback_batches.append(bool(report.fallbacks))
        flip_batches.append(
            bool(report.repairs)
            or any(
                entry.get("reason") == "predicate_flip"
                for entry in report.fallbacks.values()
            )
        )
    return document, registered, propagation, wall, fallback_batches, flip_batches


def run_gate() -> dict:
    batches = churn_batches(
        generate_document(scale=SCALE),
        BATCHES,
        batch_size=BATCH_SIZE,
        seed=SEED,
        sigma_values=SIGMA_VALUES,
    )
    repair_wall = forced_wall = float("inf")
    repair_prop = forced_prop = float("inf")
    row: dict = {}
    for _ in range(REPEATS):
        repair = _run(True, batches)
        forced = _run(False, batches)
        repair_doc, repair_views, prop_r, wall_r, fell_r, _flips_r = repair
        _forced_doc, forced_views, prop_f, wall_f, fell_f, flips_f = forced
        for name in repair_views:
            if (
                repair_views[name].view.content()
                != forced_views[name].view.content()
            ):
                raise AssertionError("view %s extents diverge" % name)
            if not repair_views[name].view.equals_fresh_evaluation(repair_doc):
                raise AssertionError("repaired view %s != fresh evaluation" % name)
        # The forced run defines which batches carry σ flips; its
        # fallback rate over them is ~1.0 by construction.
        flip_bearing = [i for i, flipped in enumerate(flips_f) if flipped]
        if not flip_bearing:
            raise AssertionError("churn stream produced no flip-bearing batches")
        forced_rate = sum(fell_f[i] for i in flip_bearing) / len(flip_bearing)
        repair_rate = sum(fell_r[i] for i in flip_bearing) / len(flip_bearing)
        repair_wall = min(repair_wall, wall_r)
        forced_wall = min(forced_wall, wall_f)
        repair_prop = min(repair_prop, prop_r)
        forced_prop = min(forced_prop, prop_f)
        row = {
            "views": len(repair_views),
            "batches": BATCHES,
            "flip_bearing_batches": len(flip_bearing),
            "forced_fallback_rate": round(forced_rate, 3),
            "repair_fallback_rate": round(repair_rate, 3),
            "rate_ceiling": MAX_FALLBACK_RATE,
        }
    row.update(
        {
            "repair_propagation_s": round(repair_prop, 6),
            "forced_propagation_s": round(forced_prop, 6),
            "speedup": round(forced_prop / repair_prop, 3),
            "repair_wall_s": round(repair_wall, 6),
            "forced_wall_s": round(forced_wall, 6),
            "wall_speedup": round(forced_wall / repair_wall, 3),
            "floor": MIN_SPEEDUP,
        }
    )
    return row


def _passed(row: dict) -> bool:
    return (
        row["speedup"] >= MIN_SPEEDUP
        and row["repair_fallback_rate"] <= MAX_FALLBACK_RATE
    )


def _summary(row: dict) -> str:
    return (
        "σ-flip repair vs recompute fallback, %d σ views, %d churn batches "
        "(%d flip-bearing):\n"
        "  propagation   %8.2fms vs %8.2fms -> %5.2fx (floor %.1fx)\n"
        "  wall clock    %8.2fms vs %8.2fms -> %5.2fx (includes identical "
        "document application)\n"
        "  fallback rate %8.3f   vs %8.3f   (ceiling %.2f, over flip-bearing "
        "batches)"
        % (
            row["views"],
            row["batches"],
            row["flip_bearing_batches"],
            row["repair_propagation_s"] * 1000,
            row["forced_propagation_s"] * 1000,
            row["speedup"],
            row["floor"],
            row["repair_wall_s"] * 1000,
            row["forced_wall_s"] * 1000,
            row["wall_speedup"],
            row["repair_fallback_rate"],
            row["forced_fallback_rate"],
            row["rate_ceiling"],
        )
    )


def test_sigma_repair_speedup(save_table):
    row = run_gate()
    save_table("sigma_repair.txt", _summary(row))
    assert _passed(row), row


def main() -> int:
    row = run_gate()
    print(_summary(row))
    print("-> %s" % ("PASS" if _passed(row) else "FAIL"))
    return 0 if _passed(row) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
