"""Figure 21: total PDDT time for all XMark views x their update groups."""

from repro.bench.experiments import run_breakdown_matrix
from repro.bench.harness import format_rows, fresh_engine
from repro.workloads.updates import delete_variant

from conftest import SCALE_MEDIUM

ALL_VIEWS = ("Q1", "Q2", "Q3", "Q4", "Q6", "Q13", "Q17")


def test_fig21_all_views_delete(benchmark, save_table):
    rows = run_breakdown_matrix(SCALE_MEDIUM, "delete", views=ALL_VIEWS)
    save_table(
        "fig21_all_views_delete.txt",
        format_rows(rows, "Figure 21: PDDT total time, all views (ms)"),
    )

    def setup():
        return (fresh_engine(SCALE_MEDIUM, ALL_VIEWS),), {}

    benchmark.pedantic(
        lambda engine: engine.apply_update(delete_variant("B3_LB")),
        setup=setup,
        rounds=2,
    )
