"""Ablation: the dynamic pruning rules (Props. 3.6/3.8, 4.7).

Not a paper figure per se -- the paper motivates the prunings
analytically (Section 3.2/4.3) -- but DESIGN.md calls the pruning rules
out as a load-bearing design choice, so this bench quantifies them:
propagation with all prunings on vs. update-semantics pruning only.

Expected shape: pruning never hurts; the surviving-term count drops,
and execute-update time drops with it on updates whose Δ tables leave
most terms empty.
"""

import time

from repro.maintenance.engine import MaintenanceEngine
from repro.workloads.queries import view_pattern
from repro.workloads.updates import VIEW_UPDATE_GROUPS, insert_update
from repro.workloads.xmark import generate_document

from conftest import SCALE_MEDIUM, rows_to_table


def _run(view_name, update_name, use_pruning):
    document = generate_document(scale=SCALE_MEDIUM)
    engine = MaintenanceEngine(
        document,
        use_data_pruning=use_pruning,
        use_id_pruning=use_pruning,
    )
    registered = engine.register_view(view_pattern(view_name), view_name)
    started = time.perf_counter()
    report = engine.apply_update(insert_update(update_name))
    elapsed = time.perf_counter() - started
    assert registered.view.equals_fresh_evaluation(document)
    view_report = report.report_for(view_name)
    return elapsed, view_report.terms_surviving


def test_ablation_pruning(benchmark, save_table):
    rows = []
    for view_name in ("Q1", "Q4", "Q6"):
        update_name = VIEW_UPDATE_GROUPS[view_name][0]
        pruned_s, pruned_terms = _run(view_name, update_name, True)
        unpruned_s, unpruned_terms = _run(view_name, update_name, False)
        rows.append(
            {
                "view": view_name,
                "update": update_name,
                "terms_pruned": pruned_terms,
                "terms_unpruned": unpruned_terms,
                "pruned_s": round(pruned_s, 6),
                "unpruned_s": round(unpruned_s, 6),
            }
        )
    save_table(
        "ablation_pruning.txt",
        rows_to_table(
            rows,
            ("view", "update", "terms_pruned", "terms_unpruned",
             "pruned_s", "unpruned_s"),
            "Ablation: dynamic pruning rules on vs off",
        ),
    )
    assert all(row["terms_pruned"] <= row["terms_unpruned"] for row in rows)

    benchmark.pedantic(lambda: _run("Q4", "X2_L", True), rounds=2)
