"""Crash-injection test harness for the durable engine.

``crashkit`` drives a deterministic workload against a durable
(sqlite + WAL) engine in a child process with a named crash point
armed (``REPRO_CRASH_POINT``), lets the child SIGKILL itself mid-
protocol, then recovers the database in the test process and proves
the recovered state byte-identical to an uninterrupted run.
``crash_child.py`` is the subprocess entry point.
"""
