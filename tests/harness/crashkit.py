"""Workload, crash runners and canonical digests for durability tests.

The workload is deterministic end to end: an XMark document at a fixed
scale, three registered views, and a seeded statement stream cut into
fixed-size batches.  Batch ``i`` (0-based) commits as WAL batch ID
``i + 1``, so after any crash the recovered engine's ``backend.version``
says exactly which workload batches remain -- the harness re-applies
``batches[version:]`` and compares digests against an uninterrupted
in-memory serial run.

Two crash runners:

* :func:`spawn_workload` -- a real subprocess (fresh interpreter) with
  ``REPRO_CRASH_POINT`` in its environment: the closest model of a
  production crash, used by the smoke-level tests;
* :func:`run_crashing_fork` -- ``os.fork`` + arming the crash point in
  the child directly: same SIGKILL death without interpreter startup,
  cheap enough for the full point x mode matrix and property tests.
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
from typing import Dict, List, Tuple

HARNESS_DIR = os.path.dirname(os.path.abspath(__file__))
TESTS_DIR = os.path.dirname(HARNESS_DIR)
REPO_ROOT = os.path.dirname(TESTS_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")
CHILD = os.path.join(HARNESS_DIR, "crash_child.py")

VIEWS = ("Q1", "Q3", "Q6")
SCALE = 1
SEED = 13
BATCHES = 4
BATCH_SIZE = 6
INSERT_RATIO = 0.7
MODES = ("serial", "workers", "session")


def build_document():
    from repro.workloads.xmark import generate_document

    return generate_document(scale=SCALE)


def build_batches(document, seed: int = SEED, batches: int = BATCHES) -> List[list]:
    """Seeded statement batches against the *base* document state.

    Must be called before anything mutates ``document`` -- the stream
    generator reads the document it is given.
    """
    from repro.workloads.updates import statement_stream

    stream = statement_stream(
        document, batches * BATCH_SIZE, seed=seed, insert_ratio=INSERT_RATIO
    )
    return [stream[i : i + BATCH_SIZE] for i in range(0, len(stream), BATCH_SIZE)]


def view_sources() -> Dict[str, object]:
    from repro.workloads.queries import view_pattern

    return {name: view_pattern(name) for name in VIEWS}


# -- canonical digests -------------------------------------------------------


def extent_digest(views) -> str:
    """sha256 over every extent's sorted (row key, count) sequence."""
    from repro.views.view import row_sort_key

    hasher = hashlib.sha256()
    for name in sorted(views):
        hasher.update(name.encode("ascii"))
        for row, count in views[name].view.content():
            hasher.update(repr((row_sort_key(row), count)).encode("utf-8"))
    return hasher.hexdigest()


def lattice_digest(views) -> str:
    """sha256 over every snowcap relation as a canonical multiset.

    Stored relations are bags (incremental upkeep appends instead of
    re-sorting), so rows are sorted here; two lattices digest equal iff
    every relation holds the same multiset of rows.
    """
    hasher = hashlib.sha256()
    for name in sorted(views):
        lattice = views[name].lattice
        hasher.update(name.encode("ascii"))
        for subset in sorted(lattice.materialized_sets(), key=sorted):
            hasher.update(repr(sorted(subset)).encode("ascii"))
            relation = lattice.relation_for(subset)
            rows = sorted(
                repr(tuple(cell.id.sort_key for cell in row))
                for row in relation.rows
            )
            hasher.update("".join(rows).encode("utf-8"))
    return hasher.hexdigest()


# -- workload ----------------------------------------------------------------


def run_workload(db_path: str, mode: str, seed: int = SEED):
    """Build a durable engine and push the whole workload through it.

    ``mode`` is ``serial`` (in-process), ``workers`` (fork-pool shard
    rounds) or ``session`` (resident ShardSession replicas).  Returns
    the engine (the crash runners never get this far).
    """
    from repro.maintenance.engine import MaintenanceEngine
    from repro.updates.language import UpdateBatch

    document = build_document()
    batches = build_batches(document, seed=seed)
    engine = MaintenanceEngine(document, backend=db_path)
    for name, source in view_sources().items():
        engine.register_view(source, name)
    if mode == "session":
        with engine.session(workers=2) as session:
            for batch in batches:
                session.apply_batch(UpdateBatch(batch))
    else:
        workers = 2 if mode == "workers" else 0
        for batch in batches:
            engine.apply_batch(UpdateBatch(batch), workers=workers)
    engine.sync_durability()
    return engine


def reference_digests(seed: int = SEED) -> Tuple[str, str]:
    """Digests of the uninterrupted all-in-memory serial run."""
    from repro.maintenance.engine import MaintenanceEngine
    from repro.updates.language import UpdateBatch

    document = build_document()
    batches = build_batches(document, seed=seed)
    engine = MaintenanceEngine(document)
    for name, source in view_sources().items():
        engine.register_view(source, name)
    for batch in batches:
        engine.apply_batch(UpdateBatch(batch))
    return extent_digest(engine.views), lattice_digest(engine.views)


# -- crash runners -----------------------------------------------------------


def spawn_workload(db_path: str, mode: str, crash_spec=None):
    """Run the workload in a fresh interpreter; returns CompletedProcess.

    With ``crash_spec`` (e.g. ``"after_wal_append:2"``) the child arms
    the named crash point and is expected to die by SIGKILL
    (``returncode == -9``); without it the child runs to completion.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR, TESTS_DIR] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    if crash_spec is not None:
        env["REPRO_CRASH_POINT"] = crash_spec
    else:
        env.pop("REPRO_CRASH_POINT", None)
    # ``start_new_session`` + killpg: a SIGKILLed workload orphans its
    # fork-pool / session replicas, and those inherit this process's
    # stdout -- left alive they hold the pipe open forever (a piped
    # pytest run would hang at exit).  Killing the whole group reaps
    # them the moment the child is done.
    proc = subprocess.Popen(
        [sys.executable, CHILD, db_path, mode],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )
    try:
        stdout, stderr = proc.communicate(timeout=600)
    finally:
        _kill_group(proc.pid)
    return subprocess.CompletedProcess(proc.args, proc.returncode, stdout, stderr)


def run_crashing_fork(db_path: str, mode: str, point: str, nth: int, seed: int = SEED) -> int:
    """Fork, arm the crash point in the child, run the workload, reap.

    Returns the child's wait status; the caller asserts death by
    SIGKILL via :func:`died_by_sigkill`.  The child arms the point by
    poking the (already imported) crashpoints module -- equivalent to
    the environment hook a fresh process reads, but without paying
    interpreter startup per matrix cell.
    """
    pid = os.fork()
    if pid == 0:
        status = 42  # reached only if the crash point never fires
        try:
            os.setpgid(0, 0)  # own group: lets the parent reap orphans
            from repro.storage import crashpoints

            crashpoints._armed_point = point
            crashpoints._armed_hits = nth
            crashpoints._armed_pid = os.getpid()
            crashpoints._hits.clear()
            run_workload(db_path, mode, seed=seed)
        except BaseException:
            status = 43
        finally:
            os._exit(status)
    _, wait_status = os.waitpid(pid, 0)
    # The child's pool workers / session replicas survive its SIGKILL
    # (they share its process group, set above) and hold inherited
    # pipes open; kill the group so a piped test run can terminate.
    _kill_group(pid)
    return wait_status


def _kill_group(pgid: int) -> None:
    try:
        os.killpg(pgid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


def died_by_sigkill(wait_status: int) -> bool:
    return os.WIFSIGNALED(wait_status) and os.WTERMSIG(wait_status) == signal.SIGKILL


# -- recovery ----------------------------------------------------------------


def recover_and_finish(db_path: str, obs=None, seed: int = SEED):
    """Reopen the database and re-apply the unacknowledged batches.

    Returns ``(engine, RecoveryReport)`` with the engine at the same
    final state an uninterrupted run reaches: recovery replays the
    committed WAL tail, then the harness re-applies every workload
    batch past ``backend.version`` (exactly the batches the crashed
    process never got an acknowledgment for).
    """
    from repro.storage.recovery import reopen
    from repro.updates.language import UpdateBatch

    document = build_document()
    batches = build_batches(document, seed=seed)  # before reopen replays
    engine, report = reopen(db_path, document, view_sources(), obs=obs)
    for batch in batches[engine.backend.version :]:
        engine.apply_batch(UpdateBatch(batch))
    return engine, report
