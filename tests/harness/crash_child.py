"""Subprocess entry point: run the durability workload, maybe die.

Usage: ``python crash_child.py <db_path> <mode>`` with ``PYTHONPATH``
carrying both ``src`` and ``tests``.  When ``REPRO_CRASH_POINT`` is in
the environment the storage layer SIGKILLs this process at the named
point; otherwise the workload completes and prints ``completed``.
"""

import sys


def main() -> None:
    db_path, mode = sys.argv[1], sys.argv[2]
    from harness.crashkit import run_workload

    run_workload(db_path, mode)
    print("completed")


if __name__ == "__main__":
    main()
