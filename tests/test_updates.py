"""The update language, PUL computation and application (Section 2.3)."""

import pytest

from repro.updates.language import (
    DeleteUpdate,
    InsertUpdate,
    ResolvedDeleteUpdate,
    ResolvedInsertUpdate,
    parse_update,
)
from repro.updates.pul import apply_pul, compute_pul


class TestParsing:
    def test_delete_statement(self):
        update = parse_update("delete //a/b")
        assert isinstance(update, DeleteUpdate)
        assert repr(update.target) == "//a/b"

    def test_insert_into(self):
        update = parse_update("insert <x>1</x> into /site/people")
        assert isinstance(update, InsertUpdate)
        assert update.forest[0].label == "x"

    def test_for_insert(self):
        update = parse_update("for $p in /site/people/person insert <name>n</name>")
        assert isinstance(update, InsertUpdate)
        assert repr(update.target) == "/site/people/person"

    def test_let_for_insert_appendix_style(self):
        update = parse_update(
            'let $c := doc("auction.xml")\n'
            "for $person in $c/site/people/person\n"
            "insert <name>Martin<name>and</name></name>"
        )
        assert isinstance(update, InsertUpdate)
        assert repr(update.target) == "/site/people/person"
        assert len(update.forest) == 1

    def test_for_delete_with_variable(self):
        update = parse_update("for $p in //person delete $p/name")
        assert isinstance(update, DeleteUpdate)
        assert repr(update.target) == "//person/name"

    def test_insert_forest(self):
        update = parse_update("insert <a/><b/> into //x")
        assert [t.label for t in update.forest] == ["a", "b"]

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            InsertUpdate("//x", "   ")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_update("replace //a with <b/>")

    def test_fragment_xml_roundtrip(self):
        update = parse_update("insert <a><b/></a> into //x")
        assert update.fragment_xml() == "<a><b/></a>"


class TestComputePul:
    def test_insert_targets(self, people_document):
        update = InsertUpdate("//person[homepage]", "<tag/>")
        pul = compute_pul(people_document, update)
        assert len(pul) == 2
        assert all(op.kind == "insert" for op in pul)

    def test_delete_prunes_nested_targets(self, fig2_document):
        # //a//b and //c: c contains one of the b's; deleting c subsumes it.
        update = DeleteUpdate("//*")
        pul = compute_pul(fig2_document, update)
        targets = [str(op.target.id) for op in pul.deletes()]
        assert targets == ["a1.c1", "a1.f2"]

    def test_delete_root_means_empty_it(self, fig2_document):
        pul = compute_pul(fig2_document, DeleteUpdate("/a"))
        targets = [str(op.target.id) for op in pul.deletes()]
        assert targets == ["a1.c1", "a1.f2"]

    def test_resolved_statements(self, people_document):
        person = people_document.nodes_with_label("person")[0]
        pul = compute_pul(people_document, ResolvedDeleteUpdate([person.id]))
        assert len(pul) == 1
        pul = compute_pul(
            people_document,
            ResolvedInsertUpdate([person.id], InsertUpdate("//x", "<t/>").forest),
        )
        assert len(pul) == 1

    def test_resolved_skips_missing_ids(self, people_document):
        person = people_document.nodes_with_label("person")[0]
        people_document.delete_subtree(person)
        pul = compute_pul(people_document, ResolvedDeleteUpdate([person.id]))
        assert len(pul) == 0

    def test_insert_into_non_element_rejected(self, people_document):
        update = InsertUpdate("//person/@id", "<t/>")
        with pytest.raises(ValueError):
            compute_pul(people_document, update)


class TestApplyPul:
    def test_insert_applies_copies_with_ids(self, people_document):
        update = InsertUpdate("//person", "<tag><sub/></tag>")
        pul = compute_pul(people_document, update)
        applied = apply_pul(people_document, pul)
        assert len(applied.inserted_roots) == 3
        for root in applied.inserted_roots:
            assert root.id.label == "tag"
            assert root.parent.label == "person"

    def test_delete_returns_all_removed(self, fig2_document):
        pul = compute_pul(fig2_document, DeleteUpdate("//f"))
        applied = apply_pul(fig2_document, pul)
        assert {n.label for n in applied.removed_nodes} == {"f", "b", "#text"}

    def test_delete_root_children(self, fig2_document):
        pul = compute_pul(fig2_document, DeleteUpdate("/a"))
        apply_pul(fig2_document, pul)
        assert fig2_document.root.children == []

    def test_multiple_trees_per_target(self, people_document):
        update = InsertUpdate("//person[homepage]", "<x/><y/>")
        pul = compute_pul(people_document, update)
        applied = apply_pul(people_document, pul)
        assert len(applied.inserted_roots) == 4  # 2 targets x 2 trees
