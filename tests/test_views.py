"""Materialized views and the ordered tuple store."""

import pytest

from repro.pattern.tree_pattern import PatternNode, Pattern
from repro.views.store import OrderedTupleStore
from repro.views.view import MaterializedView
from tests.conftest import chain_pattern


@pytest.fixture(params=["memory", "sqlite"])
def make_store(request, tmp_path):
    """A fresh store per call, one per ``OrderedTupleStore`` backend.

    Both implementations must satisfy the same contract; every test in
    :class:`TestOrderedTupleStore` runs against each.
    """
    if request.param == "memory":
        yield OrderedTupleStore
        return
    from repro.storage.sqlite import SqliteExtentBackend

    backend = SqliteExtentBackend(str(tmp_path / "conformance.db"))
    made = []

    def factory():
        made.append(len(made))
        return backend.store_for("table_%d" % made[-1])

    yield factory
    backend.close()


class TestOrderedTupleStore:
    def test_put_get_delete(self, make_store):
        store = make_store()
        store.put(("b",), 1)
        store.put(("a",), 2)
        assert store.get(("a",)) == 2
        assert ("b",) in store
        assert store.delete(("b",))
        assert not store.delete(("b",))
        assert store.get(("b",), "missing") == "missing"

    def test_keys_sorted(self, make_store):
        store = make_store()
        for key in [("c",), ("a",), ("b",)]:
            store.put(key, 0)
        assert store.keys() == [("a",), ("b",), ("c",)]

    def test_put_overwrites(self, make_store):
        store = make_store()
        store.put(("a",), 1)
        store.put(("a",), 9)
        assert store.get(("a",)) == 9
        assert len(store) == 1

    def test_range_scan(self, make_store):
        store = make_store()
        for index in range(5):
            store.put((index,), index)
        assert [k for k, _ in store.range((1,), (4,))] == [(1,), (2,), (3,)]
        assert len(list(store.range())) == 5

    def test_load_sorted_rejects_unsorted(self, make_store):
        store = make_store()
        with pytest.raises(ValueError):
            store.load_sorted([(("b",), 1), (("a",), 1)])

    def test_snapshot_is_an_immutable_sequence(self, make_store):
        # The documented contract: a sequence decoupled from later
        # updates (not necessarily a list).
        store = make_store()
        store.put((1,), "a")
        frozen = store.snapshot()
        store.put((0,), "z")
        store.delete((1,))
        assert list(frozen) == [((1,), "a")]
        assert list(store.items()) == [((0,), "z")]

    def test_bulk_apply_merges(self, make_store):
        store = make_store()
        store.load_sorted([((0,), 1), ((2,), 1)])
        store.bulk_apply([((1,), 5), ((2,), 7)])
        assert list(store.items()) == [((0,), 1), ((1,), 5), ((2,), 7)]

    def test_persistence_roundtrip(self, tmp_path):
        store = OrderedTupleStore()
        store.put(("a", 1), 2)
        store.put(("b", 2), 3)
        path = str(tmp_path / "view.db")
        store.dump(path)
        loaded = OrderedTupleStore.load(path)
        assert list(loaded.items()) == list(store.items())


class TestMaterializedView:
    def test_materialize(self, fig2_document):
        view = MaterializedView.materialize(chain_pattern("a", "b"), fig2_document)
        assert len(view) == 2
        assert view.total_derivations() == 2

    def test_requires_ids_with_content(self, fig2_document):
        pattern = chain_pattern("a", "b", annotate="")
        pattern.node("b#1").store_cont = True
        with pytest.raises(ValueError):
            MaterializedView(pattern)

    def test_add_and_decrement(self, fig2_document):
        view = MaterializedView.materialize(chain_pattern("a", "b"), fig2_document)
        row = view.rows()[0]
        view.add(row, 2)
        assert view.count(row) == 3
        assert not view.decrement(row, 2)
        assert view.decrement(row, 1)  # now gone
        assert row not in view

    def test_decrement_missing_rejected(self, fig2_document):
        view = MaterializedView.materialize(chain_pattern("a", "b"), fig2_document)
        row = view.rows()[0]
        view.remove(row)
        with pytest.raises(KeyError):
            view.decrement(row)

    def test_overdecrement_rejected(self, fig2_document):
        view = MaterializedView.materialize(chain_pattern("a", "b"), fig2_document)
        row = view.rows()[0]
        with pytest.raises(ValueError):
            view.decrement(row, 5)

    def test_add_nonpositive_rejected(self, fig2_document):
        view = MaterializedView.materialize(chain_pattern("a", "b"), fig2_document)
        with pytest.raises(ValueError):
            view.add(view.rows()[0], 0)

    def test_replace_merges_counts(self, fig2_document):
        view = MaterializedView.materialize(chain_pattern("a", "b"), fig2_document)
        first, second = view.rows()
        view.replace(first, second)
        assert view.count(second) == 2
        assert first not in view

    def test_equals_fresh_evaluation(self, fig2_document):
        view = MaterializedView.materialize(chain_pattern("a", "b"), fig2_document)
        assert view.equals_fresh_evaluation(fig2_document)
        view.remove(view.rows()[0])
        assert not view.equals_fresh_evaluation(fig2_document)
        diff = view.diff_against_fresh(fig2_document)
        assert diff["wrong_or_missing"]
