"""PDDT / ET-DEL / PDMT: deletion propagation (Section 4)."""

import pytest

from repro.maintenance.engine import MaintenanceEngine
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.updates.language import DeleteUpdate
from repro.xmldom.parser import parse_document
from tests.conftest import chain_pattern, v2_pattern


def engine_with(doc_text, pattern, **engine_kwargs):
    doc = parse_document(doc_text)
    engine = MaintenanceEngine(doc, **engine_kwargs)
    registered = engine.register_view(pattern, "v")
    return doc, engine, registered


class TestDeletedTuples:
    def test_example_4_1(self):
        # View //a//b on Figure 11's document; delete //c//b removes the
        # (a1, a1.c1.b1) tuple.
        doc, engine, registered = engine_with(
            "<a><c><b>hi</b></c><f><b>yo</b></f></a>", chain_pattern("a", "b")
        )
        assert len(registered.view) == 2
        report = engine.apply_update(DeleteUpdate("//c//b"))
        assert report.report_for("v").tuples_removed == 1
        remaining = [str(row[1]) for row in registered.view.rows()]
        assert remaining == ["a1.f2.b1"]
        assert registered.view.equals_fresh_evaluation(doc)

    def test_example_4_5_full_scenario(self, fig12_document):
        # v2 = //a[//c]//b over Figure 12; delete //a/f/c leaves the
        # tuples numbered 1, 2 and 4 in the paper's table.
        engine = MaintenanceEngine(fig12_document)
        registered = engine.register_view(v2_pattern(), "v")
        assert len(registered.view) == 8  # the 8 tuples of Figure 12's table
        engine.apply_update(DeleteUpdate("/a/f/c"))
        rows = {tuple(str(i) for i in row) for row in registered.view.rows()}
        assert rows == {
            ("a1", "a1.c1", "a1.c1.b1"),
            ("a1", "a1.c1", "a1.c1.b2"),
            ("a1", "a1.c1", "a1.f2.b2"),
        }
        assert registered.view.equals_fresh_evaluation(fig12_document)

    def test_example_4_8_derivation_counts(self):
        # //a{ID}[//b] over Figure 11's document: count 2 -> 1 -> gone.
        a = PatternNode("a", axis="desc", store_id=True)
        a.add_child(PatternNode("b", axis="desc"))
        doc, engine, registered = engine_with(
            "<a><c><b>hi</b></c><f><b>yo</b></f></a>", Pattern(a)
        )
        row = registered.view.rows()[0]
        assert registered.view.count(row) == 2
        engine.apply_update(DeleteUpdate("//c//b"))
        assert registered.view.count(row) == 1
        assert registered.view.equals_fresh_evaluation(doc)
        engine.apply_update(DeleteUpdate("//f//b"))
        assert len(registered.view) == 0
        assert registered.view.equals_fresh_evaluation(doc)

    def test_delete_everything(self, fig12_document):
        engine = MaintenanceEngine(fig12_document)
        registered = engine.register_view(v2_pattern(), "v")
        engine.apply_update(DeleteUpdate("/a"))
        assert len(registered.view) == 0
        assert registered.view.equals_fresh_evaluation(fig12_document)

    def test_unaffected_delete(self, fig12_document):
        engine = MaintenanceEngine(fig12_document)
        registered = engine.register_view(chain_pattern("c", "b"), "v")
        before = registered.view.content()
        report = engine.apply_update(DeleteUpdate("//q"))
        assert report.pul_size == 0
        assert registered.view.content() == before

    def test_exact_counts_with_even_terms_developed(self, fig12_document):
        # prune_even_terms=False develops the add-back terms; the
        # binding-set evaluation must still decrement exactly once.
        engine = MaintenanceEngine(fig12_document, prune_even_terms=False)
        registered = engine.register_view(v2_pattern(), "v")
        engine.apply_update(DeleteUpdate("//f//b"))
        assert registered.view.equals_fresh_evaluation(fig12_document)

    def test_delete_with_id_pruning_disabled(self, fig12_document):
        engine = MaintenanceEngine(fig12_document, use_id_pruning=False)
        registered = engine.register_view(v2_pattern(), "v")
        engine.apply_update(DeleteUpdate("//f"))
        assert registered.view.equals_fresh_evaluation(fig12_document)


class TestModifiedTuples:
    def test_pdmt_refreshes_ancestor_content(self):
        pattern = chain_pattern("a", annotate="ID")
        pattern.node("a#1").store_val = True
        pattern.node("a#1").store_cont = True
        doc, engine, registered = engine_with("<r><a>x<t>y</t></a></r>", pattern)
        ((row, _),) = registered.view.content()
        assert row[1] == "xy"
        report = engine.apply_update(DeleteUpdate("//t"))
        assert report.report_for("v").tuples_modified == 1
        ((row, _),) = registered.view.content()
        assert row[1] == "x"
        assert "<t>" not in row[2]
        assert registered.view.equals_fresh_evaluation(doc)

    def test_surviving_tuples_never_store_deleted_ids(self, fig12_document):
        engine = MaintenanceEngine(fig12_document)
        registered = engine.register_view(v2_pattern(), "v")
        f = fig12_document.nodes_with_label("f")[0]
        doomed = {n.id for n in f.self_and_descendants()}
        engine.apply_update(DeleteUpdate("//f"))
        for row in registered.view.rows():
            assert not any(cell in doomed for cell in row)

    def test_delete_flipping_predicate_recomputes(self):
        # Removing a text-bearing child may make a σ node newly satisfy
        # its predicate -- detected, recomputed, flagged.
        pattern = chain_pattern("a", "b")
        pattern.node("a#1").value_pred = "x"
        doc, engine, registered = engine_with("<r><a>x<t>y</t><b/></a></r>", pattern)
        assert len(registered.view) == 0
        report = engine.apply_update(DeleteUpdate("//t"))
        assert report.report_for("v").predicate_fallback
        assert len(registered.view) == 1
        assert registered.view.equals_fresh_evaluation(doc)
