"""Compact Dynamic Dewey IDs: the four properties of Section 2.1."""

import pytest
from hypothesis import given, strategies as st

from repro.xmldom.dewey import (
    DeweyID,
    ordinal_after,
    ordinal_before,
    ordinal_between,
    ordinal_compare,
    ordinal_initial,
)


def make_id(*steps):
    return DeweyID(tuple((label, ordinal) for label, ordinal in steps))


class TestOrdinals:
    def test_initial_positions_are_ordered(self):
        assert ordinal_compare(ordinal_initial(1), ordinal_initial(2)) == -1

    def test_initial_rejects_zero(self):
        with pytest.raises(ValueError):
            ordinal_initial(0)

    def test_before_and_after(self):
        assert ordinal_compare(ordinal_before((5,)), (5,)) == -1
        assert ordinal_compare(ordinal_after((5,)), (5,)) == 1

    def test_between_adjacent_integers(self):
        middle = ordinal_between((1,), (2,))
        assert ordinal_compare((1,), middle) == -1
        assert ordinal_compare(middle, (2,)) == -1

    def test_between_gap(self):
        assert ordinal_between((1,), (5,)) == (2,)

    def test_between_requires_order(self):
        with pytest.raises(ValueError):
            ordinal_between((2,), (2,))
        with pytest.raises(ValueError):
            ordinal_between((3,), (2,))

    def test_padding_equivalence(self):
        assert ordinal_compare((1,), (1, 0)) == 0
        assert ordinal_compare((1, 0, 1), (1,)) == 1

    def test_repeated_between_never_relabels(self):
        # Squeeze 100 ordinals into the (1, 2) gap: no existing ordinal
        # changes, the "no relabeling" property of the scheme.
        low, high = (1,), (2,)
        produced = []
        left = low
        for _ in range(100):
            left = ordinal_between(left, high)
            produced.append(left)
        for a, b in zip(produced, produced[1:]):
            assert ordinal_compare(a, b) == -1

    @given(
        st.lists(st.integers(-5, 5), min_size=1, max_size=4),
        st.lists(st.integers(-5, 5), min_size=1, max_size=4),
    )
    def test_between_property(self, a, b):
        a, b = tuple(a), tuple(b)
        cmp = ordinal_compare(a, b)
        if cmp == 0:
            return
        low, high = (a, b) if cmp < 0 else (b, a)
        middle = ordinal_between(low, high)
        assert ordinal_compare(low, middle) == -1
        assert ordinal_compare(middle, high) == -1


class TestStructure:
    def test_label_and_depth(self):
        node = make_id(("a", (1,)), ("b", (2,)))
        assert node.label == "b"
        assert node.depth == 2

    def test_parent_and_ancestors(self):
        a = make_id(("a", (1,)))
        ab = a.child("b", (1,))
        abc = ab.child("c", (3,))
        assert abc.parent() == ab
        assert a.parent() is None
        assert list(abc.ancestor_ids()) == [a, ab]
        assert abc.ancestor_labels() == ("a", "b")
        assert abc.label_path() == ("a", "b", "c")

    def test_parent_and_ancestor_predicates(self):
        a = make_id(("a", (1,)))
        ab = a.child("b", (1,))
        abc = ab.child("c", (1,))
        assert a.is_parent_of(ab)
        assert not a.is_parent_of(abc)
        assert a.is_ancestor_of(ab) and a.is_ancestor_of(abc)
        assert not a.is_ancestor_of(a)
        assert a.is_ancestor_or_self(a)
        assert abc.has_ancestor_labeled("a")
        assert not abc.has_ancestor_labeled("c")

    def test_document_order_ancestor_first(self):
        a = make_id(("a", (1,)))
        ab = a.child("b", (1,))
        ab2 = a.child("b", (2,))
        assert a < ab < ab2
        assert sorted([ab2, a, ab]) == [a, ab, ab2]

    def test_sibling_order_by_dynamic_ordinal(self):
        a = make_id(("a", (1,)))
        first = a.child("x", (1,))
        squeezed = a.child("x", ordinal_between((1,), (2,)))
        second = a.child("x", (2,))
        assert first < squeezed < second

    def test_equality_and_hash(self):
        x = make_id(("a", (1,)), ("b", (1, 0)))
        y = make_id(("a", (1,)), ("b", (1,)))
        assert x == y  # normalization strips trailing zeros
        assert hash(x) == hash(y)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            DeweyID(())


class TestEncoding:
    def test_roundtrip(self):
        node = make_id(("site", (1,)), ("person", (42,)), ("name", (1, 7)))
        codes = {}
        blob = node.encode(codes)
        names = [label for label, _ in sorted(codes.items(), key=lambda kv: kv[1])]
        assert DeweyID.decode(blob, names) == node

    def test_compactness(self):
        node = make_id(("a", (1,)), ("b", (2,)), ("c", (3,)))
        codes = {}
        assert len(node.encode(codes)) <= 12

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "person"]),
                st.lists(st.integers(-100, 100), min_size=1, max_size=3),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_roundtrip_property(self, steps):
        node = DeweyID([(label, tuple(ordinal)) for label, ordinal in steps])
        codes = {}
        blob = node.encode(codes)
        names = [label for label, _ in sorted(codes.items(), key=lambda kv: kv[1])]
        assert DeweyID.decode(blob, names) == node

    def test_str_rendering(self):
        node = make_id(("a", (1,)), ("c", (1,)), ("b", (1,)))
        assert str(node) == "a1.c1.b1"


class TestSortKeyEquivalence:
    """The precomputed _key must order exactly like the reference
    _compare; its derivation rests on the generator invariant that
    ordinals never carry a negative component past index 0."""

    @given(st.data())
    def test_key_matches_reference_compare(self, data):
        def random_ordinal(draw, depth):
            # Ordinals as the generators produce them: start from an
            # initial/before/after seed, then squeeze with between.
            seed = draw(st.integers(-4, 6))
            ordinal = (seed,)
            for _ in range(draw(st.integers(0, depth))):
                ordinal = ordinal_between(ordinal, ordinal_after(ordinal))
            return ordinal

        def random_id(draw):
            steps = []
            for _ in range(draw(st.integers(1, 4))):
                label = draw(st.sampled_from(["a", "b", "c"]))
                steps.append((label, random_ordinal(draw, 2)))
            return DeweyID(steps)

        a = random_id(data.draw)
        b = random_id(data.draw)
        reference = a._compare(b)
        assert (a < b) == (reference < 0)
        assert (a == b) == (reference == 0)
        assert (a > b) == (reference > 0)

    def test_generators_never_negative_past_first_component(self):
        frontier = [(-2,), (0,), (1,), ordinal_initial(3)]
        for _ in range(4):
            produced = []
            for ordinal in frontier:
                produced.append(ordinal_after(ordinal))
                produced.append(ordinal_before(ordinal))
                produced.append(ordinal_between(ordinal, ordinal_after(ordinal)))
                produced.append(
                    ordinal_between(ordinal_before(ordinal), ordinal)
                )
            for ordinal in produced:
                assert all(part >= 0 for part in ordinal[1:]), ordinal
            frontier = produced[:8]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.lists(st.integers(-3, 3), min_size=1, max_size=3),
            ),
            min_size=1,
            max_size=3,
        ),
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.lists(st.integers(-3, 3), min_size=1, max_size=3),
            ),
            min_size=1,
            max_size=3,
        ),
    )
    def test_exotic_ordinals_fall_back_to_padded_semantics(self, left, right):
        # Direct construction / decode() accept ordinals with negative
        # components past index 0; ordering must still match _compare.
        a = DeweyID([(label, tuple(ordinal)) for label, ordinal in left])
        b = DeweyID([(label, tuple(ordinal)) for label, ordinal in right])
        reference = a._compare(b)
        assert (a < b) == (reference < 0), (a, b)
        assert (a > b) == (reference > 0), (a, b)
        assert (a <= b) == (reference <= 0), (a, b)
        assert (a >= b) == (reference >= 0), (a, b)

    def test_prefix_of_negative_tail_orders_after_it(self):
        a = make_id(("a", (1,)))
        b = make_id(("a", (1, -1)))
        # Zero-padding: (1,) reads as (1, 0, ...) which exceeds (1, -1).
        assert a._compare(b) > 0
        assert a > b and b < a and sorted([a, b]) == [b, a]
