"""Edge cases and failure-injection for the maintenance engine."""

import pytest

from repro.maintenance.engine import MaintenanceEngine
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.updates.language import DeleteUpdate, InsertUpdate, parse_update
from repro.xmldom.parser import parse_document
from tests.conftest import chain_pattern


class TestAttributeViews:
    def test_view_over_attributes(self):
        doc = parse_document('<r><p id="1"/><p id="2"/><q id="3"/></r>')
        p = PatternNode("p", axis="desc", store_id=True)
        attr = p.add_child(PatternNode("@id", axis="child", store_id=True, store_val=True))
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(Pattern(p), "v")
        assert [row[2] for row in registered.view.rows()] == ["1", "2"]
        engine.apply_update(DeleteUpdate("//p[@id = '1']"))
        assert registered.view.equals_fresh_evaluation(doc)
        assert len(registered.view) == 1

    def test_attribute_insert_propagates(self):
        # Inserted fragments may carry attributes matched by views.
        doc = parse_document("<r><p/></r>")
        p = PatternNode("p", axis="desc", store_id=True)
        p.add_child(PatternNode("q", axis="desc", store_id=True)).add_child(
            PatternNode("@k", axis="child", store_id=True, store_val=True)
        )
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(Pattern(p), "v")
        engine.apply_update(InsertUpdate("//p", '<q k="7"/>'))
        assert registered.view.equals_fresh_evaluation(doc)
        assert len(registered.view) == 1


class TestWildcardViews:
    def test_wildcard_internal_node(self):
        doc = parse_document("<r><x><b>1</b></x><y><b>2</b></y></r>")
        star = PatternNode("*", axis="desc", store_id=True)
        star.add_child(PatternNode("b", axis="child", store_id=True))
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(Pattern(star), "v")
        assert len(registered.view) == 2
        engine.apply_update(InsertUpdate("//y", "<b>3</b>"))
        assert registered.view.equals_fresh_evaluation(doc)
        engine.apply_update(DeleteUpdate("//x"))
        assert registered.view.equals_fresh_evaluation(doc)


class TestRepeatedStatements:
    def test_idempotent_delete(self, fig12_document):
        engine = MaintenanceEngine(fig12_document)
        registered = engine.register_view(chain_pattern("a", "b"), "v")
        engine.apply_update(DeleteUpdate("//f"))
        report = engine.apply_update(DeleteUpdate("//f"))
        assert report.pul_size == 0
        assert registered.view.equals_fresh_evaluation(fig12_document)

    def test_many_small_updates_stay_consistent(self):
        doc = parse_document("<r><a/></r>")
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(chain_pattern("a", "b", "c"), "v")
        for round_number in range(6):
            engine.apply_update(InsertUpdate("//a", "<b><c/></b>"))
            assert registered.view.equals_fresh_evaluation(doc), round_number
        # Now unwind: each round strips the c leaves, then the b layer.
        for round_number, path in enumerate(("//b//c", "//a/b", "//b")):
            engine.apply_update(DeleteUpdate(path))
            assert registered.view.equals_fresh_evaluation(doc), round_number

    def test_insert_then_delete_inserted(self):
        doc = parse_document("<r><a/></r>")
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(chain_pattern("a", "b"), "v")
        engine.apply_update(InsertUpdate("//a", "<b/>"))
        assert len(registered.view) == 1
        engine.apply_update(DeleteUpdate("//a/b"))
        assert len(registered.view) == 0
        assert registered.view.equals_fresh_evaluation(doc)
        # And again: fresh IDs, no tombstone interference.
        engine.apply_update(InsertUpdate("//a", "<b/>"))
        assert len(registered.view) == 1
        assert registered.view.equals_fresh_evaluation(doc)


class TestDeepAndWide:
    def test_deep_chain_pattern(self):
        labels = ["a", "b", "c", "d", "e"]
        text = "".join("<%s>" % l for l in labels) + "x" + "".join(
            "</%s>" % l for l in reversed(labels)
        )
        doc = parse_document("<r>%s</r>" % text)
        engine = MaintenanceEngine(doc)
        pattern = chain_pattern(*labels)
        registered = engine.register_view(pattern, "v")
        assert len(registered.view) == 1
        # Terms for a 5-chain: 5 Δ-suffixes developed.
        report = engine.apply_update(
            InsertUpdate("//d", "<e/>")
        )
        assert report.report_for("v").terms_developed == 5
        assert registered.view.equals_fresh_evaluation(doc)

    def test_wide_branching_pattern(self):
        root = PatternNode("p", axis="desc", store_id=True)
        for label in ("x", "y", "z"):
            root.add_child(PatternNode(label, axis="child", store_id=True))
        doc = parse_document("<r><p><x/><y/><z/></p><p><x/><y/></p></r>")
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(Pattern(root), "v")
        assert len(registered.view) == 1
        engine.apply_update(InsertUpdate("//p", "<z/>"))
        assert registered.view.equals_fresh_evaluation(doc)
        assert len(registered.view) == 3  # 1 old + (1 new z for p1) + p2 completes


class TestStatementTextForms:
    @pytest.mark.parametrize(
        "text",
        [
            "insert <b/> into //a",
            "for $x in //a insert <b/>",
            "for $x in //a insert <b/> into $x",
            'let $c := doc("d.xml") for $x in $c//a insert <b/>',
        ],
    )
    def test_equivalent_insert_phrasings(self, text):
        doc = parse_document("<r><a/><a/></r>")
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(chain_pattern("a", "b"), "v")
        engine.apply_update(parse_update(text))
        assert len(registered.view) == 2
        assert registered.view.equals_fresh_evaluation(doc)
