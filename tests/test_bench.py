"""The experiment harness: drivers produce sane, verified rows."""

import pytest

from repro.bench.experiments import (
    ANNOTATION_VARIANTS,
    PATH_DEPTH_TARGETS,
    run_annotation_variants,
    run_breakdown_matrix,
    run_path_depth,
    run_reduction_rule,
    run_scalability,
    run_snowcaps_vs_leaves,
    run_vs_full,
    run_vs_ivma,
)
from repro.bench.harness import (
    BreakdownRow,
    format_rows,
    fresh_engine,
    run_maintenance_pair,
    statement_for,
    update_profile_of,
)
from repro.maintenance.engine import PHASES


class TestHarness:
    def test_fresh_engine_registers_views(self):
        engine = fresh_engine(1, ("Q1", "Q2"))
        assert set(engine.views) == {"Q1", "Q2"}

    def test_statement_for(self):
        assert statement_for("X1_L", "insert").kind == "insert"
        assert statement_for("X1_L", "delete").kind == "delete"
        with pytest.raises(ValueError):
            statement_for("X1_L", "upsert")

    def test_update_profile_of(self):
        insert = statement_for("X1_L", "insert")
        assert "name" in update_profile_of(insert)
        delete = statement_for("X1_L", "delete")
        assert update_profile_of(delete) == ["person"]

    def test_run_pair_verifies_and_times(self):
        row = run_maintenance_pair(1, "Q1", "X1_L", "insert")
        assert isinstance(row, BreakdownRow)
        assert row.total_seconds > 0
        assert set(row.phase_seconds) == set(PHASES)
        assert row.counters["targets"] > 0
        assert row.as_dict()["view"] == "Q1"

    def test_format_rows(self):
        row = run_maintenance_pair(1, "Q1", "X1_L", "delete")
        table = format_rows([row], title="demo")
        assert "demo" in table and "Q1" in table and "total_ms" in table


class TestDrivers:
    def test_breakdown_matrix_shape(self):
        rows = run_breakdown_matrix(1, "insert", views=("Q1",))
        assert len(rows) == 5
        assert all(row.kind == "insert" for row in rows)

    def test_path_depth_rows(self):
        rows = run_path_depth(1)
        assert [row["path"] for row in rows] == list(PATH_DEPTH_TARGETS)
        # Deeper target paths doom fewer-or-equal nodes.
        removed = [row["derivations_removed"] for row in rows]
        assert removed[0] >= removed[-1]

    def test_annotation_variants(self):
        rows = run_annotation_variants(1)
        assert [row["variant"] for row in rows] == list(ANNOTATION_VARIANTS)

    def test_scalability_rows(self):
        rows = run_scalability(scales=(1, 2), kinds=("insert",))
        assert len(rows) == 2
        assert rows[1]["doc_bytes"] > rows[0]["doc_bytes"]

    def test_vs_full_reports_speedup(self):
        rows = run_vs_full(1, "insert", views=("Q1",))
        assert len(rows) == 5
        assert all("speedup" in row for row in rows)

    def test_vs_ivma_counts_calls(self):
        (row,) = run_vs_ivma(1, updates=["X1_L"])
        assert row["ivma_calls"] >= 5 * 25  # 5 nodes x #persons
        assert row["ivma_exec_s"] > row["bulk_exec_s"]

    def test_snowcaps_vs_leaves_rows(self):
        rows = run_snowcaps_vs_leaves("Q4", scales=(1,))
        strategies = {row["strategy"] for row in rows}
        assert strategies == {"snowcaps", "leaves"}

    def test_reduction_rule_rows(self):
        rows = run_reduction_rule("I5", scale=1, percents=(50,), repeats=1)
        (row,) = rows
        assert row["ops_unoptimized"] > row["ops_optimized"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            run_reduction_rule("O9", scale=1, percents=(50,), repeats=1)
