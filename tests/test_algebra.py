"""The logical algebra A: σ, π, ×, δ, sort and predicates (Section 2.2)."""

import pytest

from repro.algebra.operators import (
    And,
    ColumnComparison,
    ValueEquals,
    cartesian_product,
    duplicate_eliminate,
    project,
    select,
    sort_rows,
)
from repro.algebra.relation import Relation
from repro.xmldom.parser import parse_document


@pytest.fixture
def doc():
    return parse_document("<a><b>x</b><b>y</b><c><b>x</b></c></a>")


def node_relation(doc, label, column):
    return Relation.single_column(column, doc.nodes_with_label(label))


class TestRelation:
    def test_schema_width_checked(self):
        with pytest.raises(ValueError):
            Relation(("x", "y"), [(1,)])

    def test_column_access(self):
        rel = Relation(("x", "y"), [(1, 2), (3, 4)])
        assert rel.column("y") == [2, 4]
        with pytest.raises(KeyError):
            rel.column_index("z")

    def test_extend_requires_same_schema(self):
        rel = Relation(("x",), [(1,)])
        with pytest.raises(ValueError):
            rel.extend(Relation(("y",), [(2,)]))
        rel.extend(Relation(("x",), [(2,)]))
        assert len(rel) == 2

    def test_reordered(self):
        rel = Relation(("x", "y"), [(1, 2)])
        assert rel.reordered(("y", "x")).rows == [(2, 1)]


class TestSelect:
    def test_value_equals_on_nodes(self, doc):
        rel = node_relation(doc, "b", "b")
        out = select(rel, ValueEquals("b", "x"))
        assert len(out) == 2

    def test_parent_comparison(self, doc):
        pairs = cartesian_product(
            node_relation(doc, "a", "a"), node_relation(doc, "b", "b")
        )
        out = select(pairs, ColumnComparison("a", "parent", "b"))
        assert len(out) == 2  # the two direct b children of a

    def test_ancestor_comparison(self, doc):
        pairs = cartesian_product(
            node_relation(doc, "a", "a"), node_relation(doc, "b", "b")
        )
        out = select(pairs, ColumnComparison("a", "ancestor", "b"))
        assert len(out) == 3  # all three b nodes

    def test_and_conjunction(self, doc):
        pairs = cartesian_product(
            node_relation(doc, "a", "a"), node_relation(doc, "b", "b")
        )
        out = select(
            pairs,
            And([ColumnComparison("a", "ancestor", "b"), ValueEquals("b", "x")]),
        )
        assert len(out) == 2

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ColumnComparison("a", "child-of", "b")


class TestProjectProductDelta:
    def test_project_keeps_duplicates(self):
        rel = Relation(("x", "y"), [(1, 2), (1, 3)])
        out = project(rel, ("x",))
        assert out.rows == [(1,), (1,)]

    def test_product_schema_disjointness(self):
        rel = Relation(("x",), [(1,)])
        with pytest.raises(ValueError):
            cartesian_product(rel, rel)

    def test_product_cardinality(self):
        left = Relation(("x",), [(1,), (2,)])
        right = Relation(("y",), [(3,), (4,), (5,)])
        assert len(cartesian_product(left, right)) == 6

    def test_duplicate_eliminate_counts(self):
        rel = Relation(("x",), [(1,), (2,), (1,), (1,)])
        assert duplicate_eliminate(rel) == [((1,), 3), ((2,), 1)]

    def test_duplicate_eliminate_preserves_first_seen_order(self):
        rel = Relation(("x",), [(9,), (1,), (9,)])
        assert [row for row, _ in duplicate_eliminate(rel)] == [(9,), (1,)]


class TestSort:
    def test_sort_by_ids_is_document_order(self, doc):
        rel = node_relation(doc, "b", "b")
        shuffled = Relation(rel.schema, list(reversed(rel.rows)))
        assert sort_rows(shuffled).rows == rel.rows

    def test_sort_by_chosen_columns(self):
        rel = Relation(("x", "y"), [(2, "a"), (1, "b")])
        assert sort_rows(rel, ("y",)).rows == [(2, "a"), (1, "b")]
        assert sort_rows(rel, ("x",)).rows == [(1, "b"), (2, "a")]
