"""``repro.obs``: registry, tracer, fragments, exporters, wiring.

Covers the metrics/tracing subsystem end to end: instrument semantics
(counters, high-water gauges, fixed-bucket histograms), span nesting
and thread-local stacks, the fork-boundary fragment round-trip
(property-tested: any span tree survives pickling and any shipment
order), the JSONL/Prometheus exporters and CLI, and the load-bearing
engine contracts -- report totals equal trace sums by construction,
telemetry never perturbs extents, queue and session telemetry record
what actually happened.
"""

from __future__ import annotations

import io
import json
import pickle
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.maintenance.queue import ApplyQueue
from repro.obs import (
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Span,
    SpanFragment,
    Tracer,
    fragments_to_spans,
    spans_to_fragments,
)
from repro.obs.cli import main as obs_cli
from repro.obs.export import (
    PROPAGATION_SPAN_NAMES,
    metric_records,
    propagation_from_records,
    prometheus_text,
    read_jsonl,
    render_summary,
    span_records,
    summarize,
    write_jsonl,
)
from repro.updates.language import InsertUpdate, UpdateBatch
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document

VIEWS = ("Q1", "Q3")


def _stream(count, seed=5, insert_ratio=1.0):
    return statement_stream(
        generate_document(scale=1), count, seed=seed, insert_ratio=insert_ratio
    )


def _engine(obs=None, views=VIEWS):
    options = {} if obs is None else {"obs": obs}
    engine = BatchEngine(generate_document(scale=1), **options)
    registered = {name: engine.register_view(view_pattern(name), name) for name in views}
    return engine, registered


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("kind",))
        counter.inc(labels=("a",))
        counter.inc(2.0, labels=("a",))
        counter.inc(labels=("b",))
        assert counter.value(("a",)) == 3.0
        assert counter.value(("b",)) == 1.0
        assert counter.samples() == [(("a",), 3.0), (("b",), 1.0)]
        with pytest.raises(ValueError):
            counter.inc(-1.0, labels=("a",))
        with pytest.raises(ValueError):
            counter.inc(labels=())  # wrong arity

    def test_gauge_tracks_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(1.0)
        gauge.add(0.5)
        assert gauge.value() == 1.5
        assert gauge.max_value() == 7.0

    def test_histogram_quantiles_and_counts(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(6.1)
        assert 0.0 < histogram.quantile(0.5) <= 1.0
        assert histogram.quantile(1.0) <= 10.0
        assert histogram.quantile(0.0) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_registration_idempotent_and_conflict_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "first")
        assert registry.counter("x_total", "second") is counter
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("kind",))

    def test_collect_sorted_and_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "bees").inc()
        registry.gauge("a_depth", "depth").set(2)
        registry.histogram("c_seconds", "secs", buckets=(0.1, 1.0)).observe(0.05)
        assert [i.name for i in registry.collect()] == ["a_depth", "b_total", "c_seconds"]
        text = prometheus_text(registry)
        assert "# TYPE a_depth gauge" in text
        assert "b_total 1" in text
        assert 'c_seconds_bucket{le="0.1"} 1' in text
        assert 'c_seconds_bucket{le="+Inf"} 1' in text
        assert "c_seconds_count 1" in text

    def test_null_registry_is_inert(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc(5.0)
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(9.0)
        histogram = NULL_REGISTRY.histogram("h")
        histogram.observe(1.0)
        assert counter.value() == 0.0
        assert gauge.max_value() == 0.0
        assert histogram.count() == 0
        assert NULL_REGISTRY.collect() == []
        assert not NULL_REGISTRY.enabled


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_drain(self):
        tracer = Tracer()
        with tracer.span("batch", statements=2) as batch:
            tracer.record("phase", 0.25, phase="execute_update", view="Q1")
            with tracer.span("shard_round", mode="serial"):
                tracer.record("unit", 0.1, view="Q1", kind="insert", shard=0)
        roots = tracer.drain()
        assert [span.name for span in roots] == ["batch"]
        assert roots[0] is batch
        assert [child.name for child in roots[0].children] == ["phase", "shard_round"]
        assert roots[0].children[1].children[0].attrs["shard"] == 0
        assert roots[0].seconds >= 0.0
        assert tracer.drain() == []

    def test_name_attr_does_not_collide_with_span_name(self):
        tracer = Tracer()
        with tracer.span("statement", name="ins-1"):
            pass
        (root,) = tracer.drain()
        assert root.name == "statement"
        assert root.attrs["name"] == "ins-1"

    def test_thread_local_stacks(self):
        tracer = Tracer()
        seen = []

        def worker():
            with tracer.span("batch", who="worker"):
                tracer.record("phase", 0.1, phase="p", view="V")
            seen.append(True)

        with tracer.span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            # the worker's root must NOT have nested under "outer"
        roots = tracer.drain()
        names = sorted(span.name for span in roots)
        assert names == ["batch", "outer"]
        outer = next(span for span in roots if span.name == "outer")
        assert outer.children == []

    def test_adopt_grafts_children(self):
        tracer = Tracer()
        parent = tracer.record("shard_round", 1.0, mode="fork", units=2)
        tracer.adopt(parent, [Span("unit", {"shard": 0}, seconds=0.4)])
        assert [child.name for child in parent.children] == ["unit"]

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("batch") as span:
            inner = NULL_TRACER.record("phase", 1.0, phase="p", view="V")
        assert span is inner  # the shared husk
        assert NULL_TRACER.drain() == []
        assert not NULL_TRACER.enabled
        assert NULL_OBS.flush() == []
        assert not NULL_OBS.enabled


# -- fragments ----------------------------------------------------------------


def _span_trees() -> st.SearchStrategy:
    attrs = st.dictionaries(
        st.sampled_from(("view", "kind", "shard", "phase", "worker")),
        st.one_of(st.text(max_size=8), st.integers(-5, 5)),
        max_size=3,
    )
    leaf = st.builds(
        Span,
        st.sampled_from(("phase", "unit", "net_effects")),
        attrs,
        st.floats(0, 10, allow_nan=False),
        st.floats(0, 10, allow_nan=False),
    )

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        def attach(span, kids):
            span.children = list(kids)
            return span

        return st.builds(
            attach,
            st.builds(
                Span,
                st.sampled_from(("batch", "shard_round", "session_batch")),
                attrs,
                st.floats(0, 10, allow_nan=False),
                st.floats(0, 10, allow_nan=False),
            ),
            st.lists(children, max_size=3),
        )

    return st.recursive(leaf, extend, max_leaves=8)


class TestFragments:
    @settings(max_examples=60, deadline=None)
    @given(
        roots=st.lists(_span_trees(), min_size=1, max_size=3),
        data=st.data(),
    )
    def test_fragments_survive_pickle_and_any_order(self, roots, data):
        fragments = spans_to_fragments(roots)
        shipped = pickle.loads(pickle.dumps(fragments))
        assert shipped == fragments
        shuffled = data.draw(st.permutations(shipped))
        rebuilt = fragments_to_spans(shuffled)
        assert [span.structure() for span in rebuilt] == [
            span.structure() for span in roots
        ]
        assert [span.seconds for span in rebuilt] == [span.seconds for span in roots]

    def test_start_offsets_are_root_relative(self):
        root = Span("batch", start=100.0, seconds=2.0)
        child = Span("phase", {"phase": "p"}, start=100.5, seconds=0.5)
        root.children.append(child)
        fragments = spans_to_fragments([root])
        by_name = {fragment.name: fragment for fragment in fragments}
        assert by_name["batch"].start_offset == 0.0
        assert by_name["phase"].start_offset == pytest.approx(0.5)
        (rebuilt,) = fragments_to_spans(fragments)
        assert rebuilt.children[0].start == pytest.approx(0.5)

    def test_torn_shipment_fails_loudly(self):
        orphan = SpanFragment((0, 1), "unit", {}, 0.0, 1.0)
        with pytest.raises(ValueError, match="no parent"):
            fragments_to_spans([orphan])


# -- exporters + CLI ----------------------------------------------------------


class TestExport:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("batch", statements=1):
            tracer.record("phase", 0.002, phase="execute_update", view="Q1")
            tracer.record("phase", 0.001, phase="find_target_nodes", view="Q1")
            tracer.record("net_effects", 0.003)
            parent = tracer.record("shard_round", 0.004, mode="fork", units=1)
            tracer.adopt(parent, [Span("unit", {"worker": 1}, seconds=0.004)])
        registry = MetricsRegistry()
        registry.counter("repro_batches_total").inc()
        return tracer.drain(), registry

    def test_jsonl_roundtrip_and_propagation(self, tmp_path):
        spans, registry = self._sample()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, spans, registry)
        records = read_jsonl(path)
        assert records[0]["type"] == "meta"
        span_rows = [row for row in records if row["type"] == "span"]
        parents = {row["id"]: row["parent"] for row in span_rows}
        roots = [row for row in span_rows if row["parent"] is None]
        assert len(roots) == 1
        assert all(
            parent is None or parent in parents for parent in parents.values()
        )
        # find_target_nodes phases are excluded, like the reports do
        assert propagation_from_records(records) == pytest.approx(0.002 + 0.003 + 0.004)
        metric_rows = [row for row in records if row["type"] == "metric"]
        assert any(row["name"] == "repro_batches_total" for row in metric_rows)
        # append mode accretes instead of clobbering
        write_jsonl(path, spans, append=True)
        assert len(read_jsonl(path)) > len(records)

    def test_summarize_buckets_views_phases_workers(self):
        spans, _registry = self._sample()
        summary = summarize(span_records(spans))
        assert summary["views"]["Q1"]["execute_update"]["spans"] == 1
        assert summary["phases"]["find_target_nodes"]["seconds"] == pytest.approx(0.001)
        assert summary["workers"]["1"]["seconds"] == pytest.approx(0.004)
        text = render_summary(span_records(spans))
        assert "execute_update" in text and "Q1" in text

    def test_metric_records_include_gauge_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_queue_depth")
        gauge.set(9.0)
        gauge.set(2.0)
        (row,) = metric_records(registry)
        assert row["value"] == 2.0 and row["max"] == 9.0

    def test_cli_formats_and_errors(self, tmp_path, capsys):
        spans, registry = self._sample()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, spans, registry)
        assert obs_cli([path]) == 0
        assert "propagation" in capsys.readouterr().out
        assert obs_cli([path, "--format=json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["roots"] == 1
        assert obs_cli([path, "--format=markdown"]) == 0
        assert "| view | phase |" in capsys.readouterr().out
        assert obs_cli([str(tmp_path / "missing.jsonl")]) == 2


# -- single-timing-source contract --------------------------------------------


class TestReportTraceIdentity:
    def test_batch_report_equals_summed_phase_spans(self):
        obs = Observability()
        engine, registered = _engine(obs=obs)
        report = engine.apply(UpdateBatch(_stream(8)))
        records = span_records(obs.flush())
        assert propagation_from_records(records) == pytest.approx(
            report.propagation_seconds(), rel=1e-9, abs=1e-12
        )
        # the identity is structural: only the declared span kinds sum
        names = {row["name"] for row in records}
        assert set(PROPAGATION_SPAN_NAMES) & names

    def test_statement_reports_equal_phase_spans(self):
        obs = Observability()
        engine = MaintenanceEngine(generate_document(scale=1), obs=obs)
        engine.register_view(view_pattern("Q1"), "Q1")
        reports = [engine.apply_update(statement) for statement in _stream(4)]
        traced = propagation_from_records(span_records(obs.flush()))
        assert traced == pytest.approx(
            sum(report.propagation_seconds() for report in reports),
            rel=1e-9,
            abs=1e-12,
        )

    def test_sharded_run_identical_extents_and_stitched_spans(self):
        stream = _stream(8, seed=9)
        serial_engine, serial_views = _engine(obs=Observability())
        serial_engine.apply(UpdateBatch(stream))
        obs = Observability()
        shard_engine, shard_views = _engine(obs=obs)
        report = shard_engine.apply(UpdateBatch(stream), workers=2)
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == shard_views[name].view.content()
            )
            assert shard_views[name].view.equals_fresh_evaluation(
                shard_engine.document
            )
        records = span_records(obs.flush())
        assert propagation_from_records(records) == pytest.approx(
            report.propagation_seconds(), rel=1e-9, abs=1e-12
        )
        round_rows = [row for row in records if row["name"] == "shard_round"]
        if report.shard_rounds:  # pooled rounds actually ran
            assert round_rows
            round_ids = {row["id"] for row in round_rows}
            assert any(
                row["name"] == "unit" and row["parent"] in round_ids
                for row in records
            )

    def test_disabled_engine_records_nothing(self):
        engine, _registered = _engine()  # default NULL_OBS
        engine.apply(UpdateBatch(_stream(3)))
        assert engine.obs is NULL_OBS
        assert engine.obs.flush() == []


# -- session telemetry --------------------------------------------------------


class TestSessionTelemetry:
    def test_session_batch_span_tree_and_balance_metrics(self):
        from repro.sharding.session import ShardSession

        obs = Observability()
        engine = MaintenanceEngine(generate_document(scale=1), obs=obs)
        views = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
        with ShardSession(engine, workers=2) as session:
            session.apply_batch(_stream(6, seed=7))
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(engine.document)
        roots = obs.flush()
        session_roots = [span for span in roots if span.name == "session_batch"]
        assert len(session_roots) == 1
        (root,) = session_roots
        child_names = [child.name for child in root.children]
        assert child_names.count("broadcast") == 1
        assert child_names.count("owner_apply") == 1
        assert child_names.count("replica_apply") == 2
        assert child_names.count("delta_replay") == 2
        replicas = [child for child in root.children if child.name == "replica_apply"]
        assert sorted(span.attrs["worker"] for span in replicas) == [0, 1]
        # worker-side trees shipped home as fragments and stitched in
        for replica in replicas:
            assert any(grand.name == "batch" for grand in replica.children)
        makespan = obs.metrics.get("repro_session_worker_makespan_seconds")
        assert makespan.value(("0",)) > 0.0
        assert makespan.value(("1",)) > 0.0
        assert obs.metrics.get("repro_session_skew_seconds").max_value() >= 0.0
        assert obs.metrics.get("repro_session_lpt_imbalance_ratio").value() >= 1.0


# -- queue telemetry ----------------------------------------------------------


class TestQueueTelemetry:
    def test_depth_gauge_rises_and_falls(self):
        obs = Observability()
        engine, _registered = _engine(obs=obs)
        queue = ApplyQueue(engine, max_batch_size=4, flush_interval=10.0)
        assert queue.obs is obs  # inherited from the engine
        tickets = queue.extend_async(_stream(6))
        depth = obs.metrics.get("repro_queue_depth")
        assert depth.max_value() == 6.0
        queue.flush()
        assert depth.value() == 0.0
        queue.close()
        for ticket in tickets:
            assert ticket.result(timeout=5) is not None
        assert obs.metrics.get("repro_queue_commit_seconds").count() == 6
        assert obs.metrics.get("repro_queue_flushes_total").value() >= 1.0
        assert obs.metrics.get("repro_queue_batches_total").value() >= 2.0

    def test_poison_counter_increments_exactly_once_per_poison_batch(self):
        obs = Observability()
        engine, registered = _engine(obs=obs, views=("Q1",))
        statements = _stream(2) + [
            InsertUpdate("/site/people/person/@id", "<x/>", name="bad")
        ]
        with ApplyQueue(engine, max_batch_size=10, flush_interval=0.5) as queue:
            tickets = queue.extend_async(statements)
            queue.flush()
            poison = obs.metrics.get("repro_queue_poison_batches_total")
            assert poison.value() == 1.0
            # a healthy follow-up batch leaves the poison count alone
            healthy = queue.extend_async(_stream(2, seed=6))
            queue.flush()
            assert poison.value() == 1.0
            for ticket in healthy:
                assert ticket.result(timeout=5) is not None
        with pytest.raises(ValueError):
            tickets[-1].result(timeout=5)
        assert registered["Q1"].view.equals_fresh_evaluation(engine.document)

    def test_close_flushes_pending_spans_to_trace_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs = Observability(trace_path=path)
        engine, _registered = _engine(obs=obs, views=("Q1",))
        queue = ApplyQueue(engine, max_batch_size=4)
        queue.extend_async(_stream(3))
        queue.close()
        records = read_jsonl(path)
        span_rows = [row for row in records if row["type"] == "span"]
        assert any(row["name"] == "batch" for row in span_rows)
        assert any(row["name"] == "phase" for row in span_rows)
        assert any(row["type"] == "metric" for row in records)

    def test_explicit_obs_wins_over_engine_obs(self):
        engine, _registered = _engine(obs=Observability())
        explicit = Observability()
        queue = ApplyQueue(engine, obs=explicit)
        assert queue.obs is explicit
        queue.close()


# -- observability facade -----------------------------------------------------


class TestObservabilityFacade:
    def test_flush_appends_across_calls(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs = Observability(trace_path=path)
        with obs.span("batch", statements=1):
            pass
        obs.flush()
        with obs.span("batch", statements=2):
            pass
        obs.flush()
        rows = read_jsonl(path)
        assert len([row for row in rows if row["type"] == "span"]) == 2
        assert len([row for row in rows if row["type"] == "meta"]) == 2

    def test_prometheus_text_stream(self):
        obs = Observability()
        obs.metrics.counter("repro_batches_total").inc()
        out = io.StringIO()
        out.write(prometheus_text(obs.metrics))
        assert "repro_batches_total 1" in out.getvalue()
