"""XML parser and serializer: round trips and error handling."""

import pytest
from hypothesis import given, strategies as st

from repro.xmldom.model import build_document, deep_copy
from repro.xmldom.parser import XMLSyntaxError, parse_document, parse_fragment
from repro.xmldom.serializer import escape_text, serialize, serialize_fragment


class TestParsing:
    def test_elements_and_text(self):
        doc = parse_document("<a><b>hello</b><c/></a>")
        assert doc.root.label == "a"
        assert doc.root.val == "hello"

    def test_attributes(self):
        doc = parse_document('<a x="1" y=\'two\'/>')
        assert doc.root.attribute("x").val == "1"
        assert doc.root.attribute("y").val == "two"

    def test_entities(self):
        doc = parse_document("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>")
        assert doc.root.val == "<&>\"'AB"

    def test_comments_and_pis_skipped(self):
        doc = parse_document("<?xml version='1.0'?><!-- c --><a><!-- in -->x<?pi?></a>")
        assert doc.root.val == "x"

    def test_doctype_skipped(self):
        doc = parse_document("<!DOCTYPE site [ <!ELEMENT a (b)> ]><a><b/></a>")
        assert doc.root.label == "a"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[1 < 2 & 3]]></a>")
        assert doc.root.val == "1 < 2 & 3"

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a><b></a></b>")

    def test_unterminated_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a><b>")

    def test_trailing_content_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a/><b/>")

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a>&nope;</a>")


class TestFragments:
    def test_forest(self):
        roots = parse_fragment("<a><b/></a><c/>")
        assert [r.label for r in roots] == ["a", "c"]
        assert all(r.parent is None for r in roots)

    def test_single_tree(self):
        (root,) = parse_fragment("<x>text</x>")
        assert root.val == "text"

    def test_empty_fragment(self):
        assert parse_fragment("   ") == []


class TestSerialization:
    def test_roundtrip(self):
        text = '<a x="1"><b>t &amp; u</b><c/></a>'
        doc = parse_document(text)
        assert serialize(doc, declaration=False) == text

    def test_escaping(self):
        assert escape_text("<&>") == "&lt;&amp;&gt;"

    def test_attribute_escaping(self):
        doc = parse_document('<a x="a&quot;b"/>')
        assert 'x="a&quot;b"' in serialize(doc)

    def test_pretty_print_contains_indent(self):
        doc = parse_document("<a><b>t</b></a>")
        assert "\n  <b>" in serialize(doc, pretty=True)

    def test_declaration_toggle(self):
        doc = parse_document("<a/>")
        assert serialize(doc).startswith("<?xml")
        assert serialize(doc, declaration=False) == "<a/>"


# -- property-based round trip ------------------------------------------------

_labels = st.sampled_from(["a", "b", "c", "item", "name"])
_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126, blacklist_characters="<>&\"'"),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() == s and s.strip())


@st.composite
def xml_trees(draw, depth=0):
    from repro.xmldom.model import AttributeNode, ElementNode, TextNode

    label = draw(_labels)
    element = ElementNode(label)
    if draw(st.booleans()):
        element.append(AttributeNode("id", draw(_text)))
    children = draw(st.integers(0, 3 if depth < 2 else 0))
    for _ in range(children):
        if depth < 2 and draw(st.booleans()):
            element.append(draw(xml_trees(depth=depth + 1)))
        else:
            element.append(TextNode(draw(_text)))
    return element


@given(xml_trees())
def test_roundtrip_property(tree):
    text = serialize_fragment(tree)
    (reparsed,) = parse_fragment(text)
    assert serialize_fragment(reparsed) == text
