"""Adaptive view rebalancing: cost model, policy, migration protocol.

Three layers, mirroring the module split:

* :class:`repro.sharding.rebalance.ViewCostModel` -- deterministic
  median-prefiltered EWMA (spike rejection, drift tracking);
* :class:`repro.sharding.rebalance.RebalancePolicy` -- pure-function
  hysteresis (trigger/patience/cooldown/budget) and greedy planning,
  including the one-hop-per-round invariant the live migration
  protocol depends on;
* :class:`repro.sharding.session.ShardSession` live migration -- ship
  and recompute paths both leave extents byte-identical to serial,
  poison batches and dead workers degrade exactly as without
  rebalancing, and a hypothesis property ties serial, frozen and
  adaptive sessions together over drift streams (extents *and*
  lattices).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.maintenance.engine import MaintenanceEngine
from repro.obs import Observability
from repro.sharding import (
    RebalancePolicy,
    ViewCostModel,
    imbalance_ratio,
    lpt_assignment,
)
from repro.updates.language import UpdateBatch
from repro.workloads.drift import drift_batches, drift_phase_families, phase_of
from repro.workloads.queries import view_pattern
from repro.workloads.xmark import generate_document

VIEWS = ("Q1", "Q2", "Q3", "Q4", "Q6")


def _engine(scale=1, views=VIEWS, obs=None):
    document = generate_document(scale=scale)
    engine = MaintenanceEngine(document, obs=obs)
    registered = {
        name: engine.register_view(view_pattern(name), name) for name in views
    }
    return document, engine, registered


def _drift_stream(batches=6, scale=1, seed=3, families=None):
    document = generate_document(scale=scale)
    if families is None:
        _people, auctions, regions = drift_phase_families()
        families = [auctions, regions]
    rows = drift_batches(
        document, batches, batch_size=6, seed=seed, families=families
    )
    return [UpdateBatch(row) for row in rows if row]


def _lattice_fingerprint(registered):
    """Materialized snowcap relations as comparable ID tuples."""
    lattice = registered.lattice
    fingerprint = {}
    for subset in lattice.materialized_sets():
        relation = lattice.relation_for(subset)
        fingerprint[subset] = (
            relation.schema,
            sorted(tuple(cell.id for cell in row) for row in relation.rows),
        )
    return fingerprint


#: weights that strand every view but Q1 on one worker: Q1's real
#: weight fills one bucket, the exact ties pile into the other (LPT's
#: argmin never moves between indistinguishable buckets).
STRAND_WEIGHTS = {name: (1.0 if name == "Q1" else 1e-9) for name in VIEWS}


def _eager_policy(**overrides):
    kwargs = dict(
        trigger_ratio=1.2,
        target_ratio=1.1,
        patience=1,
        cooldown=0,
        budget=4,
        alpha=0.5,
        ship_rows=50_000,
    )
    kwargs.update(overrides)
    return RebalancePolicy(**kwargs)


# -- cost model -------------------------------------------------------------


class TestViewCostModel:
    def test_seeds_then_smooths(self):
        model = ViewCostModel(alpha=0.5, spike_window=1)
        assert model.observe("Q1", 1.0) == 1.0  # first observation seeds
        assert model.observe("Q1", 3.0) == 2.0  # 1.0 + 0.5 * (3.0 - 1.0)
        assert model.cost("Q1") == 2.0
        assert model.cost("unseen", default=7.0) == 7.0

    def test_identical_streams_identical_costs(self):
        stream = [
            {"Q1": 0.01, "Q2": 0.002},
            {"Q1": 0.012, "Q2": 0.009},
            {"Q1": 0.030, "Q2": 0.001},
        ]
        first, second = ViewCostModel(alpha=0.3), ViewCostModel(alpha=0.3)
        for row in stream:
            first.observe_batch(row)
            second.observe_batch(dict(reversed(list(row.items()))))
        assert first.costs() == second.costs()  # fold order is irrelevant

    def test_median_filter_rejects_single_spike(self):
        model = ViewCostModel(alpha=0.5, spike_window=3)
        for seconds in (0.010, 0.011, 0.012):
            model.observe("Q1", seconds)
        settled = model.cost("Q1")
        model.observe("Q1", 0.500)  # a GC pause / CPU-steal artifact
        # The median of (0.011, 0.012, 0.5) is 0.012: the spike never
        # enters the EWMA at all.
        assert model.cost("Q1") == pytest.approx(settled + 0.5 * (0.012 - settled))
        assert model.cost("Q1") < 0.02

    def test_median_filter_passes_sustained_change(self):
        model = ViewCostModel(alpha=1.0, spike_window=3)
        for seconds in (0.001, 0.001, 0.001):
            model.observe("Q1", seconds)
        model.observe("Q1", 0.030)  # drift-phase flip, batch 1...
        model.observe("Q1", 0.031)  # ...batch 2: now the median moves
        assert model.cost("Q1") == 0.030

    def test_spike_window_one_disables_filter(self):
        model = ViewCostModel(alpha=1.0, spike_window=1)
        model.observe("Q1", 0.001)
        model.observe("Q1", 0.500)
        assert model.cost("Q1") == 0.500

    def test_load_of_sums_known_views(self):
        model = ViewCostModel(spike_window=1)
        model.observe("Q1", 0.004)
        model.observe("Q2", 0.001)
        assert model.load_of(["Q1", "Q2", "unknown"]) == pytest.approx(0.005)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            ViewCostModel(alpha=0.0)
        with pytest.raises(ValueError, match="spike_window"):
            ViewCostModel(spike_window=0)
        with pytest.raises(ValueError, match="spike_window"):
            ViewCostModel(spike_window=2)  # even windows have no median


# -- policy hysteresis and planning -----------------------------------------


def _skewed_timings(hot=0.010, cold=0.001):
    """Timings that overload the owner of Q2..Q6 under STRAND order."""
    return {name: (cold if name == "Q1" else hot) for name in VIEWS}


class TestRebalancePolicy:
    def test_below_trigger_never_moves(self):
        policy = _eager_policy()
        assignment = [["Q1", "Q2"], ["Q3", "Q4"]]
        for _ in range(10):
            assert policy.observe(assignment, {n: 0.01 for n in VIEWS}) == []
        assert policy.moves_decided == 0

    def test_patience_requires_consecutive_over_trigger(self):
        policy = _eager_policy(patience=3)
        piled = [["Q1"], ["Q2", "Q3", "Q4", "Q6"]]
        spread = [["Q2", "Q3"], ["Q1", "Q4", "Q6"]]  # ratio ~1.02
        skewed = _skewed_timings()
        assert policy.observe(piled, skewed) == []  # 1 of 3
        assert policy.observe(piled, skewed) == []  # 2 of 3
        # A below-trigger batch resets the counter entirely (the ratio
        # is a function of the assignment, not just the timings)...
        assert policy.observe(spread, skewed) == []
        assert policy.observe(piled, skewed) == []  # back to 1 of 3
        assert policy.observe(piled, skewed) == []  # 2 of 3
        # ...while the third consecutive over-trigger batch fires.
        assert policy.observe(piled, skewed) != []

    def test_cooldown_blocks_next_decision(self):
        policy = _eager_policy(cooldown=2, patience=1)
        assignment = [["Q1"], ["Q2", "Q3", "Q4", "Q6"]]
        skewed = _skewed_timings()
        moves = policy.observe(assignment, skewed)
        assert moves
        # Apply nothing: the imbalance persists, but the cooldown blocks
        # the next two decisions regardless.
        assert policy.observe(assignment, skewed) == []
        assert policy.observe(assignment, skewed) == []
        assert policy.observe(assignment, skewed) != []

    def test_budget_caps_moves_per_round(self):
        policy = _eager_policy(budget=1)
        assignment = [["Q1"], ["Q2", "Q3", "Q4", "Q6"]]
        moves = policy.observe(assignment, _skewed_timings())
        assert len(moves) == 1

    def test_moves_are_single_hop_from_pre_round_owner(self):
        # Regression: the greedy planner used to chain-move a view
        # (w0 -> w1 in move k, w1 -> w2 in move k+n), which the
        # migration protocol rejects -- it ships every move from the
        # view's pre-round owner.
        policy = _eager_policy(budget=8, target_ratio=1.05)
        assignment = [
            ["Q1", "Q2", "Q3", "Q4", "Q6"],
            [],
            [],
        ]
        moves = policy.observe(assignment, {n: 0.01 for n in VIEWS})
        assert moves  # everything on one worker is over any trigger
        seen = set()
        for name, source, target in moves:
            assert name not in seen  # at most one hop per round
            assert name in assignment[source]  # source is pre-round owner
            assert source != target
            seen.add(name)

    def test_equal_timing_streams_equal_decision_streams(self):
        stream = [
            {n: (0.01 if i % 3 else 0.002) for n in VIEWS} for i in range(8)
        ]
        stream[4] = _skewed_timings()
        stream[5] = _skewed_timings()

        def run():
            policy = _eager_policy(patience=2, cooldown=1)
            assignment = [["Q1"], ["Q2", "Q3", "Q4", "Q6"]]
            decisions = []
            for row in stream:
                decisions.append(policy.observe(assignment, row))
            return decisions

        assert run() == run()

    def test_plan_is_pure(self):
        policy = _eager_policy()
        policy.model.observe_batch(_skewed_timings())
        assignment = [["Q1"], ["Q2", "Q3", "Q4", "Q6"]]
        first = policy.plan(assignment)
        assert policy.plan(assignment) == first  # no hidden state
        assert assignment == [["Q1"], ["Q2", "Q3", "Q4", "Q6"]]  # untouched

    def test_coerce(self):
        assert RebalancePolicy.coerce(None) is None
        assert RebalancePolicy.coerce(False) is None
        defaults = RebalancePolicy.coerce(True)
        assert isinstance(defaults, RebalancePolicy)
        policy = _eager_policy()
        assert RebalancePolicy.coerce(policy) is policy
        with pytest.raises(TypeError, match="rebalance"):
            RebalancePolicy.coerce("aggressive")

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            RebalancePolicy(trigger_ratio=1.0, target_ratio=1.2)
        with pytest.raises(ValueError, match="cooldown"):
            RebalancePolicy(cooldown=-1)
        RebalancePolicy(cooldown=0)  # same-batch repair is legal


# -- LPT helpers under rebalance-shaped inputs ------------------------------


class TestLptStranding:
    def test_exact_ties_pile_onto_one_bucket(self):
        weights = dict(STRAND_WEIGHTS)
        assignment = lpt_assignment(weights, 2)
        sizes = sorted(len(bucket) for bucket in assignment)
        assert sizes == [1, len(VIEWS) - 1]  # Q1 alone, ties together

    def test_imbalance_ratio_flags_the_pile(self):
        model = ViewCostModel(spike_window=1)
        model.observe_batch(_skewed_timings())
        piled = [["Q1"], ["Q2", "Q3", "Q4", "Q6"]]
        ratio = imbalance_ratio([model.load_of(owned) for owned in piled])
        assert ratio > 1.9  # ~40ms vs ~1ms against a ~20ms mean


# -- live sessions ----------------------------------------------------------


class TestSessionMigration:
    def _serial_reference(self, batches, scale=1):
        document, engine, registered = _engine(scale=scale)
        for batch in batches:
            engine.apply_batch(batch)
        return document, registered

    def _assert_matches_serial(self, serial_views, views, document):
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == views[name].view.content()
            ), name
            assert views[name].view.equals_fresh_evaluation(document), name
            assert _lattice_fingerprint(serial_views[name]) == _lattice_fingerprint(
                views[name]
            ), name

    def _run_adaptive(self, batches, policy):
        # A real Observability so repro_session_migrations_total counts
        # (the default registry is a no-op).
        document, engine, registered = _engine(obs=Observability())
        session = engine.session(
            workers=2, weights=STRAND_WEIGHTS, rebalance=policy
        )
        initial = [list(owned) for owned in session._assignment]
        try:
            for batch in batches:
                session.apply_batch(batch)
            migrations = sum(
                value
                for _labels, value in session._migrations_counter.samples()
            )
            assert migrations == policy.moves_decided
            assert session._assignment != initial  # ownership really moved
        finally:
            session.close()
        return document, registered, migrations

    def test_ship_path_migrates_and_stays_identical(self):
        batches = _drift_stream(batches=6, seed=3)
        serial_doc, serial_views = self._serial_reference(batches)
        document, registered, migrations = self._run_adaptive(
            batches, _eager_policy(ship_rows=50_000)
        )
        assert migrations > 0  # the stranded hot family forced moves
        self._assert_matches_serial(serial_views, registered, document)

    def test_recompute_path_migrates_and_stays_identical(self):
        batches = _drift_stream(batches=6, seed=3)
        serial_doc, serial_views = self._serial_reference(batches)
        # ship_rows=0: every migrated view rematerializes on the target
        # replica instead of shipping state -- same extents either way.
        document, registered, migrations = self._run_adaptive(
            batches, _eager_policy(ship_rows=0)
        )
        assert migrations > 0
        self._assert_matches_serial(serial_views, registered, document)

    def test_poison_batch_with_rebalancing_keeps_serving(self):
        from repro.updates.language import InsertUpdate

        batches = _drift_stream(batches=4, seed=3)
        document, engine, registered = _engine()
        session = engine.session(
            workers=2, weights=STRAND_WEIGHTS, rebalance=_eager_policy()
        )
        try:
            for batch in batches[:2]:
                session.apply_batch(batch)
            bad = InsertUpdate("/site/people/person/@id", "<x/>", name="bad")
            with pytest.raises(ValueError):
                session.apply_batch(UpdateBatch([bad]))
            assert not session._closed  # poison fails only itself
            for batch in batches[2:]:
                session.apply_batch(batch)
            for name in VIEWS:
                assert registered[name].view.equals_fresh_evaluation(
                    document
                ), name
        finally:
            session.close()

    def test_dead_worker_mid_migration_poisons_session(self):
        batches = _drift_stream(batches=2, seed=3)
        document, engine, registered = _engine()
        session = engine.session(workers=2, weights=STRAND_WEIGHTS)
        try:
            for batch in batches:
                session.apply_batch(batch)
            victim = session._assignment[1][0]
            session._processes[1].terminate()
            session._processes[1].join()
            with pytest.raises(RuntimeError, match="died during migration"):
                session._migrate([(victim, 1, 0)])
            assert session._closed
            # Owner extents were restored from the owner document.
            for name in VIEWS:
                assert registered[name].view.equals_fresh_evaluation(
                    document
                ), name
        finally:
            session.close()

    def test_migrate_rejects_moves_from_wrong_owner(self):
        document, engine, registered = _engine()
        session = engine.session(workers=2, weights=STRAND_WEIGHTS)
        try:
            not_owner = 0 if "Q2" in session._assignment[1] else 1
            with pytest.raises(ValueError, match="not owned"):
                session._migrate([("Q2", not_owner, 1 - not_owner)])
            with pytest.raises(ValueError, match="source == target"):
                session._migrate([("Q2", 1 - not_owner, 1 - not_owner)])
        finally:
            session.close()


# -- drift workload generator -----------------------------------------------


class TestDriftWorkload:
    def test_phase_of_partitions_evenly(self):
        assert [phase_of(i, 9, 3) for i in range(9)] == [0, 0, 0, 1, 1, 1, 2, 2, 2]
        assert phase_of(9, 10, 3) == 2  # remainder absorbed by last phase
        with pytest.raises(ValueError):
            phase_of(0, 0, 3)

    def test_streams_are_deterministic(self):
        document = generate_document(scale=1)
        first = drift_batches(document, 4, batch_size=5, seed=9)
        second = drift_batches(generate_document(scale=1), 4, batch_size=5, seed=9)
        signature = lambda rows: [[s.name for s in row] for row in rows]
        assert signature(first) == signature(second)
        different = drift_batches(document, 4, batch_size=5, seed=10)
        assert signature(first) != signature(different)

    def test_hot_family_rotates(self):
        document = generate_document(scale=1)
        _people, auctions, regions = drift_phase_families()
        rows = drift_batches(
            document,
            6,
            batch_size=8,
            seed=2,
            families=[auctions, regions],
            hot_share=1.0,
            warm_share=0.0,
        )
        base_names = [
            [statement.name.split("#")[0] for statement in row] for row in rows
        ]
        assert all(name in auctions for row in base_names[:3] for name in row)
        assert all(name in regions for row in base_names[3:] for name in row)


# -- serial == frozen == adaptive, property-tested --------------------------


@st.composite
def _drift_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    batches = draw(st.integers(min_value=2, max_value=5))
    ship_rows = draw(st.sampled_from([0, 50_000]))
    return seed, batches, ship_rows


class TestAdaptiveEquivalenceProperty:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(_drift_cases())
    def test_serial_frozen_adaptive_agree(self, case):
        seed, batch_count, ship_rows = case
        batches = _drift_stream(batches=batch_count, seed=seed)
        if not batches:
            return
        serial_doc, serial_engine, serial_views = _engine()
        for batch in batches:
            serial_engine.apply_batch(batch)

        def run_session(rebalance):
            document, engine, registered = _engine()
            session = engine.session(
                workers=2, weights=STRAND_WEIGHTS, rebalance=rebalance
            )
            try:
                for batch in batches:
                    session.apply_batch(batch)
            finally:
                session.close()
            return document, registered

        frozen_doc, frozen_views = run_session(None)
        adaptive_doc, adaptive_views = run_session(
            _eager_policy(ship_rows=ship_rows)
        )
        for name in VIEWS:
            serial_content = serial_views[name].view.content()
            assert serial_content == frozen_views[name].view.content(), name
            assert serial_content == adaptive_views[name].view.content(), name
            assert adaptive_views[name].view.equals_fresh_evaluation(
                adaptive_doc
            ), name
            serial_lattice = _lattice_fingerprint(serial_views[name])
            assert serial_lattice == _lattice_fingerprint(frozen_views[name]), name
            assert serial_lattice == _lattice_fingerprint(
                adaptive_views[name]
            ), name
